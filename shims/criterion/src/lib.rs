//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The statistical machinery of real criterion (bootstrap confidence
//! intervals, HTML reports, change detection) is out of scope; each
//! benchmark is timed over an adaptive iteration count and reported as
//! mean ns/iter on stdout, which keeps the `cargo bench` entry points and
//! BENCH tracking working without crates.io access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(120);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes iteration counts by
    /// time budget rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Mean duration of one iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`: one warm-up call sizes the iteration count to the
    /// measurement budget, then the batch is timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));

        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        mean_ns: f64::NAN,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<50} (no measurement)");
    } else {
        println!(
            "bench {label:<50} {:>14} ns/iter  ({} iters)",
            format_ns(bencher.mean_ns),
            bencher.iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}e9", ns / 1e9)
    } else {
        format!("{:.1}", ns)
    }
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0u32;
        group.bench_function("plain", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }
}
