//! Offline drop-in replacement for the subset of the `rand` crate this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the workspace ships
//! its own implementations of the external APIs it consumes. This crate
//! mirrors the `rand 0.8` surface the repo calls — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom`] — on top of xoshiro256**,
//! seeded through SplitMix64 exactly as Blackman & Vigna recommend.
//!
//! Determinism contract: for a fixed seed the sequence is stable across
//! runs and platforms. It does *not* reproduce upstream `rand`'s streams;
//! every consumer in this workspace only relies on self-consistency.

#![forbid(unsafe_code)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream derives from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable over a half-open or inclusive range.
///
/// The blanket [`SampleRange`] impls below dispatch through this trait;
/// keeping a single generic impl per range shape (instead of one impl per
/// concrete element type) is what lets a bare float literal in
/// `rng.gen_range(0.3..0.9)` unify with the surrounding expression, the
/// same way real rand's `SampleUniform` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[low, high)` when `inclusive` is false, `[low, high]`
    /// when true. Callers guarantee the range is non-empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
        let v = low + rng.next_f64() * (high - low);
        // Floating rounding may land exactly on `high`; nudge back inside
        // for the half-open case.
        if !inclusive && v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
        let v = low + (rng.next_f64() as f32) * (high - low);
        if !inclusive && v >= high {
            low
        } else {
            v
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let n = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&n));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
