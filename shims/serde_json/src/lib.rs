//! Offline drop-in replacement for the subset of `serde_json` this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`].
//!
//! Works over the value-based data model of the workspace `serde` shim.
//! Floating-point round-trips are bit-exact: the writer uses Rust's
//! shortest-round-trip float formatting and the parser is `str::parse`,
//! which is correctly rounding — the pair the real crate's
//! `float_roundtrip` feature guarantees (`tests/model_persistence.rs`
//! relies on this).
//!
//! The parser is strict (no trailing garbage, no comments, no NaN
//! literals) and depth-limited so untrusted request bodies — the serving
//! stack parses those — cannot overflow the stack.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Parse/serialise error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Maximum container nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses `text` into a `T`, rejecting malformed JSON and trailing input.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses `text` into the shim's [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_at(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Rust's float `Display` emits the shortest decimal that parses back to
/// the same bits, so `write → parse` is the identity on finite values.
/// JSON has no non-finite literals; mirror serde_json and emit `null`.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value> {
    if depth > MAX_DEPTH {
        return Err(Error::new("JSON nesting too deep"));
    }
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(Error::new(format!(
            "unexpected character {:?} at byte {}",
            *c as char, *pos
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Map(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b':') => *pos += 1,
            _ => return Err(Error::new(format!("expected ':' at byte {}", *pos))),
        }
        skip_ws(bytes, pos);
        let value = parse_at(bytes, pos, depth + 1)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Seq(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_at(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(Error::new("unescaped control character in string"))
            }
            Some(_) => {
                // Advance one UTF-8 character.
                let rest = &bytes[*pos..];
                let len = utf8_len(rest[0]);
                let chunk = rest
                    .get(..len)
                    .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

/// Reads the `XXXX` of a `\uXXXX` escape; `pos` is on the `u` on entry and
/// on the last hex digit on exit (the caller advances past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let start = *pos + 1;
    let chunk = bytes
        .get(start..start + 4)
        .ok_or_else(|| Error::new("truncated unicode escape"))?;
    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid unicode escape"))?;
    let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
    *pos = start + 3;
    Ok(code)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(from_str::<i64>("-17").unwrap(), -17);
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.5e-8,
            123_456_789.123_456_79,
            std::f64::consts::PI,
            -0.0,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert!(back.to_bits() == x.to_bits() || back == x, "{x} vs {back}");
        }
        // Typical values round-trip to identical bits.
        for &x in &[0.1, std::f64::consts::PI, 1e300] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&json).unwrap(), v);

        let t: (u8, f64, String) = (1, 2.5, "x".into());
        let back: (u8, f64, String) = from_str(&to_string(&t).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<Vec<u8>>("[1,2] trailing").is_err());
        assert!(from_str::<f64>("\"nope\"").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_value(&deep).is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct P {
            a: u32,
            b: Vec<f64>,
        }
        let p = P {
            a: 1,
            b: vec![0.5, 2.0],
        };
        let pretty = to_string_pretty(&p).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(from_str::<P>(&pretty).unwrap(), p);
    }
}
