//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses.
//!
//! Implements the [`Strategy`] trait over a seeded RNG, the range /
//! tuple / [`Just`] / [`collection::vec`] strategies, the
//! `prop_map`/`prop_flat_map` combinators, and a [`proptest!`] macro
//! that runs each property over [`ProptestConfig::cases`] random cases.
//!
//! Differences from real proptest: failing cases are *not* shrunk (the
//! panic reports the case's seed so it can be replayed), and rejection
//! via `prop_assume!` counts the case as passed rather than retrying.

#![forbid(unsafe_code)]

// Lets this crate's own tests exercise the `proptest::...` paths user
// code writes.
extern crate self as proptest;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-property configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Random-value source handed to strategies (one per case, seeded
/// deterministically from the property name and case index).
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for one case.
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Deterministic seed for `(property, case)`, exposed for failure replay.
pub fn case_seed(property: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values.
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for a primitive type (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Types with a canonical full-range distribution.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite full-range doubles (no NaN/inf, matching common usage).
        let m: f64 = runner.rng().gen_range(-1.0..1.0);
        let e: i32 = runner.rng().gen_range(-300..300);
        m * 10f64.powi(e)
    }
}

macro_rules! impl_range_strategy {
    (float: $($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
    (int: $($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(float: f32, f64);
impl_range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Length specification: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                runner.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Runs one property over `cases` random cases; used by [`proptest!`].
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let seed = case_seed(name, case);
        let mut runner = TestRunner::from_seed(seed);
        if let Err(TestCaseError(msg)) = body(&mut runner) {
            panic!(
                "property `{name}` failed on case {case}/{} (seed {seed:#018x}): {msg}",
                config.cases
            );
        }
    }
}

/// Defines randomised property tests. Mirrors proptest's macro syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn sums_commute(a in 0..100u32, b in 0..100u32) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |__runner| {
                $(let $arg = $crate::Strategy::generate(&($strat), __runner);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// harness) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest redraws; the shim counts the case as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        0u32..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in small(), y in -2.5..2.5f64) {
            prop_assert!(x < 10);
            prop_assert!((-2.5..2.5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn combinators_compose(
            v in proptest::collection::vec((0u8..4, 1u16..9), 2..6),
            k in any::<u64>(),
            w in (1usize..4).prop_flat_map(|n| proptest::collection::vec(0.0..1.0f64, n)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&(a, b)| a < 4 && (1..9).contains(&b)));
            prop_assume!(k != 0);
            prop_assert!(!w.is_empty() && w.len() < 4);
            let doubled = Just(7u8).prop_map(|x| x * 2);
            let mut runner = crate::TestRunner::from_seed(k);
            prop_assert_eq!(crate::Strategy::generate(&doubled, &mut runner), 14);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_seed() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(2), |_runner| {
            Err(crate::TestCaseError("nope".into()))
        });
    }
}
