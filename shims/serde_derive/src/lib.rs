//! `#[derive(Serialize, Deserialize)]` for the workspace's offline serde
//! shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the item's token stream by hand. It
//! supports exactly the shapes this workspace declares:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple structs (arity 1 serialises transparently, like serde's
//!   newtype structs; arity ≥ 2 serialises as a sequence),
//! * enums with unit variants (serialised as the variant-name string) and
//!   tuple/newtype variants (externally tagged: `{"Variant": value}`),
//! * one generic type parameter list without bounds or where-clauses.
//!
//! Generated code targets the value-based data model of the `serde` shim
//! (`to_value`/`from_value`), which `serde_json` then renders.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    /// Named fields: `(name, has_serde_default)`.
    Struct(Vec<(String, bool)>),
    /// Tuple struct with this arity.
    TupleStruct(usize),
    /// Variants.
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    /// Parenthesised fields with this arity (1 = newtype).
    Tuple(usize),
    /// Braced fields, by name.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility until `struct` / `enum`.
    let is_enum = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => {}
            None => panic!("derive input has no struct/enum keyword"),
        }
    };

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };

    // Optional `<...>` generic parameter list (plain idents only).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            toks.next();
            let mut depth = 1usize;
            for tok in toks.by_ref() {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Ident(id) if depth == 1 => generics.push(id.to_string()),
                    _ => {}
                }
            }
        }
    }

    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break Body::Braced(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                break Body::Paren(g.stream())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("unit structs are not supported by the serde shim derive")
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                panic!("where-clauses are not supported by the serde shim derive")
            }
            Some(_) => {}
            None => panic!("derive input for `{name}` has no body"),
        }
    };

    enum Body {
        Braced(TokenStream),
        Paren(TokenStream),
    }

    let kind = match (is_enum, body) {
        (false, Body::Braced(s)) => Kind::Struct(parse_named_fields(s)),
        (false, Body::Paren(s)) => Kind::TupleStruct(top_level_arity(s)),
        (true, Body::Braced(s)) => Kind::Enum(parse_variants(s)),
        (true, Body::Paren(_)) => panic!("enum body cannot be parenthesised"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Number of top-level comma-separated chunks in a token stream.
fn top_level_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut chunk_nonempty = false;
    let mut depth = 0usize;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                chunk_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                chunk_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if chunk_nonempty {
                    arity += 1;
                }
                chunk_nonempty = false;
            }
            _ => chunk_nonempty = true,
        }
    }
    if chunk_nonempty {
        arity += 1;
    }
    arity
}

/// `true` when the `#[...]` attribute group is `serde(default)`.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let mut inner = group.stream().into_iter();
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Attributes before the field.
        let mut has_default = false;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        has_default |= is_serde_default(&g);
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        // Field name (or end of stream after a trailing comma).
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        // Skip the type up to a top-level comma.
        let mut depth = 0usize;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        fields.push((field, has_default));
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantKind)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Attributes (doc comments, #[default], ...).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() != '#' {
                break;
            }
            toks.next();
            toks.next(); // the [...] group
        }
        let variant = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let mut kind = VariantKind::Unit;
        if let Some(TokenTree::Group(g)) = toks.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    kind = VariantKind::Tuple(top_level_arity(g.stream()));
                    toks.next();
                }
                Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream())
                        .into_iter()
                        .map(|(name, _)| name)
                        .collect();
                    kind = VariantKind::Struct(fields);
                    toks.next();
                }
                _ => {}
            }
        }
        // Skip an optional `= discriminant`, then the comma.
        let mut depth = 0usize;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        variants.push((variant, kind));
    }
    variants
}

// ------------------------------------------------------------ generation

/// `impl<A: ::serde::Trait, ...>` header pieces for a generic type.
fn generic_headers(generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let decl = generics
        .iter()
        .map(|g| format!("{g}: ::serde::{bound}"))
        .collect::<Vec<_>>()
        .join(", ");
    let args = generics.join(", ");
    (format!("<{decl}>"), format!("<{args}>"))
}

fn gen_serialize(item: &Item) -> String {
    let (decl, args) = generic_headers(&item.generics, "Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "m.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(m)"
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("s.push(::serde::Serialize::to_value(&self.{i}));\n"))
                .collect();
            format!(
                "let mut s: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                 {items}::serde::Value::Seq(s)"
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(x0))]),\n"
                    ),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let pushes: String = binders
                            .iter()
                            .map(|b| format!("s.push(::serde::Serialize::to_value({b}));"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => {{ \
                             let mut s: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new(); \
                             {pushes} \
                             ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), ::serde::Value::Seq(s))]) }},\n",
                            binders.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binders = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "m.push((::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => {{ \
                             let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new(); \
                             {pushes} \
                             ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), ::serde::Value::Map(m))]) }},\n"
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{decl} ::serde::Serialize for {name}{args} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (decl, args) = generic_headers(&item.generics, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|(f, has_default)| {
                    let missing = if *has_default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!("::serde::missing_field(\"{f}\")?")
                    };
                    format!(
                        "{f}: match ::serde::map_get(m, \"{f}\") {{ \
                         ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                         ::std::option::Option::None => {missing} }},\n"
                    )
                })
                .collect();
            format!(
                "let m = match v {{ \
                 ::serde::Value::Map(m) => m, \
                 _ => return ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected a JSON object for struct {name}\")) }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?,"))
                .collect();
            format!(
                "let s = match v {{ \
                 ::serde::Value::Seq(s) if s.len() == {n} => s, \
                 _ => return ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected a {n}-element array for tuple struct {name}\")) }};\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, kind)| matches!(kind, VariantKind::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|(_, kind)| !matches!(kind, VariantKind::Unit))
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => unreachable!(),
                    VariantKind::Tuple(1) => format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__val)?)),\n"
                    ),
                    VariantKind::Tuple(arity) => {
                        let inits: String = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?,"))
                            .collect();
                        format!(
                            "\"{v}\" => {{ let s = match __val {{ \
                             ::serde::Value::Seq(s) if s.len() == {arity} => s, \
                             _ => return ::std::result::Result::Err(::serde::Error::msg(\
                             \"expected a {arity}-element array for variant {v}\")) }}; \
                             ::std::result::Result::Ok({name}::{v}({inits})) }},\n"
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: match ::serde::map_get(m2, \"{f}\") {{ \
                                     ::std::option::Option::Some(x) => \
                                     ::serde::Deserialize::from_value(x)?, \
                                     ::std::option::Option::None => \
                                     ::serde::missing_field(\"{f}\")? }},"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{ let m2 = match __val {{ \
                             ::serde::Value::Map(m2) => m2, \
                             _ => return ::std::result::Result::Err(::serde::Error::msg(\
                             \"expected an object for variant {v}\")) }}; \
                             ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }},\n"
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant `{{other}}` of enum {name}\"))),\n}},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (__tag, __val) = &m[0];\n\
                 let _ = __val;\n\
                 match __tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant `{{other}}` of enum {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected a string or single-key object for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl{decl} ::serde::Deserialize for {name}{args} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
