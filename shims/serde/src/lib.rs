//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace ships
//! its own serialisation stack. Unlike real serde's visitor-based zero-copy
//! design, this shim is value-based: [`Serialize`] renders a type into the
//! [`Value`] tree and [`Deserialize`] reads one back. The `serde_json`
//! shim converts between [`Value`] and JSON text. The derive macros
//! (re-exported from `serde_derive`) generate the same externally-tagged
//! representation real serde produces for the shapes this repo declares,
//! so existing JSON artifacts keep their format.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serialises through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// Unsigned integer beyond `i64`'s range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as ordered key–value pairs (preserves field order).
    Map(Vec<(String, Value)>),
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types restorable from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads an instance back from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    /// Real serde distinguishes borrowing deserialisers; the value-based
    /// shim has no borrowed variant, so `DeserializeOwned` is the trait.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Compatibility alias module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

// ----------------------------------------------------------- derive support

/// Ordered-map key lookup used by generated `Deserialize` impls.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Missing-field recovery used by generated `Deserialize` impls: types
/// that deserialise from `null` (e.g. `Option`) absorb the absence, every
/// other type reports the field. Mirrors serde's `missing_field`.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, Error> {
    T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
}

// ------------------------------------------------------------- primitives

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected a boolean")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    _ => return Err(Error::msg("expected an integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg("expected a non-negative integer"))?,
                    _ => return Err(Error::msg("expected an integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(Error::msg("expected a number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected a string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected a one-character string")),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected an array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::msg("expected a fixed-length array")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::msg("expected a tuple array")),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

impl<K: Serialize + ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected an object")),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected an object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absorbs_null_and_missing() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
        assert_eq!(missing_field::<Option<u32>>("x").unwrap(), None);
        assert!(missing_field::<f64>("x").is_err());
    }

    #[test]
    fn integers_check_range() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
        assert_eq!(i64::from_value(&Value::UInt(5)).unwrap(), 5);
        assert!(i64::from_value(&Value::UInt(u64::MAX)).is_err());
    }

    #[test]
    fn floats_accept_integer_tokens() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(f64::from_value(&Value::Null).is_err());
    }
}
