//! On-disk round trip through the real GeoLife file formats: synthetic
//! cohort → PLT + labels.txt files → loader → pipeline, asserting the
//! recovered dataset matches the direct path.

use std::fs;
use std::path::Path;
use trajlib::geolife::loader::LoaderOptions;
use trajlib::geolife::write_geolife_layout;
use trajlib::prelude::*;

fn write_fixture(synth: &SynthDataset, root: &Path) {
    write_geolife_layout(&synth.to_raw_trajectories(0), root).unwrap();
}

#[test]
fn plt_and_labels_round_trip_preserves_the_dataset() {
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 4,
        segments_per_user: (5, 8),
        seed: 77,
        ..SynthConfig::default()
    });
    let root = std::env::temp_dir().join(format!("geolife_rt_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    write_fixture(&synth, &root);

    let loaded = trajlib::geolife::load_geolife_directory(&root, &LoaderOptions::default())
        .expect("load fixture");
    assert_eq!(loaded.len(), 4, "all four users recovered");

    // The loader path and the direct path agree on the classification
    // samples (PLT stores whole seconds and ~1e-6° coordinates, so
    // features match to within quantisation).
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
    let direct = pipeline.dataset_from_segments(&synth.segments);
    let via_disk = pipeline.dataset_from_raw(&loaded);

    assert_eq!(direct.len(), via_disk.len(), "same number of segments");
    let mut a = direct.y.clone();
    let mut b = via_disk.y.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "same label multiset");

    // And the recovered data trains a working classifier: an unpruned
    // tree memorises its training set regardless of task difficulty.
    let mut model = ClassifierKind::DecisionTree.build(1);
    model.fit(&via_disk);
    let train_acc = accuracy(&via_disk.y, &model.predict(&via_disk));
    assert!(train_acc > 0.95, "training accuracy {train_acc}");

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn loader_tolerates_partially_labeled_users() {
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 2,
        segments_per_user: (4, 5),
        seed: 78,
        ..SynthConfig::default()
    });
    let root = std::env::temp_dir().join(format!("geolife_rt2_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    write_fixture(&synth, &root);
    // Strip user 1's labels file: that user must be skipped by default.
    fs::remove_file(root.join("Data/001/labels.txt")).unwrap();

    let loaded = trajlib::geolife::load_geolife_directory(&root, &LoaderOptions::default())
        .expect("load fixture");
    assert_eq!(loaded.len(), 1);
    assert_eq!(loaded[0].user, 0);

    fs::remove_dir_all(&root).unwrap();
}
