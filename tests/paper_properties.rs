//! The paper's qualitative findings, asserted at test scale. These are
//! the *shape* claims EXPERIMENTS.md records at full scale:
//!
//! 1. §4.1 — tree ensembles lead; the linear SVM trails (Fig. 2).
//! 2. §4.2/§5 — a speed percentile tops both selection methods.
//! 3. §4.3 — the Dabiri protocol (random CV, merged labels) scores above
//!    the Endo protocol (user-disjoint, unmerged labels).
//! 4. §4.4 — random CV is optimistic versus user-oriented CV (Fig. 4).

use trajlib::experiments::{
    run_classifier_selection, run_cv_comparison, run_dabiri_comparison, run_endo_comparison,
    ClassifierSelectionConfig, ComparisonConfig, CvComparisonConfig, DataConfig,
};
use trajlib::prelude::*;

/// A mid-size cohort: big enough for the effects, small enough for CI.
fn data() -> DataConfig {
    DataConfig {
        n_users: 15,
        segments_per_user: (14, 22),
        seed: 42,
        heterogeneity: 1.0,
    }
}

#[test]
fn finding_1_forest_leads_svm_trails() {
    let result = run_classifier_selection(&ClassifierSelectionConfig {
        data: data(),
        folds: 5,
        seed: 0,
        classifiers: vec![
            ClassifierKind::RandomForest,
            ClassifierKind::XgBoost,
            ClassifierKind::DecisionTree,
            ClassifierKind::Svm,
        ],
    });
    let acc = |k: ClassifierKind| {
        result
            .scores
            .iter()
            .find(|s| s.kind == k)
            .map(|s| s.mean_accuracy)
            .unwrap()
    };
    // Tree ensembles on top…
    assert!(matches!(
        result.best,
        ClassifierKind::RandomForest | ClassifierKind::XgBoost
    ));
    // …and both clearly above the linear SVM (the paper's worst).
    assert!(acc(ClassifierKind::RandomForest) > acc(ClassifierKind::Svm) + 0.1);
    assert!(acc(ClassifierKind::XgBoost) > acc(ClassifierKind::Svm) + 0.1);
    // RF and XGB are close (the paper: not significantly different).
    assert!((acc(ClassifierKind::RandomForest) - acc(ClassifierKind::XgBoost)).abs() < 0.06);
}

#[test]
fn finding_2_speed_percentile_tops_both_selection_methods() {
    let synth = data().generate();
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo));
    let dataset = pipeline.dataset_from_segments(&synth.segments);

    // Information-theoretical method (RF importance).
    let by_importance = rf_importance_ranking(&dataset, 50, 1);
    let top_importance = &dataset.feature_names[by_importance[0].0];
    assert!(
        top_importance.starts_with("speed"),
        "importance top: {top_importance}"
    );

    // Mutual-information filter agrees.
    let by_mi = trajlib::select::mi_ranking(&dataset, 10);
    let top_mi = &dataset.feature_names[by_mi[0].0];
    assert!(top_mi.starts_with("speed"), "MI top: {top_mi}");

    // And specifically the paper's named winner ranks very high.
    let p90_rank = by_importance
        .iter()
        .position(|&(f, _)| dataset.feature_names[f] == "speed_p90")
        .unwrap();
    assert!(p90_rank < 5, "speed_p90 importance rank {p90_rank}");
}

#[test]
fn finding_3_random_cv_protocol_scores_above_user_disjoint_protocol() {
    let config = ComparisonConfig {
        data: data(),
        n_splits: 5,
        seed: 0,
        n_estimators: 25,
        top_k: 20,
    };
    let endo = run_endo_comparison(&config);
    let dabiri = run_dabiri_comparison(&config);
    assert!(
        dabiri.mean_accuracy > endo.mean_accuracy + 0.03,
        "dabiri {} vs endo {}",
        dabiri.mean_accuracy,
        endo.mean_accuracy
    );
    // Both runs beat their published baselines on the synthetic cohort
    // (the paper's Wilcoxon direction).
    assert!(dabiri.mean_accuracy > dabiri.published_baseline);
}

#[test]
fn finding_4_random_cv_is_optimistic() {
    let result = run_cv_comparison(&CvComparisonConfig {
        data: data(),
        folds: 5,
        seed: 0,
        classifiers: vec![
            ClassifierKind::RandomForest,
            ClassifierKind::XgBoost,
            ClassifierKind::DecisionTree,
        ],
        scheme: LabelScheme::Endo,
        top_k: Some(20),
    });
    assert!(
        result.mean_gap > 0.02,
        "mean accuracy gap {:.4} should be clearly positive",
        result.mean_gap
    );
    // The tree ensembles individually show the optimism on accuracy and
    // F-score.
    for row in &result.rows {
        if matches!(
            row.kind,
            ClassifierKind::RandomForest | ClassifierKind::XgBoost
        ) {
            assert!(row.accuracy_gap() > 0.0, "{}: {row:?}", row.kind);
            assert!(row.random_f1 > row.user_f1, "{}: {row:?}", row.kind);
        }
    }
}

#[test]
fn finding_4_gap_vanishes_without_user_heterogeneity() {
    // The controlled mechanism check: identical users ⇒ schemes agree.
    let homogeneous = DataConfig {
        heterogeneity: 0.0,
        ..data()
    };
    let result = run_cv_comparison(&CvComparisonConfig {
        data: homogeneous,
        folds: 5,
        seed: 0,
        classifiers: vec![ClassifierKind::RandomForest],
        scheme: LabelScheme::Endo,
        top_k: Some(20),
    });
    assert!(
        result.mean_gap.abs() < 0.05,
        "gap without heterogeneity: {:.4}",
        result.mean_gap
    );
}
