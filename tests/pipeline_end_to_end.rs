//! End-to-end integration tests: raw trajectories → segmentation →
//! features → normalisation → classification, across crate boundaries.

use trajlib::prelude::*;

fn cohort(seed: u64) -> SynthDataset {
    SynthDataset::generate(&SynthConfig {
        n_users: 10,
        segments_per_user: (10, 16),
        seed,
        ..SynthConfig::default()
    })
}

#[test]
fn full_pipeline_beats_majority_class_baseline() {
    let synth = cohort(1);
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let dataset = pipeline.dataset_from_segments(&synth.segments);

    // Majority-class baseline.
    let counts = dataset.class_counts();
    let majority = *counts.iter().max().unwrap() as f64 / dataset.len() as f64;

    let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
    let scores = cross_validate(&factory, &dataset, &KFold::new(5, 1), 0).unwrap();
    let acc = trajlib::ml::cv::mean_accuracy(&scores);
    assert!(
        acc > majority + 0.1,
        "RF accuracy {acc} vs majority baseline {majority}"
    );
}

#[test]
fn raw_trajectory_path_equals_segment_path() {
    // Going through to_raw_trajectories + segmentation must yield the
    // same samples as using the generator's segments directly.
    let synth = cohort(2);
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));

    let direct = pipeline.dataset_from_segments(&synth.segments);
    let raws = synth.to_raw_trajectories(0); // no label slop: exact match
    let via_raw = pipeline.dataset_from_raw(&raws);

    assert_eq!(direct.len(), via_raw.len());
    // Same label multiset (row order may differ between the two paths).
    let mut a = direct.y.clone();
    let mut b = via_raw.y.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn pipeline_is_deterministic() {
    let synth = cohort(3);
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let a = pipeline.dataset_from_segments(&synth.segments);
    let b = pipeline.dataset_from_segments(&synth.segments);
    assert_eq!(a, b);

    let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
    let s1 = cross_validate(&factory, &a, &KFold::new(3, 9), 4).unwrap();
    let s2 = cross_validate(&factory, &b, &KFold::new(3, 9), 4).unwrap();
    assert_eq!(s1, s2, "same seed ⇒ same cross-validation scores");
}

#[test]
fn every_paper_classifier_clears_chance_end_to_end() {
    let synth = cohort(4);
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let dataset = pipeline.dataset_from_segments(&synth.segments);
    let chance = 1.0 / dataset.n_classes as f64;
    for kind in ClassifierKind::PAPER_SIX {
        let factory = move |seed: u64| kind.build(seed);
        let scores = cross_validate(&factory, &dataset, &KFold::new(3, 1), 0).unwrap();
        let acc = trajlib::ml::cv::mean_accuracy(&scores);
        assert!(
            acc > chance + 0.1,
            "{kind}: accuracy {acc} vs chance {chance}"
        );
    }
}

#[test]
fn top20_subset_keeps_most_of_the_accuracy() {
    // The paper's step-5 claim: 20 features suffice.
    let synth = cohort(5);
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let full = pipeline.dataset_from_segments(&synth.segments);

    let ranked = rf_importance_ranking(&full, 50, 1);
    let top20: Vec<usize> = ranked.iter().take(20).map(|r| r.0).collect();
    let reduced = full.select_features(&top20);

    let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
    let acc_full = trajlib::ml::cv::mean_accuracy(
        &cross_validate(&factory, &full, &KFold::new(3, 1), 0).unwrap(),
    );
    let acc_top20 = trajlib::ml::cv::mean_accuracy(
        &cross_validate(&factory, &reduced, &KFold::new(3, 1), 0).unwrap(),
    );
    assert!(
        acc_top20 > acc_full - 0.05,
        "top-20 accuracy {acc_top20} vs full {acc_full}"
    );
}

#[test]
fn noise_step_is_optional_and_both_paths_work() {
    let synth = cohort(6);
    for noise in [NoiseConfig::disabled(), NoiseConfig::enabled()] {
        let config = PipelineConfig::builder(LabelScheme::Dabiri)
            .noise(noise)
            .build();
        let pipeline = Pipeline::new(config);
        let dataset = pipeline.dataset_from_segments(&synth.segments);
        assert!(!dataset.is_empty());
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let scores = cross_validate(&factory, &dataset, &KFold::new(3, 1), 0).unwrap();
        assert!(trajlib::ml::cv::mean_accuracy(&scores) > 0.4);
    }
}

#[test]
fn group_cv_never_leaks_users_end_to_end() {
    let synth = cohort(7);
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo));
    let dataset = pipeline.dataset_from_segments(&synth.segments);
    let folds = trajlib::ml::cv::Splitter::split(&GroupKFold { n_splits: 4 }, &dataset).unwrap();
    for fold in folds {
        let train_users: std::collections::HashSet<u32> =
            fold.train.iter().map(|&i| dataset.groups[i]).collect();
        assert!(fold
            .test
            .iter()
            .all(|&i| !train_users.contains(&dataset.groups[i])));
    }
}
