//! Model persistence: every fitted model serialises through serde (JSON)
//! and the deserialised copy predicts identically — the property a
//! downstream deployment (train offline, ship the model) relies on.

use trajlib::ml::boosting::{AdaBoost, AdaBoostConfig, GbdtConfig, GradientBoosting};
use trajlib::ml::forest::ForestConfig;
use trajlib::ml::linear::{LinearSvm, SvmConfig};
use trajlib::ml::neural::{Mlp, MlpConfig};
use trajlib::ml::tree::{DecisionTree, TreeConfig};
use trajlib::prelude::*;

fn dataset() -> Dataset {
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (6, 9),
        seed: 31,
        ..SynthConfig::default()
    });
    Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri)).dataset_from_segments(&synth.segments)
}

fn assert_identical_predictions<M>(model: &M, data: &Dataset)
where
    M: serde::Serialize + serde::de::DeserializeOwned + Classifier,
{
    let json = serde_json::to_string(model).expect("serialise");
    let restored: M = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(model.predict(data), restored.predict(data));
}

#[test]
fn decision_tree_round_trips() {
    let data = dataset();
    let mut tree = DecisionTree::new(TreeConfig::default());
    Classifier::fit(&mut tree, &data);
    assert_identical_predictions(&tree, &data);
}

#[test]
fn random_forest_round_trips() {
    let data = dataset();
    let mut forest = RandomForest::new(ForestConfig {
        n_estimators: 8,
        ..ForestConfig::default()
    });
    Classifier::fit(&mut forest, &data);
    assert_identical_predictions(&forest, &data);

    // Importances and OOB survive the round trip too.
    let json = serde_json::to_string(&forest).unwrap();
    let restored: RandomForest = serde_json::from_str(&json).unwrap();
    assert_eq!(forest.feature_importances(), restored.feature_importances());
    assert_eq!(forest.oob_score(), restored.oob_score());
}

#[test]
fn gradient_boosting_round_trips() {
    let data = dataset();
    let mut gbdt = GradientBoosting::new(GbdtConfig {
        n_rounds: 4,
        ..GbdtConfig::default()
    });
    Classifier::fit(&mut gbdt, &data);
    assert_identical_predictions(&gbdt, &data);
}

#[test]
fn adaboost_round_trips() {
    let data = dataset();
    let mut ada = AdaBoost::new(AdaBoostConfig {
        n_estimators: 6,
        ..AdaBoostConfig::default()
    });
    Classifier::fit(&mut ada, &data);
    assert_identical_predictions(&ada, &data);
}

#[test]
fn svm_round_trips() {
    let data = dataset();
    let mut svm = LinearSvm::new(SvmConfig {
        epochs: 3,
        ..SvmConfig::default()
    });
    Classifier::fit(&mut svm, &data);
    assert_identical_predictions(&svm, &data);
}

#[test]
fn mlp_round_trips() {
    let data = dataset();
    let mut mlp = Mlp::new(MlpConfig {
        epochs: 3,
        hidden: vec![8],
        ..MlpConfig::default()
    });
    Classifier::fit(&mut mlp, &data);
    assert_identical_predictions(&mlp, &data);
}

#[test]
fn scaler_round_trips() {
    let rows = vec![vec![0.0, 5.0], vec![2.0, 9.0], vec![1.0, 7.0]];
    let scaler = MinMaxScaler::fit(&rows);
    let json = serde_json::to_string(&scaler).unwrap();
    let restored: MinMaxScaler = serde_json::from_str(&json).unwrap();
    let mut a = vec![1.5, 6.0];
    let mut b = a.clone();
    scaler.transform_row(&mut a);
    restored.transform_row(&mut b);
    assert_eq!(a, b);
}

#[test]
fn erased_model_round_trips_for_every_kind() {
    // The serving stack persists classifiers through the type-erased enum;
    // every roster entry must survive JSON and predict identically.
    let data = dataset();
    for kind in ["rf", "xgb", "tree", "ada", "svm", "mlp", "knn"] {
        let mut model = trajlib::ml::ErasedModel::from_cli_name(kind, 5).expect("known kind");
        model.fit(&data);
        assert_identical_predictions(&model, &data);
    }
}

#[test]
fn erased_model_json_matches_inner_model_wire_format() {
    // ErasedModel is externally tagged with the same variant names the CLI
    // used before it existed, so artifacts are readable either way: the
    // tagged payload equals the plain model's own serialisation.
    let data = dataset();
    let mut forest = RandomForest::new(ForestConfig {
        n_estimators: 8,
        ..ForestConfig::default()
    });
    Classifier::fit(&mut forest, &data);
    let mut erased = trajlib::ml::ErasedModel::from_cli_name("rf", 5).unwrap();
    Classifier::fit(&mut erased, &data);

    let erased_json = serde_json::to_string(&erased).unwrap();
    assert!(erased_json.starts_with("{\"RandomForest\":"));
    let inner = erased_json
        .strip_prefix("{\"RandomForest\":")
        .and_then(|s| s.strip_suffix('}'))
        .expect("externally tagged");
    let restored: RandomForest = serde_json::from_str(inner).expect("payload is a plain forest");
    assert_eq!(erased.predict(&data), restored.predict(&data));
}

#[test]
fn model_artifact_round_trips_through_registry() {
    // The full serving artifact — scaler, selected feature names and the
    // fitted model — survives save/load and predicts identically on raw
    // GPS points.
    use traj_serve::artifact::{ModelArtifact, TrainSpec};
    use traj_serve::registry::ModelRegistry;

    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (6, 9),
        seed: 31,
        ..SynthConfig::default()
    });
    let mut spec = TrainSpec::paper_default("rf");
    spec.top_k = Some(20);
    spec.seed = 5;
    let artifact = ModelArtifact::train(&spec, &synth.segments).expect("train");
    assert_eq!(artifact.feature_names.len(), 20);

    let dir = std::env::temp_dir().join("trajlib_model_persistence_registry");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rf.json");
    artifact.save(&path).expect("save");

    let mut registry = ModelRegistry::new();
    registry.load_dir(&dir).expect("load_dir");
    let model = registry.get(None).expect("default model");
    let restored = registry.get(Some("rf@v1")).expect("pinned version");

    let probe = synth
        .segments
        .iter()
        .find(|s| s.len() >= traj_serve::artifact::MIN_SEGMENT_POINTS)
        .expect("a long-enough segment");
    let a = model.predict_points(&probe.points).expect("predict");
    let b = restored.predict_points(&probe.points).expect("predict");
    assert_eq!(a.class, b.class);
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.label, b.label);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_config_round_trips() {
    let config = PipelineConfig::builder(LabelScheme::Endo)
        .select_features(["speed_p90"])
        .noise(NoiseConfig::enabled())
        .build();
    let json = serde_json::to_string(&config).unwrap();
    let restored: PipelineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, restored);
}
