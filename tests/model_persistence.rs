//! Model persistence: every fitted model serialises through serde (JSON)
//! and the deserialised copy predicts identically — the property a
//! downstream deployment (train offline, ship the model) relies on.

use trajlib::ml::boosting::{AdaBoost, AdaBoostConfig, GbdtConfig, GradientBoosting};
use trajlib::ml::forest::ForestConfig;
use trajlib::ml::linear::{LinearSvm, SvmConfig};
use trajlib::ml::neural::{Mlp, MlpConfig};
use trajlib::ml::tree::{DecisionTree, TreeConfig};
use trajlib::prelude::*;

fn dataset() -> Dataset {
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (6, 9),
        seed: 31,
        ..SynthConfig::default()
    });
    Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri)).dataset_from_segments(&synth.segments)
}

fn assert_identical_predictions<M>(model: &M, data: &Dataset)
where
    M: serde::Serialize + serde::de::DeserializeOwned + Classifier,
{
    let json = serde_json::to_string(model).expect("serialise");
    let restored: M = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(model.predict(data), restored.predict(data));
}

#[test]
fn decision_tree_round_trips() {
    let data = dataset();
    let mut tree = DecisionTree::new(TreeConfig::default());
    Classifier::fit(&mut tree, &data);
    assert_identical_predictions(&tree, &data);
}

#[test]
fn random_forest_round_trips() {
    let data = dataset();
    let mut forest = RandomForest::new(ForestConfig {
        n_estimators: 8,
        ..ForestConfig::default()
    });
    Classifier::fit(&mut forest, &data);
    assert_identical_predictions(&forest, &data);

    // Importances and OOB survive the round trip too.
    let json = serde_json::to_string(&forest).unwrap();
    let restored: RandomForest = serde_json::from_str(&json).unwrap();
    assert_eq!(forest.feature_importances(), restored.feature_importances());
    assert_eq!(forest.oob_score(), restored.oob_score());
}

#[test]
fn gradient_boosting_round_trips() {
    let data = dataset();
    let mut gbdt = GradientBoosting::new(GbdtConfig {
        n_rounds: 4,
        ..GbdtConfig::default()
    });
    Classifier::fit(&mut gbdt, &data);
    assert_identical_predictions(&gbdt, &data);
}

#[test]
fn adaboost_round_trips() {
    let data = dataset();
    let mut ada = AdaBoost::new(AdaBoostConfig {
        n_estimators: 6,
        ..AdaBoostConfig::default()
    });
    Classifier::fit(&mut ada, &data);
    assert_identical_predictions(&ada, &data);
}

#[test]
fn svm_round_trips() {
    let data = dataset();
    let mut svm = LinearSvm::new(SvmConfig {
        epochs: 3,
        ..SvmConfig::default()
    });
    Classifier::fit(&mut svm, &data);
    assert_identical_predictions(&svm, &data);
}

#[test]
fn mlp_round_trips() {
    let data = dataset();
    let mut mlp = Mlp::new(MlpConfig {
        epochs: 3,
        hidden: vec![8],
        ..MlpConfig::default()
    });
    Classifier::fit(&mut mlp, &data);
    assert_identical_predictions(&mlp, &data);
}

#[test]
fn scaler_round_trips() {
    let rows = vec![vec![0.0, 5.0], vec![2.0, 9.0], vec![1.0, 7.0]];
    let scaler = MinMaxScaler::fit(&rows);
    let json = serde_json::to_string(&scaler).unwrap();
    let restored: MinMaxScaler = serde_json::from_str(&json).unwrap();
    let mut a = vec![1.5, 6.0];
    let mut b = a.clone();
    scaler.transform_row(&mut a);
    restored.transform_row(&mut b);
    assert_eq!(a, b);
}

#[test]
fn pipeline_config_round_trips() {
    let config = PipelineConfig::paper(LabelScheme::Endo)
        .with_selected_features(vec!["speed_p90".into()])
        .with_noise(NoiseConfig::enabled());
    let json = serde_json::to_string(&config).unwrap();
    let restored: PipelineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, restored);
}
