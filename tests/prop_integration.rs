//! Property-based integration tests over the whole stack: for arbitrary
//! generator configurations the pipeline must produce well-formed,
//! finite, normalised datasets, and the cross-validation machinery must
//! partition them lawfully.

use proptest::prelude::*;
use trajlib::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = SynthConfig> {
    (2usize..6, 3usize..7, any::<u64>(), 0.0..1.0f64).prop_map(
        |(n_users, min_segments, seed, heterogeneity)| SynthConfig {
            n_users,
            segments_per_user: (min_segments, min_segments + 3),
            seed,
            modes: None,
            heterogeneity,
            max_points_per_segment: 60,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pipeline_output_is_wellformed(config in arbitrary_config()) {
        let synth = SynthDataset::generate(&config);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let dataset = pipeline.dataset_from_segments(&synth.segments);

        prop_assert_eq!(dataset.len(), synth.segments.len());
        prop_assert_eq!(dataset.n_features(), 70);
        for i in 0..dataset.len() {
            for &v in dataset.row(i) {
                prop_assert!(v.is_finite());
                prop_assert!((0.0..=1.0).contains(&v), "minmax bound: {}", v);
            }
            prop_assert!(dataset.y[i] < dataset.n_classes);
        }
    }

    #[test]
    fn label_slop_only_shrinks_segments(config in arbitrary_config(), slop in 0usize..4) {
        let synth = SynthDataset::generate(&config);
        let raws = synth.to_raw_trajectories(slop);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let dataset = pipeline.dataset_from_raw(&raws);
        // Slop trims boundary labels; segments only disappear, never
        // multiply (each generated segment sits on its own user+day).
        prop_assert!(dataset.len() <= synth.segments.len());
        // Mild slop keeps everything (segments have ≥ 30 points).
        if slop <= 2 {
            prop_assert_eq!(dataset.len(), synth.segments.len());
        }
    }

    #[test]
    fn kfold_partitions_any_pipeline_output(config in arbitrary_config(), folds in 2usize..5) {
        let synth = SynthDataset::generate(&config);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let dataset = pipeline.dataset_from_segments(&synth.segments);
        prop_assume!(dataset.len() >= folds);

        let splits = trajlib::ml::cv::Splitter::split(&KFold::new(folds, 3), &dataset).unwrap();
        let mut seen = vec![false; dataset.len()];
        for fold in splits {
            prop_assert_eq!(fold.train.len() + fold.test.len(), dataset.len());
            for &i in &fold.test {
                prop_assert!(!seen[i], "sample {} tested twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn group_kfold_respects_user_boundaries_always(config in arbitrary_config()) {
        let synth = SynthDataset::generate(&config);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let dataset = pipeline.dataset_from_segments(&synth.segments);
        let n_groups = dataset.distinct_groups().len();
        prop_assume!(n_groups >= 2);

        let splits =
            trajlib::ml::cv::Splitter::split(&GroupKFold { n_splits: 2 }, &dataset).unwrap();
        for fold in splits {
            let train_users: std::collections::HashSet<u32> =
                fold.train.iter().map(|&i| dataset.groups[i]).collect();
            for &i in &fold.test {
                prop_assert!(!train_users.contains(&dataset.groups[i]));
            }
        }
    }

    #[test]
    fn decision_tree_training_accuracy_dominates_chance(config in arbitrary_config()) {
        let synth = SynthDataset::generate(&config);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let dataset = pipeline.dataset_from_segments(&synth.segments);
        prop_assume!(dataset.len() >= 10);

        let mut model = ClassifierKind::DecisionTree.build(1);
        model.fit(&dataset);
        let pred = model.predict(&dataset);
        let acc = accuracy(&dataset.y, &pred);
        // An unpruned CART must (near-)memorise its training set.
        prop_assert!(acc > 0.95, "training accuracy {}", acc);
    }
}
