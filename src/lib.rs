//! Reproduction package for Etemad, Soares Júnior and Matwin, *"On
//! Feature Selection and Evaluation of Transportation Mode Prediction
//! Strategies"* (EDBT 2019).
//!
//! This crate only re-exports [`trajlib`] so that the repository-level
//! `examples/` and `tests/` have a single dependency root; the actual
//! library lives in the `crates/` workspace members.

pub use trajlib;
pub use trajlib::prelude;
