//! Active labeling of trajectories — the annotation-budget scenario.
//!
//! GeoLife has 182 users but only 69 annotated theirs; labels are the
//! expensive part of mode prediction. The paper's introduction lists
//! active learning among the open trajectory-mining topics (its citation
//! [24] is the authors' ANALYTIC system). This example runs pool-based
//! uncertainty sampling against random labeling on synthetic GeoLife
//! segments and prints both learning curves.
//!
//! ```text
//! cargo run --release --example active_labeling
//! ```

use trajlib::prelude::*;
use trajlib::select::{active_learning_curve, ActiveLearningConfig, QueryStrategy};

fn main() {
    // A labeled pool (the oracle) and a held-out test cohort from
    // different users.
    let pool_cohort = SynthDataset::generate(&SynthConfig {
        n_users: 12,
        segments_per_user: (20, 30),
        seed: 60,
        ..SynthConfig::default()
    });
    let test_cohort = SynthDataset::generate(&SynthConfig {
        n_users: 6,
        segments_per_user: (15, 20),
        seed: 61,
        ..SynthConfig::default()
    });
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let pool = pipeline.dataset_from_segments(&pool_cohort.segments);
    let test = pipeline.dataset_from_segments(&test_cohort.segments);
    println!(
        "pool: {} unlabeled segments; test: {} segments from unseen users\n",
        pool.len(),
        test.len()
    );

    let mut curves = Vec::new();
    for (name, strategy) in [
        ("entropy", QueryStrategy::Entropy),
        ("margin", QueryStrategy::Margin),
        ("random", QueryStrategy::Random),
    ] {
        let curve = active_learning_curve(
            &pool,
            &test,
            &ActiveLearningConfig {
                initial_labeled: 25,
                batch_size: 25,
                rounds: 8,
                n_estimators: 30,
                strategy,
                seed: 7,
            },
        );
        curves.push((name, curve));
    }

    println!("labels | entropy | margin  | random");
    println!("-------+---------+---------+-------");
    let n_rounds = curves[0].1.len();
    for i in 0..n_rounds {
        let n = curves[0].1[i].n_labeled;
        print!("{n:>6} |");
        for (_, curve) in &curves {
            print!(
                " {:>7.3} |",
                curve.get(i).map_or(f64::NAN, |r| r.test_accuracy)
            );
        }
        println!();
    }

    let auc = |name: &str| {
        let curve = &curves.iter().find(|(n, _)| *n == name).unwrap().1;
        curve.iter().map(|r| r.test_accuracy).sum::<f64>() / curve.len() as f64
    };
    println!(
        "\nmean accuracy across the budget: entropy {:.3}, margin {:.3}, random {:.3}",
        auc("entropy"),
        auc("margin"),
        auc("random")
    );
    println!("uncertainty sampling concentrates annotation effort on the");
    println!("confusable segments (car vs taxi, bus vs slow car) first.");
}
