//! Feature selection (the paper's §4.2) on a small cohort: rank the 70
//! trajectory features three ways — random-forest importance (the
//! paper's "information theoretical" method), sequential-forward wrapper
//! search, and a mutual-information filter — and compare what each puts
//! on top.
//!
//! ```text
//! cargo run --release --example feature_selection
//! ```

use trajlib::prelude::*;
use trajlib::select::wrapper::ForwardSelectionConfig;

fn main() {
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 15,
        segments_per_user: (12, 20),
        seed: 11,
        ..SynthConfig::default()
    });
    // The paper's §4.2 protocol: Endo label set, user-oriented CV.
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo));
    let dataset = pipeline.dataset_from_segments(&synth.segments);
    println!(
        "{} samples × {} features, {} users\n",
        dataset.len(),
        dataset.n_features(),
        dataset.distinct_groups().len()
    );

    // Method 1 (Fig. 3a): RF impurity importance.
    let ranked = rf_importance_ranking(&dataset, 50, 1);
    println!("RF-importance top 10:");
    for (i, (feature, importance)) in ranked.iter().take(10).enumerate() {
        println!(
            "  {:>2}. {:<25} {:.4}",
            i + 1,
            dataset.feature_names[*feature],
            importance
        );
    }
    println!(
        "\npaper: F_speed_p90 is the most essential feature — here: {}\n",
        dataset.feature_names[ranked[0].0]
    );

    // Method 2 (Fig. 3b): wrapper forward search (first 5 steps, small
    // forest — the wrapper is quadratic in evaluations).
    let factory =
        |seed: u64| -> Box<dyn Classifier> { Box::new(RandomForest::with_estimators(15, seed)) };
    let splitter = GroupKFold { n_splits: 3 };
    let curve = forward_select(
        &dataset,
        &factory,
        &splitter,
        &ForwardSelectionConfig {
            max_features: 5,
            seed: 0,
            patience: None,
        },
    )
    .expect("cohort has enough users for 3 group folds");
    println!("wrapper search, first 5 features:");
    for (k, step) in curve.steps.iter().enumerate() {
        println!(
            "  step {}: +{:<25} user-CV accuracy {:.3}",
            k + 1,
            step.feature_name,
            step.accuracy
        );
    }

    // Method 3: mutual-information filter (selection ablation).
    let mi = trajlib::select::mi_ranking(&dataset, 10);
    println!("\nmutual-information top 5:");
    for (feature, bits) in mi.iter().take(5) {
        println!("  {:<25} {:.3} bits", dataset.feature_names[*feature], bits);
    }

    // The three methods should broadly agree that speed statistics carry
    // the signal.
    let top_by_importance = &dataset.feature_names[ranked[0].0];
    assert!(
        top_by_importance.contains("speed") || top_by_importance.contains("distance"),
        "kinematic feature expected on top, got {top_by_importance}"
    );
}
