//! Mode inference for an unseen user — the deployment scenario the
//! paper's user-oriented evaluation simulates: train on a cohort, then
//! classify trips of someone who was never in the training data.
//!
//! ```text
//! cargo run --release --example mode_inference
//! ```

use trajlib::prelude::*;

fn main() {
    // Train on users 0..18.
    let train_cohort = SynthDataset::generate(&SynthConfig {
        n_users: 18,
        segments_per_user: (15, 25),
        seed: 100,
        ..SynthConfig::default()
    });
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    // NOTE: for honest held-out evaluation the scaler must be fit on the
    // training cohort; extract unnormalised features and scale manually.
    let unnormalised = Pipeline::new(
        PipelineConfig::builder(LabelScheme::Dabiri)
            .normalization(Normalization::None)
            .build(),
    );
    let train_raw = unnormalised.dataset_from_segments(&train_cohort.segments);
    let mut train_rows: Vec<Vec<f64>> = (0..train_raw.len())
        .map(|i| train_raw.row(i).to_vec())
        .collect();
    let scaler = MinMaxScaler::fit(&train_rows);
    scaler.transform(&mut train_rows);
    let train = Dataset::from_rows(
        &train_rows,
        train_raw.y.clone(),
        train_raw.n_classes,
        train_raw.groups.clone(),
        train_raw.feature_names.clone(),
    );

    let mut forest = RandomForest::with_estimators(50, 0);
    forest.fit(&train);
    println!(
        "trained on {} segments from {} users (OOB accuracy {:.3})",
        train.len(),
        train.distinct_groups().len(),
        forest.oob_score().unwrap_or(f64::NAN)
    );

    // A brand-new user (different seed ⇒ disjoint user traits).
    let new_user = SynthDataset::generate(&SynthConfig {
        n_users: 1,
        segments_per_user: (8, 8),
        seed: 999,
        ..SynthConfig::default()
    });
    let test_raw = unnormalised.dataset_from_segments(&new_user.segments);
    let class_names = LabelScheme::Dabiri.class_names();

    println!("\nunseen user's trips:");
    let mut correct = 0usize;
    for i in 0..test_raw.len() {
        let mut row = test_raw.row(i).to_vec();
        scaler.transform_row(&mut row);
        let predicted = forest.predict_row(&row);
        let probs = forest.predict_proba_row(&row);
        let truth = test_raw.y[i];
        if predicted == truth {
            correct += 1;
        }
        println!(
            "  trip {i}: true {:<8} predicted {:<8} (confidence {:.2}) {}",
            class_names[truth],
            class_names[predicted],
            probs[predicted],
            if predicted == truth { "✓" } else { "✗" }
        );
    }
    println!(
        "\nheld-out user accuracy: {}/{} — the paper's §4.4 point: expect\n\
         this to be lower than random-CV numbers suggest.",
        correct,
        test_raw.len()
    );

    let _ = pipeline; // the normalised pipeline is what in-cohort studies use
}
