//! Serving demo: train a model artifact, stand up the inference server
//! in-process, and query it over real HTTP — the full train-offline /
//! serve-online loop of `trajlib-cli train-artifact` + `trajlib-cli
//! serve`, compressed into one program.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::io::BufReader;
use std::net::TcpStream;
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::http::client_request;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig};
use trajlib::prelude::*;

fn main() {
    // 1. "Offline": train an artifact on a synthetic GeoLife cohort.
    //    Unlike the CSV-centric Pipeline, the artifact keeps everything a
    //    server needs to score raw GPS points: the selected feature names,
    //    the training-time Min–Max ranges and the fitted classifier.
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 10,
        segments_per_user: (8, 14),
        seed: 11,
        ..SynthConfig::default()
    });
    let spec = TrainSpec {
        top_k: Some(20), // paper step 4/5: keep the top-20 features
        seed: 7,
        ..TrainSpec::paper_default("rf")
    };
    let artifact = ModelArtifact::train(&spec, &synth.segments).expect("train");
    println!(
        "trained {}@v{} on {} segments ({} features, training accuracy {:.3})",
        artifact.name,
        artifact.version,
        synth.segments.len(),
        artifact.feature_names.len(),
        artifact.training_accuracy(&synth.segments)
    );

    // 2. "Online": load the artifact into a registry and serve it. Port 0
    //    lets the OS pick a free port.
    let mut registry = ModelRegistry::new();
    registry.insert(artifact).expect("register");
    let mut handle = serve("127.0.0.1:0", registry, ServerConfig::default()).expect("bind");
    println!("serving on http://{}", handle.addr());

    // 3. A client posts raw GPS points and gets a mode label with
    //    per-class scores.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut client = BufReader::new(stream);

    let segment = synth
        .segments
        .iter()
        .find(|s| s.len() >= MIN_SEGMENT_POINTS)
        .expect("long segment");
    let points: Vec<String> = segment
        .points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    let request = format!("{{\"points\":[{}]}}", points.join(","));

    let (status, body) =
        client_request(&mut client, "POST", "/predict", Some(&request)).expect("predict request");
    println!("POST /predict → {status}");
    println!("  {body}");
    println!("  (true mode of that segment: {})", segment.mode);

    // 4. The metrics endpoint has already seen the request.
    let (status, body) =
        client_request(&mut client, "GET", "/metrics", None).expect("metrics request");
    println!("GET /metrics → {status}");
    for line in body.lines().take(6) {
        println!("  {line}");
    }
    println!("  …");

    handle.stop().expect("stop");
    println!("server stopped cleanly");
}
