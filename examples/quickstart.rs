//! Quickstart: the eight-step framework end to end on a synthetic
//! GeoLife cohort.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's pipeline: generate labeled GPS segments,
//! extract the 70 trajectory features (Min–Max normalised), train the
//! paper's best classifier (random forest) and evaluate it under random
//! five-fold cross-validation.

use trajlib::prelude::*;

fn main() {
    // 0. Data. The real GeoLife dataset cannot ship with this repository;
    //    the synthetic generator reproduces its structure (see DESIGN.md).
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 20,
        segments_per_user: (15, 25),
        seed: 7,
        ..SynthConfig::default()
    });
    println!(
        "generated {} labeled segments from {} users",
        synth.segments.len(),
        synth.users.len()
    );

    // 1–3, 7. Segmentation is already done (the generator emits labeled
    //    segments); extract point features, the 70 trajectory features,
    //    and Min–Max normalise — all in one Pipeline call.
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let dataset = pipeline.dataset_from_segments(&synth.segments);
    println!(
        "feature table: {} samples × {} features, {} classes",
        dataset.len(),
        dataset.n_features(),
        dataset.n_classes
    );

    // 8. Classify and evaluate: random forest, 5-fold random CV.
    let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
    let scores =
        cross_validate(&factory, &dataset, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
    for (fold, s) in scores.iter().enumerate() {
        println!(
            "fold {fold}: accuracy {:.3}, weighted F1 {:.3} ({} train / {} test)",
            s.accuracy, s.f1_weighted, s.train_size, s.test_size
        );
    }
    let mean_acc = trajlib::ml::cv::mean_accuracy(&scores);
    println!(
        "mean accuracy: {:.3} (paper's Fig. 2: RF ≈ 0.904 on real GeoLife)",
        mean_acc
    );

    // Bonus: a single fitted model and one prediction.
    let mut forest = RandomForest::with_estimators(50, 0);
    forest.fit(&dataset);
    let class_names = LabelScheme::Dabiri.class_names();
    let row = dataset.row(0);
    let probs = forest.predict_proba_row(row);
    println!("sample 0: true class {}", class_names[dataset.y[0]]);
    for (name, p) in class_names.iter().zip(&probs) {
        println!("  P({name:<8}) = {p:.3}");
    }
    assert!(
        mean_acc > 0.5,
        "the pipeline should comfortably beat chance"
    );
}
