//! Label-free segmentation — addressing the paper's own caveat.
//!
//! §3.2: "The assumption that the transportation modes are available for
//! test set segmentation is invalid since we are going to predict them;
//! However, we need to prepare a controlled environment similar to [2]
//! and [4] to study the feature selection."
//!
//! This example shows the deployable alternative: Zheng et al.'s
//! walk-based change-point segmentation (people walk between modes),
//! followed by the trained classifier over the unlabeled pieces.
//!
//! ```text
//! cargo run --release --example unsupervised_segmentation
//! ```

use trajlib::geo::walk_segmentation::{
    boundary_recall, walk_based_segmentation, WalkSegmentationConfig,
};
use trajlib::prelude::*;

fn main() {
    // Train the paper's model on a labeled cohort.
    let train_cohort = SynthDataset::generate(&SynthConfig {
        n_users: 15,
        segments_per_user: (12, 20),
        seed: 21,
        ..SynthConfig::default()
    });
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let train = pipeline.dataset_from_segments(&train_cohort.segments);
    let mut forest = RandomForest::with_estimators(50, 0);
    forest.fit(&train);
    println!(
        "trained on {} labeled segments (OOB accuracy {:.3})\n",
        train.len(),
        forest.oob_score().unwrap_or(f64::NAN)
    );

    // A new user's day: walk → bus → walk → car → walk, spliced into one
    // contiguous unlabeled point stream (what a deployed system actually
    // sees). Each leg is simulated separately, then re-based in time so
    // leg k starts 30 s after leg k−1 ends.
    let legs = [
        TransportMode::Walk,
        TransportMode::Bus,
        TransportMode::Walk,
        TransportMode::Car,
        TransportMode::Walk,
    ];
    let mut truth_segments: Vec<Segment> = Vec::new();
    let mut clock_ms: i64 = 8 * 3600 * 1000; // 08:00
    for (k, &mode) in legs.iter().enumerate() {
        let one = SynthDataset::generate(&SynthConfig {
            n_users: 1,
            segments_per_user: (1, 1),
            seed: 700 + k as u64,
            modes: Some(vec![mode]),
            ..SynthConfig::default()
        });
        let mut seg = one.segments[0].clone();
        let base = seg.start_time().millis();
        for p in &mut seg.points {
            p.t = Timestamp::from_millis(clock_ms + (p.t.millis() - base));
        }
        clock_ms = seg.points.last().expect("non-empty leg").t.millis() + 30_000;
        truth_segments.push(seg);
    }
    let stream: Vec<TrajectoryPoint> = truth_segments
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    println!(
        "incoming stream: {} fixes, true modes: {:?}",
        stream.len(),
        truth_segments
            .iter()
            .map(|s| s.mode.name())
            .collect::<Vec<_>>()
    );

    // 1. Cut the stream without labels. Buses and cars *stop* (lights,
    //    bus stops), which looks momentarily walk-like; raising the
    //    minimum run length absorbs those pauses, exactly the "certainty
    //    filtering" Zheng et al. describe.
    let config = WalkSegmentationConfig {
        min_run_points: 40, // ≈ 80 s at this device's 2 s cadence
        ..WalkSegmentationConfig::default()
    };
    let (pieces, change_points) = walk_based_segmentation(&stream, &config);
    let recall = boundary_recall(&truth_segments, &change_points, 45);
    println!(
        "walk-based segmentation: {} pieces, {} change points,\n\
         boundary recall {:.2} (within ±90 s of a true mode change)\n",
        pieces.len(),
        change_points.len(),
        recall
    );

    // 2. Classify each piece. Deployment needs a frozen scaler: extract
    //    unnormalised training features once, fit the Min–Max scaler on
    //    them, train on the scaled table, then push every new piece
    //    through the same scaler.
    let raw_pipeline = Pipeline::new(
        PipelineConfig::builder(LabelScheme::Dabiri)
            .normalization(Normalization::None)
            .build(),
    );
    let raw_train = raw_pipeline.dataset_from_segments(&train_cohort.segments);
    let mut rows: Vec<Vec<f64>> = (0..raw_train.len())
        .map(|r| raw_train.row(r).to_vec())
        .collect();
    let scaler = MinMaxScaler::fit(&rows);
    scaler.transform(&mut rows);
    let scaled_train = Dataset::from_rows(
        &rows,
        raw_train.y.clone(),
        raw_train.n_classes,
        raw_train.groups.clone(),
        raw_train.feature_names.clone(),
    );
    let mut model = RandomForest::with_estimators(50, 0);
    model.fit(&scaled_train);

    let class_names = LabelScheme::Dabiri.class_names();
    for (i, piece) in pieces.iter().enumerate() {
        // Wrap the unlabeled piece as a segment (mode is a placeholder —
        // feature extraction never reads it).
        let seg = Segment::new(0, TransportMode::Walk, 0, piece.clone());
        let mut row = trajlib::features::trajectory_features::segment_features(&seg);
        scaler.transform_row(&mut row);
        let pred = model.predict_row(&row);
        println!(
            "piece {i}: {} fixes, {:>6.1} s, predicted {}",
            piece.len(),
            seg.duration_s(),
            class_names[pred]
        );
    }
    println!("\n(the paper's controlled experiments bypass this step by segmenting");
    println!("with ground-truth annotations; this is the production pathway)");
}
