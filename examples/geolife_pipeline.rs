//! Running the pipeline on a real GeoLife directory — or, when none is
//! available, on a synthetic distribution written to disk in GeoLife's
//! own on-disk format (PLT files + labels.txt) and loaded back through
//! the same parser the real data would use.
//!
//! ```text
//! GEOLIFE_DIR=/path/to/Geolife cargo run --release --example geolife_pipeline
//! cargo run --release --example geolife_pipeline            # synthetic fixture
//! ```

use std::fs;
use std::path::PathBuf;
use trajlib::geolife::loader::LoaderOptions;
use trajlib::geolife::write_geolife_layout;
use trajlib::prelude::*;

fn main() {
    let (root, cleanup): (PathBuf, bool) = match std::env::var("GEOLIFE_DIR") {
        Ok(dir) => (PathBuf::from(dir), false),
        Err(_) => {
            println!("GEOLIFE_DIR not set — writing a synthetic GeoLife-format fixture…");
            (write_synthetic_fixture(), true)
        }
    };

    // Parse PLT + labels.txt exactly as for the real distribution.
    let trajectories = trajlib::geolife::load_geolife_directory(
        &root,
        &LoaderOptions {
            labeled_users_only: true,
            max_users: Some(20),
        },
    )
    .expect("load GeoLife directory");
    println!(
        "loaded {} labeled users, {} GPS fixes total",
        trajectories.len(),
        trajectories.iter().map(|t| t.len()).sum::<usize>()
    );

    // Steps 1–8.
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let dataset = pipeline.dataset_from_raw(&trajectories);
    println!(
        "pipeline produced {} segments × {} features",
        dataset.len(),
        dataset.n_features()
    );

    if dataset.distinct_groups().len() >= 3 && dataset.len() >= 30 {
        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        let scores = cross_validate(&factory, &dataset, &KFold::new(3, 1), 0)
            .expect("dataset checked large enough above");
        println!(
            "3-fold random-CV accuracy: {:.3}",
            trajlib::ml::cv::mean_accuracy(&scores)
        );
    } else {
        println!("dataset too small for cross-validation — parsing demo only");
    }

    if cleanup {
        let _ = fs::remove_dir_all(&root);
    }
}

/// Writes a synthetic cohort in the real dataset's on-disk layout:
/// `Data/<user>/Trajectory/*.plt` plus `Data/<user>/labels.txt`.
fn write_synthetic_fixture() -> PathBuf {
    let root = std::env::temp_dir().join(format!("geolife_example_{}", std::process::id()));
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 6,
        segments_per_user: (8, 12),
        seed: 3,
        ..SynthConfig::default()
    });
    write_geolife_layout(&synth.to_raw_trajectories(2), &root).expect("write fixture");
    root
}
