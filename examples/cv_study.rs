//! The paper's headline methodological finding (§4.4): random
//! cross-validation is optimistic for trajectory data, because segments
//! of the same user are auto-correlated and random folds leak user
//! identity across the train/test boundary.
//!
//! ```text
//! cargo run --release --example cv_study
//! ```
//!
//! This example makes the mechanism visible by sweeping the synthetic
//! cohort's between-user heterogeneity: with identical users the two
//! schemes agree; the more users differ, the more optimistic random CV
//! becomes.

use trajlib::prelude::*;

fn main() {
    println!("heterogeneity | random-CV acc | user-CV acc | gap");
    println!("--------------+---------------+-------------+------");
    for heterogeneity in [0.0, 0.5, 1.0] {
        let synth = SynthDataset::generate(&SynthConfig {
            n_users: 15,
            segments_per_user: (12, 20),
            seed: 5,
            heterogeneity,
            ..SynthConfig::default()
        });
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo));
        let dataset = pipeline.dataset_from_segments(&synth.segments);

        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        let random =
            cross_validate(&factory, &dataset, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
        let user = cross_validate(&factory, &dataset, &GroupKFold { n_splits: 5 }, 0)
            .expect("cohort has enough users");
        let (ra, ua) = (
            trajlib::ml::cv::mean_accuracy(&random),
            trajlib::ml::cv::mean_accuracy(&user),
        );
        println!(
            "{heterogeneity:>13.1} | {ra:>13.3} | {ua:>11.3} | {:+.3}",
            ra - ua
        );
    }
    println!();
    println!("Paper §4.4: \"the random cross-validation method suggests optimistic");
    println!("results in comparison to user-oriented cross-validation\" — the gap");
    println!("above appears exactly when users behave differently from each other.");
}
