//! Lock-free counters and histograms for the reactor.
//!
//! Mirrors the shape of `traj_serve::metrics`: fixed-bucket histograms
//! with atomic counts, rendered into a hand-built JSON object by the
//! layer that owns the `/metrics` document. The reactor only mutates;
//! rendering lives here so serve and the cluster router emit the same
//! `"net"` section without duplicating the format.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Microsecond bucket upper bounds for the stall histograms. Same
/// ladder as serve's request-latency buckets: 50 µs to 1 s.
pub const STALL_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// A fixed-bucket histogram with atomic counters.
#[derive(Debug)]
pub struct Hist {
    counts: [AtomicU64; STALL_BOUNDS_US.len()],
    overflow: AtomicU64,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Hist {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        match STALL_BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// q-th observation (the serve convention). Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return STALL_BOUNDS_US[i];
            }
        }
        // Rank lands in the overflow bucket: report the max observed
        // scale we can honestly claim, the top bound.
        STALL_BOUNDS_US[STALL_BOUNDS_US.len() - 1]
    }

    /// Mean in microseconds, 0 when empty.
    pub fn mean_us(&self) -> u64 {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        self.sum.load(Ordering::Relaxed) / total
    }

    fn render_json(&self) -> String {
        let mut buckets = String::from("[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!(
                "{{\"le_us\": {}, \"count\": {}}}",
                STALL_BOUNDS_US[i],
                c.load(Ordering::Relaxed)
            ));
        }
        buckets.push(']');
        format!(
            "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"overflow\": {}, \"buckets\": {}}}",
            self.count(),
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.overflow.load(Ordering::Relaxed),
            buckets
        )
    }
}

/// Everything the reactor counts. One instance per reactor; shared as
/// `Arc<NetStats>` with whoever renders `/metrics`.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub accepts: AtomicU64,
    /// Accepts refused because the connection cap was reached.
    pub accept_rejected: AtomicU64,
    /// accept(2) errors other than WouldBlock (EMFILE, ECONNABORTED…).
    pub accept_errors: AtomicU64,
    /// Currently open connections (gauge).
    pub open_connections: AtomicU64,
    /// Complete requests handed to the service.
    pub requests: AtomicU64,
    /// Requests that arrived on a reused (keep-alive) connection.
    pub keepalive_requests: AtomicU64,
    /// Responses fully written back.
    pub responses: AtomicU64,
    /// Connections reaped mid-request by the idle deadline (408 sent).
    pub idle_reaps_408: AtomicU64,
    /// Idle keep-alive connections closed silently by the deadline.
    pub idle_closes: AtomicU64,
    /// Peer disconnected before its request completed.
    pub client_aborts: AtomicU64,
    /// Malformed requests rejected with 400.
    pub rejects_400: AtomicU64,
    /// Bodies over the cap rejected with 413.
    pub rejects_413: AtomicU64,
    /// Header blocks over the cap rejected with 431.
    pub rejects_431: AtomicU64,
    /// Connections closed because a response write stalled past the
    /// slow-client deadline.
    pub write_stall_closes: AtomicU64,
    /// Responses dropped because the connection was gone when the
    /// service finished.
    pub dropped_responses: AtomicU64,
    /// Wall time from first request byte to complete head+body.
    pub request_read_us: Hist,
    /// Wall time from response queued to fully flushed.
    pub response_write_us: Hist,
    /// Reactor start, for accepts/s.
    started: std::sync::OnceLock<Instant>,
}

impl NetStats {
    /// Creates a zeroed stats block stamped with the current instant.
    pub fn new() -> NetStats {
        let s = NetStats::default();
        let _ = s.started.set(Instant::now());
        s
    }

    fn uptime_s(&self) -> f64 {
        self.started
            .get()
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0)
            .max(1e-9)
    }

    /// Accepted connections per second since the reactor started.
    pub fn accepts_per_s(&self) -> f64 {
        self.accepts.load(Ordering::Relaxed) as f64 / self.uptime_s()
    }

    /// Fraction of requests that rode a reused connection.
    pub fn keepalive_reuse_ratio(&self) -> f64 {
        let total = self.requests.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        self.keepalive_requests.load(Ordering::Relaxed) as f64 / total as f64
    }

    /// Renders the `"net"` section body (a JSON object) for `/metrics`.
    pub fn render_json(&self) -> String {
        let l = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"open_connections\": {}, \"accepts\": {}, \"accepts_per_s\": {:.3}, ",
                "\"accept_rejected\": {}, \"accept_errors\": {}, ",
                "\"requests\": {}, \"keepalive_requests\": {}, \"keepalive_reuse_ratio\": {:.4}, ",
                "\"responses\": {}, \"idle_reaps_408\": {}, \"idle_closes\": {}, ",
                "\"client_aborts\": {}, \"rejects_400\": {}, \"rejects_413\": {}, \"rejects_431\": {}, ",
                "\"write_stall_closes\": {}, \"dropped_responses\": {}, ",
                "\"request_read_us\": {}, \"response_write_us\": {}}}"
            ),
            l(&self.open_connections),
            l(&self.accepts),
            self.accepts_per_s(),
            l(&self.accept_rejected),
            l(&self.accept_errors),
            l(&self.requests),
            l(&self.keepalive_requests),
            self.keepalive_reuse_ratio(),
            l(&self.responses),
            l(&self.idle_reaps_408),
            l(&self.idle_closes),
            l(&self.client_aborts),
            l(&self.rejects_400),
            l(&self.rejects_413),
            l(&self.rejects_431),
            l(&self.write_stall_closes),
            l(&self.dropped_responses),
            self.request_read_us.render_json(),
            self.response_write_us.render_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_quantiles_land_in_buckets() {
        let h = Hist::default();
        for _ in 0..90 {
            h.record(80); // ≤ 100 bucket
        }
        for _ in 0..10 {
            h.record(400_000); // ≤ 500_000 bucket
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.99), 500_000);
        assert!(h.mean_us() > 0);
    }

    #[test]
    fn hist_overflow_counts() {
        let h = Hist::default();
        h.record(5_000_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.99), 1_000_000);
        assert!(h.render_json().contains("\"overflow\": 1"));
    }

    #[test]
    fn stats_render_is_json_shaped() {
        let s = NetStats::new();
        s.accepts.fetch_add(3, Ordering::Relaxed);
        s.requests.fetch_add(4, Ordering::Relaxed);
        s.keepalive_requests.fetch_add(2, Ordering::Relaxed);
        let doc = s.render_json();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"accepts\": 3"));
        assert!(doc.contains("\"keepalive_reuse_ratio\": 0.5000"));
        assert!(doc.contains("\"request_read_us\": {\"count\": 0"));
    }
}
