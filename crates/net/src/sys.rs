//! The readiness syscall layer: `epoll` on Linux, `poll(2)` elsewhere.
//!
//! This is the workspace's second `unsafe` module (the first is
//! `traj_runtime::scope`), and it follows the same discipline: the
//! `unsafe` is confined to a handful of lines with a documented
//! obligation, behind a fully safe API. There is no `libc` crate in the
//! offline build, so the declarations below bind directly against the
//! platform C library that `std` already links — the same symbols, the
//! same ABI, just without the crates.io detour.
//!
//! The safe surface is [`Poller`]: register a file descriptor with an
//! interest set and a `u64` token, wait for events. Tokens are opaque
//! to this layer; the reactor packs a slot index and a generation
//! counter into them so a stale event for a recycled slot can be
//! detected and dropped.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No I/O interest — errors and hangups are still delivered.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes a half-closed peer: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition on the fd.
    pub failed: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::os::raw::c_int;

    // The kernel ABI packs `epoll_event` on x86-64 only; every other
    // architecture uses natural alignment. Mirroring glibc's
    // `__EPOLL_PACKED` exactly is what makes the struct layout safe to
    // hand to the kernel.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// An epoll instance (level-triggered, the default mode).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance with close-on-exec set.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flag word and returns a new
            // fd or -1; no pointers cross the boundary.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` is a live, correctly-laid-out epoll_event for
            // the duration of the call; the kernel copies it before
            // returning. DEL ignores the pointer entirely.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` with `interest` under `token`.
        pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        /// Removes `fd` from the set. Closing an fd also removes it, so
        /// this exists for the cases where the fd stays open (e.g. the
        /// listener during an accept cool-off).
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0)
        }

        /// Blocks until at least one event arrives or `timeout` passes,
        /// appending events to `out` (cleared first). `None` blocks
        /// indefinitely.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 200 µs timeout does not busy-spin at 0.
                Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as c_int,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            // SAFETY: `buf` outlives the call and `maxevents` matches
            // its length; the kernel writes at most that many entries.
            let n =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // Treated as a timeout; caller re-loops.
                }
                return Err(err);
            }
            for ev in &buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    failed: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is owned by this Poller and closed once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    //! Portable fallback over POSIX `poll(2)`: the same [`Poller`] API,
    //! with the registration table kept in userspace. O(n) per wait,
    //! which is fine for the connection counts a dev laptop sees; the
    //! production target (Linux) gets the real epoll above.
    use super::*;
    use std::collections::BTreeMap;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::sync::Mutex;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// Userspace registration table driven through `poll(2)`.
    #[derive(Debug)]
    pub struct Poller {
        table: Mutex<BTreeMap<RawFd, (Interest, u64)>>,
    }

    impl Poller {
        /// Creates an empty table.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                table: Mutex::new(BTreeMap::new()),
            })
        }

        /// Registers `fd` with `interest` under `token`.
        pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            self.table
                .lock()
                .expect("poller table poisoned")
                .insert(fd, (interest, token));
            Ok(())
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            self.add(fd, interest, token)
        }

        /// Removes `fd` from the set.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.table
                .lock()
                .expect("poller table poisoned")
                .remove(&fd);
            Ok(())
        }

        /// Blocks until at least one event arrives or `timeout` passes.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let entries: Vec<(RawFd, Interest, u64)> = {
                let table = self.table.lock().expect("poller table poisoned");
                table.iter().map(|(&fd, &(i, t))| (fd, i, t)).collect()
            };
            let mut fds: Vec<PollFd> = entries
                .iter()
                .map(|&(fd, interest, _)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as c_int,
            };
            // SAFETY: `fds` outlives the call and `nfds` matches its
            // length; the kernel writes only the `revents` fields.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &(_, _, token)) in fds.iter().zip(&entries) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    failed: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "traj-net needs a readiness syscall (epoll or poll); only Unix targets are supported"
);

pub use imp::Poller;
