//! Non-blocking HTTP client multiplexer for router → shard fan-out.
//!
//! One background thread owns the socket I/O for every in-flight
//! backend request: callers hand over a connected stream plus rendered
//! request bytes, block on a condvar, and get `(status, body)` back.
//! Concurrent fan-out to the whole shard pool therefore costs one
//! thread total, not one blocked thread per call — the client-side
//! mirror of the server reactor.
//!
//! Connections are pooled per address key after a keep-alive response.
//! A pooled stream can always have been reaped by the server's idle
//! deadline in the meantime; `take_pooled` probes for that cheaply, and
//! the retry policy for requests that *still* hit a stale one stays
//! where it has always lived, in the cluster backend.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::http1::{RespPoll, ResponseParser};
use crate::sys::{Event, Interest, Poller};

const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Deadline scan cadence for in-flight jobs.
const TICK: Duration = Duration::from_millis(25);
/// Idle pooled connections kept per address key.
const POOL_CAP: usize = 8;
/// Response head cap (mirrors the server's request-head cap).
const MAX_RESP_HEAD: usize = 8 * 1024;
/// Response body cap — generous because `/metrics` fan-in documents
/// grow with shard count.
const MAX_RESP_BODY: usize = 64 << 20;

/// Outcome slot the caller blocks on.
#[derive(Debug, Default)]
struct Done {
    slot: Mutex<Option<io::Result<(u16, String)>>>,
    cv: Condvar,
}

#[derive(Debug)]
struct NewJob {
    stream: TcpStream,
    request: Vec<u8>,
    deadline: Instant,
    pool_key: Option<String>,
    done: Arc<Done>,
}

#[derive(Debug)]
struct Injector {
    queue: Mutex<VecDeque<NewJob>>,
    waker: UnixStream,
}

impl Injector {
    fn push(&self, job: NewJob) {
        self.queue
            .lock()
            .expect("client injector poisoned")
            .push_back(job);
        let _ = (&self.waker).write(&[1]);
    }
}

type Pool = Mutex<HashMap<String, Vec<TcpStream>>>;

/// The multiplexing HTTP client. One per process is plenty; use
/// [`NetClient::global`].
#[derive(Debug)]
pub struct NetClient {
    injector: Arc<Injector>,
    pool: Arc<Pool>,
}

impl NetClient {
    /// Builds a client with its own event-loop thread.
    pub fn new() -> io::Result<NetClient> {
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            waker: waker_tx,
        });
        let pool: Arc<Pool> = Arc::new(Mutex::new(HashMap::new()));
        let mut evloop = EventLoop {
            poller: Poller::new()?,
            waker_rx,
            injector: Arc::clone(&injector),
            pool: Arc::clone(&pool),
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        };
        evloop
            .poller
            .add(evloop.waker_rx.as_raw_fd(), Interest::READ, TOKEN_WAKER)?;
        std::thread::Builder::new()
            .name("traj-net-client".to_owned())
            .spawn(move || evloop.run())?;
        Ok(NetClient { injector, pool })
    }

    /// The process-wide client (event loop lives for the process).
    pub fn global() -> &'static NetClient {
        static CLIENT: OnceLock<NetClient> = OnceLock::new();
        CLIENT.get_or_init(|| NetClient::new().expect("spawn net client event loop"))
    }

    /// Takes a pooled keep-alive connection for `key`, probing out ones
    /// the server has since closed.
    pub fn take_pooled(&self, key: &str) -> Option<TcpStream> {
        let mut pool = self.pool.lock().expect("client pool poisoned");
        let bucket = pool.get_mut(key)?;
        while let Some(stream) = bucket.pop() {
            // Streams in the pool are non-blocking: a healthy idle
            // connection reads WouldBlock; EOF or stray bytes mean the
            // server hung up (or broke framing) — discard.
            let mut probe = [0u8; 1];
            match (&stream).read(&mut probe) {
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Some(stream),
                _ => continue,
            }
        }
        None
    }

    /// Runs one request on `stream`, blocking the caller until the
    /// response arrives or `timeout` passes. With `pool_key`, the
    /// connection is returned to the pool after a keep-alive response.
    pub fn execute(
        &self,
        stream: TcpStream,
        request: Vec<u8>,
        timeout: Duration,
        pool_key: Option<String>,
    ) -> io::Result<(u16, String)> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let done = Arc::new(Done::default());
        let deadline = Instant::now() + timeout;
        self.injector.push(NewJob {
            stream,
            request,
            deadline,
            pool_key,
            done: Arc::clone(&done),
        });
        // The loop enforces the deadline; the extra grace here only
        // guards against the loop thread itself dying.
        let hard_deadline = deadline + Duration::from_secs(5);
        let mut slot = done.slot.lock().expect("client done slot poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let now = Instant::now();
            if now >= hard_deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "net client event loop unresponsive",
                ));
            }
            let (guard, _) = done
                .cv
                .wait_timeout(slot, hard_deadline - now)
                .expect("client done slot poisoned");
            slot = guard;
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum JobPhase {
    Writing,
    Reading,
}

#[derive(Debug)]
struct Job {
    stream: TcpStream,
    out: Vec<u8>,
    out_pos: usize,
    parser: ResponseParser,
    phase: JobPhase,
    deadline: Instant,
    pool_key: Option<String>,
    done: Arc<Done>,
}

struct EventLoop {
    poller: Poller,
    waker_rx: UnixStream,
    injector: Arc<Injector>,
    pool: Arc<Pool>,
    slots: Vec<Option<Job>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

fn pack_token(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn unpack_token(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                // Deliver failures to anyone still waiting, then stop.
                for idx in 0..self.slots.len() {
                    self.finish(
                        idx,
                        Err(io::Error::other("net client event loop failed")),
                        false,
                    );
                }
                return;
            }
            let drained = std::mem::take(&mut events);
            for ev in &drained {
                self.dispatch(ev);
            }
            events = drained;
            self.admit_new_jobs();
            self.reap_deadlines();
        }
    }

    fn admit_new_jobs(&mut self) {
        loop {
            let job = {
                let mut q = self
                    .injector
                    .queue
                    .lock()
                    .expect("client injector poisoned");
                q.pop_front()
            };
            let Some(new) = job else { break };
            let job = Job {
                stream: new.stream,
                out: new.request,
                out_pos: 0,
                parser: ResponseParser::new(MAX_RESP_HEAD, MAX_RESP_BODY),
                phase: JobPhase::Writing,
                deadline: new.deadline,
                pool_key: new.pool_key,
                done: new.done,
            };
            let idx = match self.free.pop() {
                Some(idx) => {
                    self.slots[idx] = Some(job);
                    idx
                }
                None => {
                    self.slots.push(Some(job));
                    self.gens.push(0);
                    self.slots.len() - 1
                }
            };
            let token = pack_token(idx, self.gens[idx]);
            let fd = self.slots[idx]
                .as_ref()
                .expect("just inserted")
                .stream
                .as_raw_fd();
            if let Err(e) = self.poller.add(fd, Interest::WRITE, token) {
                self.finish(idx, Err(e), false);
                continue;
            }
            // Usually the socket buffer takes the whole request at once.
            self.job_writable(idx);
        }
    }

    fn dispatch(&mut self, ev: &Event) {
        if ev.token == TOKEN_WAKER {
            let mut buf = [0u8; 64];
            while matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {}
            return;
        }
        let (idx, gen) = unpack_token(ev.token);
        if idx >= self.slots.len() || self.gens[idx] != gen || self.slots[idx].is_none() {
            return;
        }
        if ev.failed {
            self.finish(
                idx,
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "backend connection failed",
                )),
                false,
            );
            return;
        }
        if ev.writable {
            self.job_writable(idx);
        }
        if ev.readable && self.slots[idx].is_some() {
            self.job_readable(idx);
        }
    }

    fn job_writable(&mut self, idx: usize) {
        let switch_to_read = {
            let Some(job) = self.slots[idx].as_mut() else {
                return;
            };
            if job.phase != JobPhase::Writing {
                return;
            }
            loop {
                match job.stream.write(&job.out[job.out_pos..]) {
                    Ok(0) => {
                        break Some(Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "backend closed during request write",
                        )))
                    }
                    Ok(n) => {
                        job.out_pos += n;
                        if job.out_pos == job.out.len() {
                            job.phase = JobPhase::Reading;
                            break Some(Ok(()));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break None,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => break Some(Err(e)),
                }
            }
        };
        match switch_to_read {
            None => {}
            Some(Ok(())) => {
                let token = pack_token(idx, self.gens[idx]);
                let fd = self.slots[idx]
                    .as_ref()
                    .expect("checked above")
                    .stream
                    .as_raw_fd();
                let _ = self.poller.modify(fd, Interest::READ, token);
                // The response may already be sitting in the buffer.
                self.job_readable(idx);
            }
            Some(Err(e)) => self.finish(idx, Err(e), false),
        }
    }

    fn job_readable(&mut self, idx: usize) {
        let outcome = {
            let Some(job) = self.slots[idx].as_mut() else {
                return;
            };
            if job.phase != JobPhase::Reading {
                return;
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                match job.stream.read(&mut buf) {
                    Ok(0) => {
                        break Some(Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "backend closed before full response",
                        )))
                    }
                    Ok(n) => {
                        job.parser.push(&buf[..n]);
                        match job.parser.poll() {
                            RespPoll::NeedMore => continue,
                            RespPoll::Ready(resp) => {
                                let body = String::from_utf8(resp.body).map_err(|_| {
                                    io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        "non-UTF-8 response body",
                                    )
                                });
                                break Some(body.map(|b| (resp.status, b, resp.keep_alive)));
                            }
                            RespPoll::Error(msg) => {
                                break Some(Err(io::Error::new(io::ErrorKind::InvalidData, msg)))
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break None,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => break Some(Err(e)),
                }
            }
        };
        match outcome {
            None => {}
            Some(Ok((status, body, keep_alive))) => {
                self.finish(idx, Ok((status, body)), keep_alive);
            }
            Some(Err(e)) => self.finish(idx, Err(e), false),
        }
    }

    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let expired = self.slots[idx]
                .as_ref()
                .map(|j| now >= j.deadline)
                .unwrap_or(false);
            if expired {
                self.finish(
                    idx,
                    Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "backend request timed out",
                    )),
                    false,
                );
            }
        }
    }

    /// Delivers the result to the waiting caller and retires the slot,
    /// pooling the connection when the response allows reuse.
    fn finish(&mut self, idx: usize, result: io::Result<(u16, String)>, reusable: bool) {
        let Some(job) = self.slots[idx].take() else {
            return;
        };
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        if reusable && result.is_ok() {
            if let Some(key) = &job.pool_key {
                if !job.parser.has_buffered() {
                    let _ = self.poller.remove(job.stream.as_raw_fd());
                    let mut pool = self.pool.lock().expect("client pool poisoned");
                    let bucket = pool.entry(key.clone()).or_default();
                    if bucket.len() < POOL_CAP {
                        bucket.push(job.stream);
                    }
                }
            }
        }
        // Non-pooled streams close on drop, which also deregisters them.
        *job.done.slot.lock().expect("client done slot poisoned") = Some(result);
        job.done.cv.notify_all();
    }
}

impl Default for NetClient {
    fn default() -> Self {
        NetClient::new().expect("spawn net client event loop")
    }
}
