//! Incremental HTTP/1.1 framing for the reactor.
//!
//! The blocking path in `traj_serve::http` reads a whole request with a
//! thread parked on the socket; here the socket delivers whatever bytes
//! the kernel has, so parsing is a resumable state machine: feed bytes,
//! poll for a complete request, repeat. The wire dialect is identical —
//! request-line + headers + `Content-Length` body, keep-alive by
//! default on HTTP/1.1, chunked bodies rejected — so the blocking
//! client in serve talks to the reactor without changes.
//!
//! Rejections carry the status the reactor should answer with before
//! closing: 400 malformed, 413 body over cap, 431 head over cap. The
//! messages are fixed strings (never echoes of client bytes), so they
//! are safe to embed in a JSON error body verbatim.

/// A complete parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercase as sent).
    pub method: String,
    /// Path component (the API has no query strings).
    pub path: String,
    /// Raw body bytes; empty without `Content-Length`.
    pub body: Vec<u8>,
    /// `false` when the client asked for `Connection: close`.
    pub keep_alive: bool,
}

/// A protocol violation and the status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// 400, 413 or 431.
    pub status: u16,
    /// Fixed, client-input-free message for the JSON error body.
    pub message: &'static str,
}

/// Result of polling the parser after feeding bytes.
#[derive(Debug, PartialEq, Eq)]
pub enum Poll {
    /// No complete request yet; feed more bytes.
    NeedMore,
    /// One complete request (more may be buffered behind it).
    Ready(Request),
    /// The connection must answer `reject` and close.
    Error(Reject),
}

#[derive(Debug)]
enum State {
    /// Accumulating request line + headers until `\r\n\r\n`.
    Head,
    /// Head parsed; waiting for `remaining` more body bytes.
    Body {
        method: String,
        path: String,
        keep_alive: bool,
        remaining: usize,
        body: Vec<u8>,
    },
    /// A reject was emitted; the connection is done parsing.
    Poisoned,
}

/// Resumable request parser. One per connection; survives across
/// keep-alive requests.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    state: State,
    max_head_bytes: usize,
    max_body_bytes: usize,
}

impl RequestParser {
    /// Creates a parser with the given head and body caps.
    pub fn new(max_head_bytes: usize, max_body_bytes: usize) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            state: State::Head,
            max_head_bytes,
            max_body_bytes,
        }
    }

    /// Appends freshly-read bytes to the parse buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when the client is partway through a request — a reap at
    /// this point deserves a 408, whereas an idle keep-alive connection
    /// with nothing buffered can be closed silently.
    pub fn mid_request(&self) -> bool {
        match self.state {
            State::Head => !self.buf.is_empty(),
            State::Body { .. } => true,
            State::Poisoned => false,
        }
    }

    /// True when bytes remain buffered past the last complete request —
    /// the reactor must poll again before sleeping on the socket.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to produce the next complete request from buffered bytes.
    pub fn poll(&mut self) -> Poll {
        loop {
            match &mut self.state {
                State::Poisoned => return Poll::NeedMore,
                State::Head => {
                    // Tolerate stray CRLF between requests (RFC 9112 §2.2).
                    while self.buf.starts_with(b"\r\n") {
                        self.buf.drain(..2);
                    }
                    let Some(head_end) = find_head_end(&self.buf) else {
                        if self.buf.len() > self.max_head_bytes {
                            return self.poison(431, "request headers too large");
                        }
                        return Poll::NeedMore;
                    };
                    if head_end > self.max_head_bytes {
                        return self.poison(431, "request headers too large");
                    }
                    let head = match std::str::from_utf8(&self.buf[..head_end]) {
                        Ok(s) => s.to_owned(),
                        Err(_) => return self.poison(400, "non-UTF-8 request head"),
                    };
                    self.buf.drain(..head_end + 4); // head + \r\n\r\n
                    let parsed = match parse_head(&head) {
                        Ok(p) => p,
                        Err(reject) => return self.poison(reject.status, reject.message),
                    };
                    if parsed.content_length > self.max_body_bytes {
                        return self.poison(413, "request body too large");
                    }
                    self.state = State::Body {
                        method: parsed.method,
                        path: parsed.path,
                        keep_alive: parsed.keep_alive,
                        remaining: parsed.content_length,
                        body: Vec::with_capacity(parsed.content_length.min(64 * 1024)),
                    };
                }
                State::Body {
                    method,
                    path,
                    keep_alive,
                    remaining,
                    body,
                } => {
                    let take = (*remaining).min(self.buf.len());
                    body.extend_from_slice(&self.buf[..take]);
                    self.buf.drain(..take);
                    *remaining -= take;
                    if *remaining > 0 {
                        return Poll::NeedMore;
                    }
                    let request = Request {
                        method: std::mem::take(method),
                        path: std::mem::take(path),
                        body: std::mem::take(body),
                        keep_alive: *keep_alive,
                    };
                    self.state = State::Head;
                    return Poll::Ready(request);
                }
            }
        }
    }

    fn poison(&mut self, status: u16, message: &'static str) -> Poll {
        self.state = State::Poisoned;
        self.buf.clear();
        Poll::Error(Reject { status, message })
    }
}

/// Byte offset of the head (exclusive of the `\r\n\r\n` terminator), if
/// the terminator has arrived.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

struct ParsedHead {
    method: String,
    path: String,
    keep_alive: bool,
    content_length: usize,
}

fn parse_head(head: &str) -> Result<ParsedHead, Reject> {
    let reject = |message| Reject {
        status: 400,
        message,
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| reject("empty request"))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(reject("malformed request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(reject("unsupported HTTP version"));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(reject("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| reject("bad Content-Length"))?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v == "close" {
                    keep_alive = false;
                } else if v == "keep-alive" {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => return Err(reject("chunked bodies are not supported")),
            _ => {}
        }
    }
    Ok(ParsedHead {
        method: method.to_owned(),
        path: path.to_owned(),
        keep_alive,
        content_length,
    })
}

/// Reason phrases for every status the stack emits (the serve set plus
/// the reactor's own 408/431).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a complete response, byte-compatible with
/// `traj_serve::http::write_response_with_retry`.
pub fn render_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<std::time::Duration>,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry = match retry_after {
        Some(d) => format!(
            "Retry-After: {}\r\n",
            d.as_secs_f64().ceil().max(1.0) as u64
        ),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{}\r\n{}",
        status,
        reason_phrase(status),
        body.len(),
        connection,
        retry,
        body
    )
    .into_bytes()
}

/// Renders a JSON error body for a reactor-level reject/timeout. The
/// message is always one of this module's fixed strings, so no escaping
/// is needed.
pub fn render_error_body(message: &str) -> String {
    format!("{{\"error\": \"{message}\"}}")
}

/// Renders a client request, byte-compatible with what
/// `traj_serve::http::client_request` sends.
pub fn render_request(method: &str, path: &str, body: Option<&str>) -> Vec<u8> {
    let body = body.unwrap_or("");
    format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A complete parsed response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

/// Resumable response parser for the non-blocking client side.
#[derive(Debug)]
pub struct ResponseParser {
    buf: Vec<u8>,
    state: RespState,
    max_head_bytes: usize,
    max_body_bytes: usize,
}

#[derive(Debug)]
enum RespState {
    Head,
    Body {
        status: u16,
        keep_alive: bool,
        remaining: usize,
        body: Vec<u8>,
    },
    Poisoned,
}

/// Result of polling the response parser.
#[derive(Debug, PartialEq, Eq)]
pub enum RespPoll {
    /// No complete response yet.
    NeedMore,
    /// One complete response.
    Ready(Response),
    /// The peer violated the protocol; drop the connection.
    Error(&'static str),
}

impl ResponseParser {
    /// Creates a parser with the given head and body caps.
    pub fn new(max_head_bytes: usize, max_body_bytes: usize) -> ResponseParser {
        ResponseParser {
            buf: Vec::new(),
            state: RespState::Head,
            max_head_bytes,
            max_body_bytes,
        }
    }

    /// Appends freshly-read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when bytes remain buffered past the last complete response.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to produce the next complete response.
    pub fn poll(&mut self) -> RespPoll {
        loop {
            match &mut self.state {
                RespState::Poisoned => return RespPoll::NeedMore,
                RespState::Head => {
                    let Some(head_end) = find_head_end(&self.buf) else {
                        if self.buf.len() > self.max_head_bytes {
                            return self.poison("response headers too large");
                        }
                        return RespPoll::NeedMore;
                    };
                    let head = match std::str::from_utf8(&self.buf[..head_end]) {
                        Ok(s) => s.to_owned(),
                        Err(_) => return self.poison("non-UTF-8 response head"),
                    };
                    self.buf.drain(..head_end + 4);
                    let mut lines = head.split("\r\n");
                    let status_line = lines.next().unwrap_or("");
                    let Some(status) = status_line
                        .split(' ')
                        .nth(1)
                        .and_then(|s| s.parse::<u16>().ok())
                    else {
                        return self.poison("unparseable status line");
                    };
                    let mut content_length = 0usize;
                    let mut keep_alive = true;
                    for line in lines {
                        if line.is_empty() {
                            continue;
                        }
                        let Some((name, value)) = line.split_once(':') else {
                            return self.poison("malformed response header");
                        };
                        let name = name.trim().to_ascii_lowercase();
                        let value = value.trim();
                        if name == "content-length" {
                            let Ok(len) = value.parse() else {
                                return self.poison("bad response Content-Length");
                            };
                            content_length = len;
                        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                            keep_alive = false;
                        }
                    }
                    if content_length > self.max_body_bytes {
                        return self.poison("response body too large");
                    }
                    self.state = RespState::Body {
                        status,
                        keep_alive,
                        remaining: content_length,
                        body: Vec::with_capacity(content_length.min(64 * 1024)),
                    };
                }
                RespState::Body {
                    status,
                    keep_alive,
                    remaining,
                    body,
                } => {
                    let take = (*remaining).min(self.buf.len());
                    body.extend_from_slice(&self.buf[..take]);
                    self.buf.drain(..take);
                    *remaining -= take;
                    if *remaining > 0 {
                        return RespPoll::NeedMore;
                    }
                    let response = Response {
                        status: *status,
                        body: std::mem::take(body),
                        keep_alive: *keep_alive,
                    };
                    self.state = RespState::Head;
                    return RespPoll::Ready(response);
                }
            }
        }
    }

    fn poison(&mut self, message: &'static str) -> RespPoll {
        self.state = RespState::Poisoned;
        self.buf.clear();
        RespPoll::Error(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_whole(raw: &[u8]) -> Poll {
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        p.push(raw);
        p.poll()
    }

    #[test]
    fn whole_buffer_post_parses() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        match feed_whole(raw) {
            Poll::Ready(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/predict");
                assert_eq!(req.body, b"abcd");
                assert!(req.keep_alive);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_matches_whole_buffer() {
        let raw =
            b"POST /ingest HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world";
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        let mut got = None;
        for &b in raw.iter() {
            p.push(&[b]);
            match p.poll() {
                Poll::Ready(req) => got = Some(req),
                Poll::NeedMore => {}
                Poll::Error(e) => panic!("unexpected reject {e:?}"),
            }
        }
        let req = got.expect("request should complete on final byte");
        assert_eq!(req.body, b"hello world");
        assert!(!req.keep_alive);
        let whole = match feed_whole(raw) {
            Poll::Ready(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(req, whole);
    }

    #[test]
    fn two_pipelined_requests_come_out_in_order() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        p.push(raw);
        let first = match p.poll() {
            Poll::Ready(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.path, "/healthz");
        assert!(p.has_buffered());
        let second = match p.poll() {
            Poll::Ready(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(second.path, "/predict");
        assert_eq!(second.body, b"ok");
    }

    #[test]
    fn oversized_head_is_431_even_without_terminator() {
        let mut p = RequestParser::new(128, 1 << 20);
        p.push(b"GET /x HTTP/1.1\r\n");
        for _ in 0..40 {
            p.push(b"X-Pad: aaaaaaaaaaaaaaaa\r\n");
        }
        match p.poll() {
            Poll::Error(reject) => assert_eq!(reject.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let mut p = RequestParser::new(8 * 1024, 16);
        p.push(b"POST /predict HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
        match p.poll() {
            Poll::Error(reject) => assert_eq!(reject.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn chunked_is_400() {
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        p.push(b"POST /predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        match p.poll() {
            Poll::Error(reject) => {
                assert_eq!(reject.status, 400);
                assert_eq!(reject.message, "chunked bodies are not supported");
            }
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_line_is_400() {
        match feed_whole(b"NONSENSE\r\n\r\n") {
            Poll::Error(reject) => assert_eq!(reject.status, 400),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn mid_request_tracks_partial_state() {
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        assert!(!p.mid_request());
        p.push(b"GET /heal");
        assert_eq!(p.poll(), Poll::NeedMore);
        assert!(p.mid_request());
        p.push(b"thz HTTP/1.1\r\n\r\n");
        assert!(matches!(p.poll(), Poll::Ready(_)));
        assert!(!p.mid_request());
    }

    #[test]
    fn stray_crlf_between_requests_is_tolerated() {
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        p.push(b"\r\nGET /healthz HTTP/1.1\r\n\r\n");
        assert!(matches!(p.poll(), Poll::Ready(_)));
    }

    #[test]
    fn response_renders_like_serve_and_round_trips() {
        let wire = render_response(200, "{\"ok\":true}", true, None);
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut rp = ResponseParser::new(8 * 1024, 1 << 20);
        rp.push(&wire);
        match rp.poll() {
            RespPoll::Ready(resp) => {
                assert_eq!(resp.status, 200);
                assert_eq!(resp.body, b"{\"ok\":true}");
                assert!(resp.keep_alive);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retry_after_rounds_up_to_whole_seconds() {
        let wire = render_response(429, "{}", true, Some(std::time::Duration::from_millis(120)));
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    }

    #[test]
    fn timeout_and_header_statuses_have_reason_phrases() {
        assert_eq!(reason_phrase(408), "Request Timeout");
        assert_eq!(reason_phrase(431), "Request Header Fields Too Large");
    }

    #[test]
    fn client_request_bytes_parse_back() {
        let wire = render_request("POST", "/predict", Some("{\"x\":1}"));
        let mut p = RequestParser::new(8 * 1024, 1 << 20);
        p.push(&wire);
        match p.poll() {
            Poll::Ready(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/predict");
                assert_eq!(req.body, b"{\"x\":1}");
                assert!(req.keep_alive);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_parser_handles_split_reads() {
        let wire = render_response(503, "{\"error\":\"warming\"}", false, None);
        let mut rp = ResponseParser::new(8 * 1024, 1 << 20);
        for chunk in wire.chunks(3) {
            rp.push(chunk);
        }
        match rp.poll() {
            RespPoll::Ready(resp) => {
                assert_eq!(resp.status, 503);
                assert!(!resp.keep_alive);
            }
            other => panic!("{other:?}"),
        }
    }
}
