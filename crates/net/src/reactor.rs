//! The connection reactor: one thread owns accept, read and write for
//! every connection on a listener, so an open connection costs a file
//! descriptor and a couple of kilobytes of state instead of a parked
//! worker thread.
//!
//! Ownership model:
//!
//! ```text
//!   kernel ── epoll ──► reactor thread ──► Service::call(request, responder)
//!                           ▲                      │ (spawns onto the worker pool)
//!                           │                      ▼
//!                        waker pipe ◄── Responder::send(status, body)
//! ```
//!
//! Per-connection state machine:
//!
//! ```text
//!   Reading ──complete request──► InFlight ──completion──► Writing
//!      ▲                                                      │
//!      └────────────── response flushed, keep-alive ──────────┘
//! ```
//!
//! While a request is in flight the connection's read interest is
//! dropped, which is the backpressure: a client cannot queue a second
//! request into the service until the first response has been written
//! back (pipelined bytes simply wait in the kernel and the parse
//! buffer). Admission control stays where it was — the service layer
//! sheds with 429 — the reactor only bounds *connections* (cap, head
//! and body sizes, idle and write-stall deadlines).
//!
//! The reactor thread must never block: `Service::call` runs on it, so
//! implementations hand the actual work to a pool and return. The
//! [`Responder`] can be completed from any thread; it enqueues the
//! response and tickles the waker pipe.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http1::{self, Poll, Request, RequestParser};
use crate::stats::NetStats;
use crate::sys::{Event, Interest, Poller};

/// Token for the listener fd.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the waker pipe's read end.
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// How long to stop accepting after the process runs out of fds.
const ACCEPT_COOLOFF: Duration = Duration::from_millis(100);

/// Tuning knobs for a reactor.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Thread-name stem, e.g. `"traj-serve"` → thread `traj-serve-net`.
    pub name: String,
    /// Request line + headers cap (431 beyond it).
    pub max_head_bytes: usize,
    /// Body cap (413 beyond it).
    pub max_body_bytes: usize,
    /// A connection making no read progress for this long is reaped:
    /// 408 if mid-request (slow-loris), silent close if idle keep-alive.
    pub idle_timeout: Duration,
    /// A response write making no progress for this long closes the
    /// connection (slow-reading client).
    pub write_stall_timeout: Duration,
    /// Open-connection cap; accepts beyond it get a 503 and a close.
    pub max_connections: usize,
    /// On shutdown, how long to keep draining in-flight responses.
    pub drain_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            name: "traj".to_owned(),
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(10),
            write_stall_timeout: Duration::from_secs(10),
            max_connections: 16 * 1024,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// What the reactor calls with each complete request. Runs **on the
/// reactor thread** — implementations must not block; hand the work to
/// a pool and complete the [`Responder`] from there.
pub trait Service: Send + Sync + 'static {
    /// Handles one request; the response goes through `responder`.
    fn call(&self, request: Request, responder: Responder);
}

impl<F> Service for F
where
    F: Fn(Request, Responder) + Send + Sync + 'static,
{
    fn call(&self, request: Request, responder: Responder) {
        self(request, responder)
    }
}

/// One-shot reply handle for an in-flight request. Dropping it without
/// sending produces a 500, so a panicking worker cannot wedge the
/// connection in the in-flight state forever.
#[derive(Debug)]
pub struct Responder {
    inner: Option<(Arc<Injector>, u64)>,
}

impl Responder {
    /// Completes the request. Connection reuse follows the *request's*
    /// keep-alive flag (tracked by the reactor), matching the blocking
    /// path's behaviour.
    pub fn send(mut self, status: u16, body: String, retry_after: Option<Duration>) {
        if let Some((injector, token)) = self.inner.take() {
            injector.push(Msg::Complete {
                token,
                status,
                body,
                retry_after,
            });
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some((injector, token)) = self.inner.take() {
            injector.push(Msg::Complete {
                token,
                status: 500,
                body: http1::render_error_body("response handler dropped"),
                retry_after: None,
            });
        }
    }
}

/// Cross-thread mailbox into the reactor loop.
#[derive(Debug)]
struct Injector {
    queue: Mutex<VecDeque<Msg>>,
    waker: UnixStream,
}

#[derive(Debug)]
enum Msg {
    Complete {
        token: u64,
        status: u16,
        body: String,
        retry_after: Option<Duration>,
    },
    Shutdown,
}

impl Injector {
    fn push(&self, msg: Msg) {
        self.queue.lock().expect("injector poisoned").push_back(msg);
        // A full pipe already guarantees a pending wakeup.
        let _ = (&self.waker).write(&[1]);
    }

    fn drain(&self) -> Vec<Msg> {
        let mut q = self.queue.lock().expect("injector poisoned");
        q.drain(..).collect()
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Reading,
    InFlight,
    Writing,
    /// Error response delivered, write side shut; reads are drained and
    /// discarded until the peer's EOF so an in-flight client write never
    /// turns the close into an RST that beats the response to the peer.
    Lingering,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    phase: Phase,
    write_buf: Vec<u8>,
    write_pos: usize,
    then_close: bool,
    keep_alive: bool,
    last_activity: Instant,
    write_progress: Instant,
    write_queued: Option<Instant>,
    read_started: Option<Instant>,
    peer_closed: bool,
    served: u64,
}

/// Handle to a running reactor; shutting down drains in-flight
/// responses (bounded by `drain_grace`) before the thread exits.
#[derive(Debug)]
pub struct ReactorHandle {
    addr: SocketAddr,
    stats: Arc<NetStats>,
    injector: Arc<Injector>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ReactorHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The reactor's counters, for `/metrics`.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, drains in-flight responses, joins the thread.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.injector.push(Msg::Shutdown);
        let handle = self.thread.lock().expect("reactor handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the reactor thread for `listener` and returns its handle.
pub fn spawn(
    listener: TcpListener,
    config: ReactorConfig,
    service: Arc<dyn Service>,
) -> io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (waker_rx, waker_tx) = UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    waker_tx.set_nonblocking(true)?;
    let injector = Arc::new(Injector {
        queue: Mutex::new(VecDeque::new()),
        waker: waker_tx,
    });
    let stats = Arc::new(NetStats::new());

    let mut reactor = Reactor {
        poller: Poller::new()?,
        listener,
        waker_rx,
        service,
        stats: Arc::clone(&stats),
        injector: Arc::clone(&injector),
        config: config.clone(),
        slots: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        occupied: 0,
        accept_paused_until: None,
        shutting_down: false,
        drain_deadline: None,
    };
    reactor
        .poller
        .add(reactor.listener.as_raw_fd(), Interest::READ, TOKEN_LISTENER)?;
    reactor
        .poller
        .add(reactor.waker_rx.as_raw_fd(), Interest::READ, TOKEN_WAKER)?;

    let thread = std::thread::Builder::new()
        .name(format!("{}-net", config.name))
        .spawn(move || reactor.run())?;

    Ok(ReactorHandle {
        addr,
        stats,
        injector,
        thread: Mutex::new(Some(thread)),
    })
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    waker_rx: UnixStream,
    service: Arc<dyn Service>,
    stats: Arc<NetStats>,
    injector: Arc<Injector>,
    config: ReactorConfig,
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    occupied: usize,
    accept_paused_until: Option<Instant>,
    shutting_down: bool,
    drain_deadline: Option<Instant>,
}

fn pack_token(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn unpack_token(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

impl Reactor {
    fn run(&mut self) {
        // Waking often enough that a deadline overshoots by at most a
        // quarter of itself; bounded below so tight test deadlines stay
        // accurate and above so an idle reactor costs ~10 wakeups/s.
        let tick = (self
            .config
            .idle_timeout
            .min(self.config.write_stall_timeout)
            / 4)
        .clamp(Duration::from_millis(5), Duration::from_millis(100));
        let mut events: Vec<Event> = Vec::new();
        loop {
            if let Err(e) = self.poller.wait(&mut events, Some(tick)) {
                eprintln!("[{}-net] poller failed: {e}", self.config.name);
                break;
            }
            let drained = std::mem::take(&mut events);
            for ev in &drained {
                self.dispatch_event(ev);
            }
            events = drained;
            for msg in self.injector.drain() {
                match msg {
                    Msg::Complete {
                        token,
                        status,
                        body,
                        retry_after,
                    } => self.complete(token, status, body, retry_after),
                    Msg::Shutdown => self.begin_shutdown(),
                }
            }
            self.reap_deadlines();
            self.maybe_resume_accepts();
            if self.shutting_down {
                let done = self.occupied == 0
                    || self
                        .drain_deadline
                        .map(|d| Instant::now() >= d)
                        .unwrap_or(true);
                if done {
                    break;
                }
            }
        }
        // Remaining connections close on drop.
    }

    fn dispatch_event(&mut self, ev: &Event) {
        match ev.token {
            TOKEN_LISTENER => self.accept_ready(),
            TOKEN_WAKER => {
                let mut buf = [0u8; 64];
                while matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {}
            }
            token => {
                let (idx, gen) = unpack_token(token);
                // A recycled slot's generation won't match a stale event.
                if idx >= self.slots.len() || self.gens[idx] != gen {
                    return;
                }
                if self.slots[idx].is_none() {
                    return;
                }
                if ev.failed {
                    // Drain what the kernel still buffers first, so the
                    // abort-vs-idle distinction sees the real parser
                    // state (a HUP can arrive before the data event).
                    self.conn_readable(idx);
                    if let Some(conn) = self.slots[idx].as_ref() {
                        // Lingering conns already got their (error)
                        // response; their hangup is the expected end of
                        // the exchange, not an abort.
                        let delivered = conn.phase == Phase::Lingering;
                        if !delivered && (conn.phase != Phase::Reading || conn.parser.mid_request())
                        {
                            self.stats.client_aborts.fetch_add(1, Ordering::Relaxed);
                        }
                        self.close(idx);
                    }
                    return;
                }
                if ev.readable {
                    self.conn_readable(idx);
                }
                if ev.writable && self.slots[idx].is_some() {
                    self.conn_writable(idx);
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        if self.shutting_down || self.accept_paused_until.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.stats.accepts.fetch_add(1, Ordering::Relaxed);
                    if self.occupied >= self.config.max_connections {
                        self.stats.accept_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nonblocking(true);
                        let reply = http1::render_response(
                            503,
                            &http1::render_error_body("connection limit reached"),
                            false,
                            None,
                        );
                        let _ = (&stream).write(&reply);
                        continue; // dropped: closed
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.insert_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    // Out of fds: stop accepting briefly instead of
                    // spinning on a level-triggered listener event.
                    if matches!(e.raw_os_error(), Some(23) | Some(24)) {
                        let _ = self.poller.remove(self.listener.as_raw_fd());
                        self.accept_paused_until = Some(Instant::now() + ACCEPT_COOLOFF);
                    }
                    break;
                }
            }
        }
    }

    fn maybe_resume_accepts(&mut self) {
        if let Some(until) = self.accept_paused_until {
            if Instant::now() >= until && !self.shutting_down {
                self.accept_paused_until = None;
                let _ = self
                    .poller
                    .add(self.listener.as_raw_fd(), Interest::READ, TOKEN_LISTENER);
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        let now = Instant::now();
        let conn = Conn {
            stream,
            parser: RequestParser::new(self.config.max_head_bytes, self.config.max_body_bytes),
            phase: Phase::Reading,
            write_buf: Vec::new(),
            write_pos: 0,
            then_close: false,
            keep_alive: true,
            last_activity: now,
            write_progress: now,
            write_queued: None,
            read_started: None,
            peer_closed: false,
            served: 0,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(conn);
                idx
            }
            None => {
                self.slots.push(Some(conn));
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let token = pack_token(idx, self.gens[idx]);
        let fd = self.slots[idx]
            .as_ref()
            .expect("just inserted")
            .stream
            .as_raw_fd();
        if let Err(e) = self.poller.add(fd, Interest::READ, token) {
            eprintln!("[{}-net] register failed: {e}", self.config.name);
            self.slots[idx] = None;
            self.free.push(idx);
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            return;
        }
        self.occupied += 1;
        self.stats.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&mut self, idx: usize) {
        if self.slots[idx].take().is_some() {
            // Closing the fd drops it from epoll automatically.
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.occupied -= 1;
            self.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn set_interest(&mut self, idx: usize, interest: Interest) {
        let token = pack_token(idx, self.gens[idx]);
        if let Some(conn) = self.slots[idx].as_ref() {
            let _ = self.poller.modify(conn.stream.as_raw_fd(), interest, token);
        }
    }

    fn conn_readable(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].as_mut() else {
            return;
        };
        if conn.phase == Phase::Lingering {
            // Post-reject drain: discard everything until EOF or error,
            // then the connection can finally close without an RST.
            let mut buf = [0u8; 16 * 1024];
            let done = loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => break true,
                    Ok(_) => conn.last_activity = Instant::now(),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            };
            if done {
                self.close(idx);
            }
            return;
        }
        if conn.phase != Phase::Reading {
            // Only EPOLLRDHUP can get here: remember the half-close so
            // the eventual response write knows not to expect a reader
            // forever, but still deliver it — the peer may only have
            // shut its write side.
            conn.peer_closed = true;
            return;
        }
        let mut buf = [0u8; 16 * 1024];
        let mut saw_eof = false;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.read_started.is_none() {
                        conn.read_started = Some(Instant::now());
                    }
                    conn.last_activity = Instant::now();
                    conn.parser.push(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    if conn.parser.mid_request() {
                        self.stats.client_aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    self.close(idx);
                    return;
                }
            }
        }
        self.advance_parser(idx);
        if saw_eof {
            if let Some(conn) = self.slots[idx].as_mut() {
                conn.peer_closed = true;
                if conn.phase == Phase::Reading {
                    if conn.parser.mid_request() {
                        self.stats.client_aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    self.close(idx);
                }
            }
        }
    }

    /// Polls the parser while the connection is in the reading phase;
    /// dispatches at most one request (single in-flight per connection
    /// is the backpressure contract).
    fn advance_parser(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].as_mut() else {
            return;
        };
        if conn.phase != Phase::Reading {
            return;
        }
        match conn.parser.poll() {
            Poll::NeedMore => {}
            Poll::Ready(request) => {
                self.stats.requests.fetch_add(1, Ordering::Relaxed);
                if conn.served > 0 {
                    self.stats
                        .keepalive_requests
                        .fetch_add(1, Ordering::Relaxed);
                }
                conn.served += 1;
                if let Some(started) = conn.read_started.take() {
                    self.stats
                        .request_read_us
                        .record(started.elapsed().as_micros() as u64);
                }
                conn.keep_alive = request.keep_alive;
                conn.phase = Phase::InFlight;
                let token = pack_token(idx, self.gens[idx]);
                self.set_interest(idx, Interest::NONE);
                let responder = Responder {
                    inner: Some((Arc::clone(&self.injector), token)),
                };
                let service = Arc::clone(&self.service);
                service.call(request, responder);
            }
            Poll::Error(reject) => {
                match reject.status {
                    413 => self.stats.rejects_413.fetch_add(1, Ordering::Relaxed),
                    431 => self.stats.rejects_431.fetch_add(1, Ordering::Relaxed),
                    _ => self.stats.rejects_400.fetch_add(1, Ordering::Relaxed),
                };
                let wire = http1::render_response(
                    reject.status,
                    &http1::render_error_body(reject.message),
                    false,
                    None,
                );
                self.start_write(idx, wire, true);
            }
        }
    }

    fn complete(&mut self, token: u64, status: u16, body: String, retry_after: Option<Duration>) {
        let (idx, gen) = unpack_token(token);
        let live = idx < self.slots.len() && self.gens[idx] == gen && self.slots[idx].is_some();
        if !live {
            self.stats.dropped_responses.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let keep_alive = self.slots[idx]
            .as_ref()
            .map(|c| c.keep_alive)
            .unwrap_or(false);
        let wire = http1::render_response(status, &body, keep_alive, retry_after);
        self.start_write(idx, wire, !keep_alive);
    }

    fn start_write(&mut self, idx: usize, wire: Vec<u8>, then_close: bool) {
        let Some(conn) = self.slots[idx].as_mut() else {
            return;
        };
        let now = Instant::now();
        conn.write_buf = wire;
        conn.write_pos = 0;
        conn.then_close = then_close;
        conn.phase = Phase::Writing;
        conn.write_queued = Some(now);
        conn.write_progress = now;
        self.conn_writable(idx);
        if self.slots[idx].as_ref().map(|c| c.phase == Phase::Writing) == Some(true) {
            self.set_interest(idx, Interest::WRITE);
        }
    }

    fn conn_writable(&mut self, idx: usize) {
        let finished = {
            let Some(conn) = self.slots[idx].as_mut() else {
                return;
            };
            if conn.phase != Phase::Writing {
                return;
            }
            loop {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => break Some(false),
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.write_progress = Instant::now();
                        if conn.write_pos == conn.write_buf.len() {
                            break Some(true);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break None,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Some(false),
                }
            }
        };
        match finished {
            None => {} // WouldBlock: wait for writable.
            Some(false) => {
                self.stats.client_aborts.fetch_add(1, Ordering::Relaxed);
                self.stats.dropped_responses.fetch_add(1, Ordering::Relaxed);
                self.close(idx);
            }
            Some(true) => {
                self.stats.responses.fetch_add(1, Ordering::Relaxed);
                let (then_close, peer_closed, buffered) = {
                    let conn = self.slots[idx].as_mut().expect("conn vanished mid-write");
                    if let Some(queued) = conn.write_queued.take() {
                        self.stats
                            .response_write_us
                            .record(queued.elapsed().as_micros() as u64);
                    }
                    conn.write_buf = Vec::new();
                    conn.write_pos = 0;
                    (
                        conn.then_close,
                        conn.peer_closed,
                        conn.parser.has_buffered(),
                    )
                };
                if peer_closed || self.shutting_down {
                    self.close(idx);
                    return;
                }
                if then_close {
                    // Lingering close: half-close and wait for the
                    // peer's EOF so unread request bytes cannot RST the
                    // response out from under a still-writing client.
                    let conn = self.slots[idx].as_mut().expect("conn vanished mid-write");
                    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                    conn.phase = Phase::Lingering;
                    conn.last_activity = Instant::now();
                    self.set_interest(idx, Interest::READ);
                    return;
                }
                let conn = self.slots[idx].as_mut().expect("conn vanished mid-write");
                conn.phase = Phase::Reading;
                conn.last_activity = Instant::now();
                self.set_interest(idx, Interest::READ);
                if buffered {
                    // A pipelined request may already be complete.
                    if let Some(conn) = self.slots[idx].as_mut() {
                        if conn.read_started.is_none() && conn.parser.mid_request() {
                            conn.read_started = Some(Instant::now());
                        }
                    }
                    self.advance_parser(idx);
                }
            }
        }
    }

    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let Some(conn) = self.slots[idx].as_ref() else {
                continue;
            };
            match conn.phase {
                Phase::Reading => {
                    if now.duration_since(conn.last_activity) >= self.config.idle_timeout {
                        if conn.parser.mid_request() {
                            // Slow-loris: answer 408 and hang up.
                            self.stats.idle_reaps_408.fetch_add(1, Ordering::Relaxed);
                            let wire = http1::render_response(
                                408,
                                &http1::render_error_body("request read timed out"),
                                false,
                                None,
                            );
                            self.start_write(idx, wire, true);
                        } else {
                            self.stats.idle_closes.fetch_add(1, Ordering::Relaxed);
                            self.close(idx);
                        }
                    }
                }
                Phase::Writing => {
                    if now.duration_since(conn.write_progress) >= self.config.write_stall_timeout {
                        self.stats
                            .write_stall_closes
                            .fetch_add(1, Ordering::Relaxed);
                        self.stats.dropped_responses.fetch_add(1, Ordering::Relaxed);
                        self.close(idx);
                    }
                }
                Phase::Lingering => {
                    // A rejected client that never reads its response
                    // still may not hold the slot forever.
                    if now.duration_since(conn.last_activity) >= self.config.idle_timeout {
                        self.close(idx);
                    }
                }
                Phase::InFlight => {}
            }
        }
    }

    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        self.drain_deadline = Some(Instant::now() + self.config.drain_grace);
        let _ = self.poller.remove(self.listener.as_raw_fd());
        // Idle and still-reading connections can't finish anything the
        // exactly-once contract cares about; drop them now. In-flight
        // and writing connections drain.
        for idx in 0..self.slots.len() {
            let reading = self.slots[idx]
                .as_ref()
                .map(|c| c.phase == Phase::Reading)
                .unwrap_or(false);
            if reading {
                self.close(idx);
            }
        }
    }
}
