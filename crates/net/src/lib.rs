//! traj-net: a dependency-free epoll connection reactor.
//!
//! Thread-per-connection serving caps concurrent users at thread
//! count; this crate moves every listener's accept/read/write onto one
//! event-loop thread so worker threads stay O(cores) while open
//! connections scale to the fd limit. No tokio, no mio, no libc crate:
//! the only syscalls not already wrapped by `std` (epoll itself) are
//! bound directly in [`sys`] behind a safe API — the crate's sole
//! `unsafe` module, mirroring the `traj_runtime::scope` discipline.
//!
//! Pieces:
//! - [`reactor`] — server side: per-connection HTTP/1.1 state machines,
//!   idle/slow-client deadlines, bounded heads and bodies, keep-alive,
//!   graceful drain. Complete requests go to a [`Service`]; responses
//!   come back through a [`Responder`] from any thread.
//! - [`client`] — client side: one thread multiplexing every in-flight
//!   backend request, with keep-alive pooling per address.
//! - [`http1`] — resumable request/response parsers shared by both.
//! - [`stats`] — the counters behind the `/metrics` `"net"` section.

#![deny(unsafe_code)] // `sys` is the sole, audited exception.

pub mod client;
pub mod http1;
pub mod reactor;
pub mod stats;
mod sys;

pub use client::NetClient;
pub use http1::{render_request, render_response, Request};
pub use reactor::{spawn, ReactorConfig, ReactorHandle, Responder, Service};
pub use stats::NetStats;
