//! End-to-end reactor tests over real sockets: an echo-ish service on a
//! loopback listener, plain blocking `TcpStream` clients on the other
//! side. Covers keep-alive reuse, partial reads, adversarial clients
//! (slow-loris, oversized heads/bodies, half-closes), graceful drain
//! and the client multiplexer's pooling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use traj_net::{NetClient, ReactorConfig, ReactorHandle};

/// Service that answers `{"path": ..., "len": body_len}` from a helper
/// thread pool of one (spawned per call to keep the harness tiny).
fn echo_service() -> Arc<dyn traj_net::Service> {
    Arc::new(
        |request: traj_net::Request, responder: traj_net::Responder| {
            std::thread::spawn(move || {
                let body = format!(
                    "{{\"path\": \"{}\", \"len\": {}}}",
                    request.path,
                    request.body.len()
                );
                responder.send(200, body, None);
            });
        },
    )
}

fn start(config: ReactorConfig) -> ReactorHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    traj_net::spawn(listener, config, echo_service()).expect("spawn reactor")
}

fn small_timeouts() -> ReactorConfig {
    ReactorConfig {
        name: "test".to_owned(),
        idle_timeout: Duration::from_millis(300),
        write_stall_timeout: Duration::from_secs(2),
        drain_grace: Duration::from_secs(2),
        ..ReactorConfig::default()
    }
}

/// Sends one request on an existing stream and reads the full response
/// head + body. Returns (status, body).
fn roundtrip(stream: &mut TcpStream, path: &str, body: &str) -> (u16, String) {
    let wire = traj_net::render_request("POST", path, Some(body));
    stream.write_all(&wire).expect("write request");
    read_response(stream)
}

fn read_response<S: Read>(stream: &mut S) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("parse status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line
            .strip_prefix("Content-Length:")
            .or_else(|| line.strip_prefix("content-length:"))
        {
            content_length = value.trim().parse().expect("length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = start(ReactorConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    for i in 0..20 {
        let (status, body) = roundtrip(&mut stream, "/echo", &format!("req-{i}"));
        assert_eq!(status, 200);
        assert!(body.contains("\"path\": \"/echo\""), "{body}");
    }
    let stats = handle.stats();
    assert_eq!(stats.requests.load(Ordering::Relaxed), 20);
    assert_eq!(stats.keepalive_requests.load(Ordering::Relaxed), 19);
    assert_eq!(stats.accepts.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn request_dribbled_byte_by_byte_still_parses() {
    let handle = start(ReactorConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let wire = traj_net::render_request("POST", "/slow", Some("abcdef"));
    for byte in wire {
        stream.write_all(&[byte]).expect("write byte");
        stream.flush().expect("flush");
    }
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(body.contains("\"len\": 6"), "{body}");
    handle.shutdown();
}

#[test]
fn slow_loris_is_reaped_with_408() {
    let handle = start(small_timeouts());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    // A request line that never finishes.
    stream.write_all(b"GET /pre").expect("write partial");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 408);
    assert!(body.contains("timed out"), "{body}");
    // Connection is closed afterwards.
    let mut probe = [0u8; 1];
    assert_eq!(stream.read(&mut probe).expect("eof"), 0);
    assert_eq!(handle.stats().idle_reaps_408.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connection_closes_silently() {
    let handle = start(small_timeouts());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let (status, _) = roundtrip(&mut stream, "/echo", "x");
    assert_eq!(status, 200);
    // Now idle with nothing buffered: the reaper should close without
    // sending anything.
    let mut probe = [0u8; 1];
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    assert_eq!(stream.read(&mut probe).expect("clean eof"), 0);
    let stats = handle.stats();
    assert_eq!(stats.idle_closes.load(Ordering::Relaxed), 1);
    assert_eq!(stats.idle_reaps_408.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn oversized_headers_get_431() {
    let handle = start(ReactorConfig {
        max_head_bytes: 256,
        ..small_timeouts()
    });
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(b"GET /x HTTP/1.1\r\n").expect("line");
    for _ in 0..64 {
        // The reactor may 431-and-close while we are still padding; a
        // broken pipe here just means the reject already happened.
        if stream
            .write_all(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n")
            .is_err()
        {
            break;
        }
    }
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 431);
    assert_eq!(handle.stats().rejects_431.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn oversized_body_gets_413() {
    let handle = start(ReactorConfig {
        max_body_bytes: 64,
        ..small_timeouts()
    });
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
        .expect("head");
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 413);
    assert_eq!(handle.stats().rejects_413.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn mid_body_disconnect_cleans_up_connection_state() {
    let handle = start(small_timeouts());
    {
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream
            .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 1000\r\n\r\npartial")
            .expect("partial body");
        // Drop: FIN mid-body.
    }
    let stats = handle.stats();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    // Wait until the connection was seen at all, then until it's gone —
    // polling for zero alone would pass before the accept happens.
    while stats.accepts.load(Ordering::Relaxed) == 0
        || stats.open_connections.load(Ordering::Relaxed) != 0
    {
        assert!(std::time::Instant::now() < deadline, "connection leaked");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(stats.client_aborts.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn many_idle_connections_do_not_block_an_active_one() {
    let handle = start(ReactorConfig {
        idle_timeout: Duration::from_secs(30),
        ..ReactorConfig::default()
    });
    let idle: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(handle.local_addr()).expect("idle connect"))
        .collect();
    let mut active = TcpStream::connect(handle.local_addr()).expect("active connect");
    for i in 0..5 {
        let (status, _) = roundtrip(&mut active, "/busy", &format!("{i}"));
        assert_eq!(status, 200);
    }
    assert_eq!(handle.stats().open_connections.load(Ordering::Relaxed), 65);
    drop(idle);
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_with_503() {
    let handle = start(ReactorConfig {
        max_connections: 2,
        ..small_timeouts()
    });
    let a = TcpStream::connect(handle.local_addr()).expect("a");
    let b = TcpStream::connect(handle.local_addr()).expect("b");
    let mut c = TcpStream::connect(handle.local_addr()).expect("c");
    c.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let (status, body) = read_response(&mut c);
    assert_eq!(status, 503);
    assert!(body.contains("connection limit"), "{body}");
    assert_eq!(handle.stats().accept_rejected.load(Ordering::Relaxed), 1);
    drop((a, b));
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_response() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let service = Arc::new(
        |request: traj_net::Request, responder: traj_net::Responder| {
            std::thread::spawn(move || {
                // Response lands after shutdown has begun.
                std::thread::sleep(Duration::from_millis(200));
                responder.send(200, format!("{{\"done\": \"{}\"}}", request.path), None);
            });
        },
    );
    let handle = traj_net::spawn(listener, small_timeouts(), service).expect("spawn");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let wire = traj_net::render_request("POST", "/final", Some("x"));
    stream.write_all(&wire).expect("write");
    std::thread::sleep(Duration::from_millis(50)); // request is in flight
    let shutter = {
        let addr = handle.local_addr();
        std::thread::spawn(move || {
            let _ = addr; // shutdown happens on this thread below
        })
    };
    shutter.join().unwrap();
    let done = std::thread::spawn(move || {
        handle.shutdown();
    });
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(body.contains("/final"), "{body}");
    done.join().unwrap();
}

#[test]
fn dropped_responder_turns_into_500() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let service = Arc::new(
        |_request: traj_net::Request, responder: traj_net::Responder| {
            drop(responder); // a worker that "panicked"
        },
    );
    let handle = traj_net::spawn(listener, small_timeouts(), service).expect("spawn");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let (status, body) = roundtrip(&mut stream, "/boom", "x");
    assert_eq!(status, 500);
    assert!(body.contains("dropped"), "{body}");
    handle.shutdown();
}

#[test]
fn net_client_pools_and_reuses_connections() {
    let handle = start(ReactorConfig {
        idle_timeout: Duration::from_secs(30),
        ..ReactorConfig::default()
    });
    let addr = handle.local_addr().to_string();
    let client = NetClient::new().expect("client");
    for i in 0..5 {
        let stream = match client.take_pooled(&addr) {
            Some(s) => s,
            None => TcpStream::connect(&addr).expect("connect"),
        };
        let wire = traj_net::render_request("POST", "/pooled", Some(&format!("{i}")));
        let (status, body) = client
            .execute(stream, wire, Duration::from_secs(5), Some(addr.clone()))
            .expect("execute");
        assert_eq!(status, 200);
        assert!(body.contains("/pooled"), "{body}");
    }
    // All five requests rode one server-side connection.
    assert_eq!(handle.stats().accepts.load(Ordering::Relaxed), 1);
    assert_eq!(handle.stats().keepalive_requests.load(Ordering::Relaxed), 4);
    handle.shutdown();
}

#[test]
fn net_client_detects_stale_pooled_connection() {
    let handle = start(ReactorConfig {
        idle_timeout: Duration::from_millis(200),
        ..ReactorConfig::default()
    });
    let addr = handle.local_addr().to_string();
    let client = NetClient::new().expect("client");
    let stream = TcpStream::connect(&addr).expect("connect");
    let wire = traj_net::render_request("GET", "/one", None);
    client
        .execute(stream, wire, Duration::from_secs(5), Some(addr.clone()))
        .expect("first request");
    // Let the server's idle reaper close the pooled connection.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        client.take_pooled(&addr).is_none(),
        "stale pooled connection should be probed out"
    );
    handle.shutdown();
}

#[test]
fn net_client_times_out_stuck_backend() {
    // A listener that accepts and never answers.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let keeper = std::thread::spawn(move || {
        let conns: Vec<_> = listener.incoming().take(1).collect();
        std::thread::sleep(Duration::from_secs(3));
        drop(conns);
    });
    let client = NetClient::new().expect("client");
    let stream = TcpStream::connect(addr).expect("connect");
    let wire = traj_net::render_request("GET", "/never", None);
    let err = client
        .execute(stream, wire, Duration::from_millis(300), None)
        .expect_err("must time out");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    keeper.join().unwrap();
}
