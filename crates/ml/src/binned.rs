//! Quantile-binned feature matrices for histogram split finding.
//!
//! [`BinnedDataset`] quantizes every feature column of a [`Dataset`] into
//! at most [`MAX_BINS`] = 256 bins once, up front; tree training then
//! replaces the per-node *sort* of raw feature values with a per-node
//! *histogram* over bin codes and an `O(n_bins)` sweep — the LightGBM /
//! XGBoost-hist strategy. Codes are stored column-major (`u8` per cell),
//! so the per-feature accumulation passes of the split search are
//! sequential scans.
//!
//! Bin boundaries are chosen on the *distinct* values of each column:
//!
//! * ≤ 256 distinct values → one bin per distinct value. The candidate
//!   thresholds (midpoints between adjacent distinct values, with the
//!   same rounding guard) are then *identical* to the exact sort-based
//!   search, making the histogram path lossless — the parity tests pin
//!   this.
//! * more → boundaries at the quantile ranks `b·n/256`, snapped outward
//!   so equal values never straddle a bin boundary.
//!
//! The threshold stored for each boundary lives in raw feature space, so
//! fitted trees predict on raw rows and serialized models are oblivious
//! to how they were trained.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Maximum bins per feature; bin codes fit a `u8`.
pub const MAX_BINS: usize = 256;

/// Dataset-size cutoff of [`SplitAlgo::Auto`]: nodes/datasets with fewer
/// rows use the exact sort-based search (histogram setup costs more than
/// it saves there), larger ones use the histogram search.
pub const HIST_AUTO_CUTOFF_ROWS: usize = 2048;

/// Split-search algorithm of the tree learners.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitAlgo {
    /// Exact sort-based sweep over raw feature values.
    Exact,
    /// Histogram sweep over quantile-binned values (≤ 256 bins).
    Hist,
    /// `Hist` at or above [`HIST_AUTO_CUTOFF_ROWS`] training rows,
    /// `Exact` below — the default everywhere.
    #[default]
    Auto,
}

impl SplitAlgo {
    /// Whether training `n_rows` samples should use the histogram path.
    pub fn use_hist(self, n_rows: usize) -> bool {
        match self {
            SplitAlgo::Exact => false,
            SplitAlgo::Hist => true,
            SplitAlgo::Auto => n_rows >= HIST_AUTO_CUTOFF_ROWS,
        }
    }
}

/// A quantile-binned view of a dataset's feature matrix: one `u8` bin
/// code per cell (column-major) plus the raw-space threshold table that
/// maps a bin boundary back to a `value <= threshold` split.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedDataset {
    n_rows: usize,
    /// Bin code of sample `i`, feature `f`, at `codes[f * n_rows + i]`.
    codes: Vec<u8>,
    /// Raw-space threshold after bin `b` of feature `f` at
    /// `thresholds[f][b]`; length `n_bins(f) − 1`.
    thresholds: Vec<Vec<f64>>,
    /// Prefix sums of `n_bins(f)`: the flat histogram offset of feature
    /// `f` is `offsets[f]`, and `offsets[n_features]` is the total.
    offsets: Vec<usize>,
}

impl BinnedDataset {
    /// Bins every feature column of `data`. Columns are binned in
    /// parallel on the shared `traj-runtime` pool; the result is
    /// identical for any thread count.
    pub fn from_dataset(data: &Dataset) -> Self {
        let n_features = data.n_features();
        let features: Vec<usize> = (0..n_features).collect();
        let columns = traj_runtime::parallel_map(&features, |_, &f| bin_column(data, f));

        let n_rows = data.len();
        let mut codes = Vec::with_capacity(n_rows * n_features);
        let mut thresholds = Vec::with_capacity(n_features);
        for (col_codes, col_thresholds) in columns {
            codes.extend_from_slice(&col_codes);
            thresholds.push(col_thresholds);
        }
        BinnedDataset::assemble(n_rows, codes, thresholds)
    }

    fn assemble(n_rows: usize, codes: Vec<u8>, thresholds: Vec<Vec<f64>>) -> Self {
        let mut offsets = Vec::with_capacity(thresholds.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for t in &thresholds {
            total += t.len() + 1;
            offsets.push(total);
        }
        BinnedDataset {
            n_rows,
            codes,
            thresholds,
            offsets,
        }
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.thresholds.len()
    }

    /// Number of bins of feature `f` (≥ 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.thresholds[f].len() + 1
    }

    /// Total bins over all features — the flat histogram length.
    pub fn total_bins(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Flat histogram offset of feature `f`'s first bin.
    pub fn bin_offset(&self, f: usize) -> usize {
        self.offsets[f]
    }

    /// The bin-code column of feature `f`, one code per sample.
    pub fn column(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Bin code of sample `i`, feature `f`.
    pub fn code(&self, i: usize, f: usize) -> u8 {
        self.codes[f * self.n_rows + i]
    }

    /// Raw-space threshold separating bin `b` from bin `b + 1` of
    /// feature `f`: samples with `code <= b` satisfy
    /// `value <= split_value(f, b)` and vice versa.
    pub fn split_value(&self, f: usize, b: usize) -> f64 {
        self.thresholds[f][b]
    }

    /// A binned view restricted to the feature columns `columns` (in
    /// that order) — a candidate set of the feature-selection searches is
    /// just a column mask, so this is a cheap `u8` copy instead of a
    /// re-bin.
    pub fn select_features(&self, columns: &[usize]) -> BinnedDataset {
        let mut codes = Vec::with_capacity(self.n_rows * columns.len());
        let mut thresholds = Vec::with_capacity(columns.len());
        for &c in columns {
            codes.extend_from_slice(self.column(c));
            thresholds.push(self.thresholds[c].clone());
        }
        BinnedDataset::assemble(self.n_rows, codes, thresholds)
    }

    /// A binned view holding the samples at `indices` (repetition
    /// allowed). Bin edges are inherited from the parent, so thresholds
    /// remain valid raw-space splits.
    pub fn subset(&self, indices: &[usize]) -> BinnedDataset {
        let mut codes = Vec::with_capacity(indices.len() * self.n_features());
        for f in 0..self.n_features() {
            let col = self.column(f);
            codes.extend(indices.iter().map(|&i| col[i]));
        }
        BinnedDataset::assemble(indices.len(), codes, self.thresholds.clone())
    }
}

/// Bins one feature column: returns `(codes, thresholds)`.
fn bin_column(data: &Dataset, f: usize) -> (Vec<u8>, Vec<f64>) {
    let n = data.len();
    let mut vals: Vec<(f64, u32)> = Vec::with_capacity(n);
    let mut nan_rows: Vec<u32> = Vec::new();
    for i in 0..n {
        let v = data.value(i, f);
        if v.is_nan() {
            nan_rows.push(i as u32);
        } else {
            vals.push((v, i as u32));
        }
    }
    let mut codes = vec![0u8; n];
    if vals.is_empty() {
        return (codes, Vec::new());
    }
    vals.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

    // Runs of equal values: (value, count). Equal values must share a
    // bin, exactly like the exact search only splits between distinct
    // values.
    let mut distinct: Vec<(f64, usize)> = Vec::new();
    for &(v, _) in &vals {
        match distinct.last_mut() {
            Some(last) if last.0 == v => last.1 += 1,
            _ => distinct.push((v, 1)),
        }
    }

    // Bin boundaries as indices into `distinct` (cut *after* that run).
    let mut boundaries: Vec<usize> = Vec::new();
    if distinct.len() <= MAX_BINS {
        boundaries.extend(0..distinct.len() - 1);
    } else {
        let nn = vals.len();
        let mut next_target = 1usize;
        let mut cum = 0usize;
        for (di, &(_, count)) in distinct.iter().enumerate().take(distinct.len() - 1) {
            cum += count;
            if next_target < MAX_BINS && cum * MAX_BINS >= next_target * nn {
                boundaries.push(di);
                while next_target < MAX_BINS && cum * MAX_BINS >= next_target * nn {
                    next_target += 1;
                }
            }
        }
    }

    let mut thresholds = Vec::with_capacity(boundaries.len());
    for &di in &boundaries {
        let (lo, hi) = (distinct[di].0, distinct[di + 1].0);
        // Midpoint threshold with the same guard as the exact search:
        // the midpoint of adjacent floats can round down to `lo`.
        let mut t = 0.5 * (lo + hi);
        if t <= lo {
            t = lo;
        }
        thresholds.push(t);
    }

    // Code per distinct run, then scatter back to sample order.
    let mut code_of_run = vec![0u8; distinct.len()];
    let mut code = 0u8;
    let mut next_boundary = 0usize;
    for (di, slot) in code_of_run.iter_mut().enumerate() {
        *slot = code;
        if next_boundary < boundaries.len() && boundaries[next_boundary] == di {
            code = code.checked_add(1).expect("at most 256 bins");
            next_boundary += 1;
        }
    }
    let mut run = 0usize;
    let mut consumed = 0usize;
    for &(_, i) in &vals {
        if consumed == distinct[run].1 {
            run += 1;
            consumed = 0;
        }
        codes[i as usize] = code_of_run[run];
        consumed += 1;
    }
    // NaN sorts above every threshold at predict time (`NaN <= t` is
    // false, so it goes right); give it the top bin for consistency.
    let last_code = code_of_run[distinct.len() - 1];
    for &i in &nan_rows {
        codes[i as usize] = last_code;
    }
    (codes, thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_of_columns(columns: &[Vec<f64>]) -> Dataset {
        let n = columns[0].len();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| columns.iter().map(|c| c[i]).collect())
            .collect();
        Dataset::from_rows(&rows, vec![0; n], 1, vec![0; n], vec![])
    }

    #[test]
    fn few_distinct_values_get_one_bin_each() {
        let data = dataset_of_columns(&[vec![3.0, 1.0, 2.0, 1.0, 3.0]]);
        let b = BinnedDataset::from_dataset(&data);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.column(0), &[2, 0, 1, 0, 2]);
        // Thresholds are the exact-search midpoints.
        assert_eq!(b.split_value(0, 0), 1.5);
        assert_eq!(b.split_value(0, 1), 2.5);
    }

    #[test]
    fn constant_column_is_a_single_bin() {
        let data = dataset_of_columns(&[vec![7.0; 4]]);
        let b = BinnedDataset::from_dataset(&data);
        assert_eq!(b.n_bins(0), 1);
        assert_eq!(b.column(0), &[0, 0, 0, 0]);
    }

    #[test]
    fn many_distinct_values_cap_at_max_bins() {
        let col: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let data = dataset_of_columns(&[col]);
        let b = BinnedDataset::from_dataset(&data);
        assert!(b.n_bins(0) <= MAX_BINS);
        assert!(b.n_bins(0) >= MAX_BINS / 2, "{} bins", b.n_bins(0));
        // Codes are monotone in the raw values.
        let codes = b.column(0);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        // Thresholds bracket the codes they separate.
        for i in 0..999 {
            if codes[i] < codes[i + 1] {
                let t = b.split_value(0, codes[i] as usize);
                assert!(i as f64 <= t && t < (i + 1) as f64);
            }
        }
    }

    #[test]
    fn skewed_duplicates_do_not_overflow_bins() {
        // One value holds 90% of the mass; the rest are unique.
        let mut col = vec![5.0; 9000];
        col.extend((0..1000).map(|i| 10.0 + i as f64));
        let data = dataset_of_columns(&[col]);
        let b = BinnedDataset::from_dataset(&data);
        assert!(b.n_bins(0) <= MAX_BINS);
        assert!(b.n_bins(0) > 1);
        // All duplicates share one bin.
        let codes = b.column(0);
        assert!(codes[..9000].iter().all(|&c| c == codes[0]));
    }

    #[test]
    fn offsets_and_totals_are_consistent() {
        let data = dataset_of_columns(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![5.0; 4],
        ]);
        let b = BinnedDataset::from_dataset(&data);
        assert_eq!(b.n_features(), 3);
        assert_eq!(b.bin_offset(0), 0);
        assert_eq!(b.bin_offset(1), 4);
        assert_eq!(b.total_bins(), 4 + 2 + 1);
    }

    #[test]
    fn select_features_projects_columns_and_edges() {
        let data = dataset_of_columns(&[vec![1.0, 2.0, 3.0], vec![9.0, 8.0, 7.0]]);
        let b = BinnedDataset::from_dataset(&data);
        let p = b.select_features(&[1]);
        assert_eq!(p.n_features(), 1);
        assert_eq!(p.column(0), b.column(1));
        assert_eq!(p.split_value(0, 0), b.split_value(1, 0));
        // Reordering works too.
        let swapped = b.select_features(&[1, 0]);
        assert_eq!(swapped.column(1), b.column(0));
    }

    #[test]
    fn subset_gathers_rows_and_keeps_edges() {
        let data = dataset_of_columns(&[vec![1.0, 2.0, 3.0, 4.0]]);
        let b = BinnedDataset::from_dataset(&data);
        let s = b.subset(&[3, 0, 3]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.column(0), &[3, 0, 3]);
        assert_eq!(s.n_bins(0), b.n_bins(0));
        assert_eq!(s.split_value(0, 1), b.split_value(0, 1));
    }

    #[test]
    fn auto_cutoff_selects_by_size() {
        assert!(!SplitAlgo::Auto.use_hist(HIST_AUTO_CUTOFF_ROWS - 1));
        assert!(SplitAlgo::Auto.use_hist(HIST_AUTO_CUTOFF_ROWS));
        assert!(!SplitAlgo::Exact.use_hist(1_000_000));
        assert!(SplitAlgo::Hist.use_hist(2));
    }

    #[test]
    fn binning_is_deterministic() {
        let col: Vec<f64> = (0..5000).map(|i| ((i * 37) % 613) as f64 * 0.1).collect();
        let data = dataset_of_columns(&[col]);
        assert_eq!(
            BinnedDataset::from_dataset(&data),
            BinnedDataset::from_dataset(&data)
        );
    }
}
