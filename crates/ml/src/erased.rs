//! A serialisable, type-erased fitted model.
//!
//! [`Classifier`] trait objects cannot be serialised (serde needs a
//! concrete type on both ends), so persistence and serving go through
//! [`ErasedModel`]: a closed enum over the workspace's classifier roster
//! whose JSON form is self-describing (`{"RandomForest": {...}}`). The
//! CLI's model files, the serving artifacts and the registry all store
//! this type; callers that want dynamic dispatch use its [`Classifier`]
//! impl.

use crate::binned::BinnedDataset;
use crate::boosting::{AdaBoost, GradientBoosting};
use crate::classifier::{Classifier, ClassifierKind};
use crate::compiled::{BatchPredictor, CompiledModel, PredictError, Predictions, RowMatrix};
use crate::dataset::Dataset;
use crate::forest::RandomForest;
use crate::knn::Knn;
use crate::linear::LinearSvm;
use crate::neural::Mlp;
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};

/// A fitted (or fittable) model of any supported kind.
///
/// The variant name doubles as the JSON tag, so a model file records what
/// it contains and deserialisation dispatches on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ErasedModel {
    /// Random forest.
    RandomForest(RandomForest),
    /// Gradient-boosted trees (the paper's "XGBoost").
    XgBoost(GradientBoosting),
    /// Single CART decision tree.
    DecisionTree(DecisionTree),
    /// AdaBoost·SAMME over decision stumps.
    AdaBoost(AdaBoost),
    /// Linear SVM (Pegasos, one-vs-rest).
    Svm(LinearSvm),
    /// Multilayer perceptron.
    Mlp(Mlp),
    /// k-nearest-neighbours.
    Knn(Knn),
}

impl ErasedModel {
    /// Builds an unfitted model of `kind` with reproduction-default
    /// hyper-parameters (the same ones [`ClassifierKind::build`] uses).
    pub fn new(kind: ClassifierKind, seed: u64) -> ErasedModel {
        use crate::boosting::{AdaBoostConfig, GbdtConfig};
        use crate::forest::ForestConfig;
        use crate::knn::KnnConfig;
        use crate::linear::SvmConfig;
        use crate::neural::MlpConfig;
        use crate::tree::TreeConfig;
        match kind {
            ClassifierKind::RandomForest => {
                ErasedModel::RandomForest(RandomForest::new(ForestConfig {
                    n_estimators: 50,
                    seed,
                    ..ForestConfig::default()
                }))
            }
            ClassifierKind::XgBoost => ErasedModel::XgBoost(GradientBoosting::new(GbdtConfig {
                n_rounds: 20,
                max_depth: 4,
                seed,
                ..GbdtConfig::default()
            })),
            ClassifierKind::DecisionTree => {
                ErasedModel::DecisionTree(DecisionTree::new(TreeConfig {
                    seed,
                    ..TreeConfig::default()
                }))
            }
            ClassifierKind::AdaBoost => {
                ErasedModel::AdaBoost(AdaBoost::new(AdaBoostConfig::default()))
            }
            ClassifierKind::Svm => ErasedModel::Svm(LinearSvm::new(SvmConfig {
                seed,
                ..SvmConfig::default()
            })),
            ClassifierKind::NeuralNetwork => ErasedModel::Mlp(Mlp::new(MlpConfig {
                seed,
                ..MlpConfig::default()
            })),
            ClassifierKind::Knn => ErasedModel::Knn(Knn::new(KnnConfig::default())),
        }
    }

    /// Parses the CLI's short model names (`rf`, `xgb`, …).
    pub fn from_cli_name(name: &str, seed: u64) -> Result<ErasedModel, String> {
        let kind = match name {
            "rf" => ClassifierKind::RandomForest,
            "xgb" => ClassifierKind::XgBoost,
            "tree" => ClassifierKind::DecisionTree,
            "ada" => ClassifierKind::AdaBoost,
            "svm" => ClassifierKind::Svm,
            "mlp" => ClassifierKind::NeuralNetwork,
            "knn" => ClassifierKind::Knn,
            other => {
                return Err(format!(
                    "unknown model {other:?}; use rf|xgb|tree|ada|svm|mlp|knn"
                ))
            }
        };
        Ok(ErasedModel::new(kind, seed))
    }

    /// The roster entry this model is an instance of.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            ErasedModel::RandomForest(_) => ClassifierKind::RandomForest,
            ErasedModel::XgBoost(_) => ClassifierKind::XgBoost,
            ErasedModel::DecisionTree(_) => ClassifierKind::DecisionTree,
            ErasedModel::AdaBoost(_) => ClassifierKind::AdaBoost,
            ErasedModel::Svm(_) => ClassifierKind::Svm,
            ErasedModel::Mlp(_) => ClassifierKind::NeuralNetwork,
            ErasedModel::Knn(_) => ClassifierKind::Knn,
        }
    }

    /// `true` once the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        match self {
            ErasedModel::RandomForest(m) => m.is_fitted(),
            ErasedModel::XgBoost(m) => m.is_fitted(),
            ErasedModel::DecisionTree(m) => m.is_fitted(),
            ErasedModel::AdaBoost(m) => m.is_fitted(),
            ErasedModel::Svm(m) => m.is_fitted(),
            ErasedModel::Mlp(m) => m.is_fitted(),
            ErasedModel::Knn(m) => m.is_fitted(),
        }
    }

    /// Lowers a fitted tree ensemble into its compiled flat-array form
    /// ([`crate::compiled::CompiledModel`]); `None` for non-tree kinds or
    /// unfitted models. Serving caches this once per loaded artifact.
    pub fn compile(&self) -> Option<CompiledModel> {
        self.compile_prebinned(None)
    }

    /// [`ErasedModel::compile`] with a binned matrix, letting nodes whose
    /// thresholds are bin boundaries traverse `u8` codes through
    /// [`CompiledModel::predict_dataset_into`].
    pub fn compile_prebinned(&self, binned: Option<&BinnedDataset>) -> Option<CompiledModel> {
        match self {
            ErasedModel::RandomForest(m) => CompiledModel::from_forest(m, binned),
            ErasedModel::XgBoost(m) => CompiledModel::from_gbdt(m, binned),
            ErasedModel::DecisionTree(m) => CompiledModel::from_tree(m, binned),
            _ => None,
        }
    }

    /// Per-class scores of one row, normalised to sum to 1.
    ///
    /// Probabilistic models return their probabilities; margin models
    /// (SVM) go through a softmax; vote-based models (AdaBoost, kNN)
    /// return vote fractions. The class [`Classifier::predict_row`]
    /// returns always attains the maximum score (ties may resolve to a
    /// different index than a naive arg-max).
    pub fn predict_scores_row(&self, row: &[f64]) -> Vec<f64> {
        match self {
            ErasedModel::RandomForest(m) => m.predict_proba_row(row),
            ErasedModel::XgBoost(m) => m.predict_proba_row(row),
            ErasedModel::DecisionTree(m) => m.predict_proba_row(row),
            ErasedModel::Mlp(m) => m.predict_proba_row(row),
            ErasedModel::AdaBoost(m) => normalize_votes(m.decision_row(row)),
            ErasedModel::Svm(m) => softmax(m.decision_row(row)),
            ErasedModel::Knn(m) => m.vote_fractions_row(row),
        }
    }
}

impl Classifier for ErasedModel {
    fn fit(&mut self, data: &Dataset) {
        match self {
            ErasedModel::RandomForest(m) => Classifier::fit(m, data),
            ErasedModel::XgBoost(m) => Classifier::fit(m, data),
            ErasedModel::DecisionTree(m) => Classifier::fit(m, data),
            ErasedModel::AdaBoost(m) => Classifier::fit(m, data),
            ErasedModel::Svm(m) => Classifier::fit(m, data),
            ErasedModel::Mlp(m) => Classifier::fit(m, data),
            ErasedModel::Knn(m) => Classifier::fit(m, data),
        }
    }

    fn predict_row(&self, row: &[f64]) -> usize {
        match self {
            ErasedModel::RandomForest(m) => Classifier::predict_row(m, row),
            ErasedModel::XgBoost(m) => Classifier::predict_row(m, row),
            ErasedModel::DecisionTree(m) => Classifier::predict_row(m, row),
            ErasedModel::AdaBoost(m) => Classifier::predict_row(m, row),
            ErasedModel::Svm(m) => Classifier::predict_row(m, row),
            ErasedModel::Mlp(m) => Classifier::predict_row(m, row),
            ErasedModel::Knn(m) => Classifier::predict_row(m, row),
        }
    }

    fn is_fitted(&self) -> bool {
        ErasedModel::is_fitted(self)
    }

    fn predict_rows_into(
        &self,
        data: &Dataset,
        binned: Option<&BinnedDataset>,
        rows: &[usize],
        out: &mut Predictions,
    ) -> Result<(), PredictError> {
        match self.compile_prebinned(binned) {
            Some(compiled) => compiled.predict_dataset_into(data, binned, rows, out),
            None => self.predict_into(&RowMatrix::gather(data, rows), out),
        }
    }
}

impl BatchPredictor for ErasedModel {
    /// Tree kinds run compiled; the rest fall back to the per-row
    /// kernels, filling both classes and per-class scores (so the
    /// serving path gets scores from every kind through one call).
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        if let Some(compiled) = self.compile() {
            return compiled.predict_into(rows, out);
        }
        if !self.is_fitted() {
            return Err(PredictError::NotFitted);
        }
        let n = rows.n_rows();
        if n == 0 {
            out.reset(0, 0);
            return Ok(());
        }
        let first = self.predict_scores_row(rows.row(0));
        out.reset(n, first.len());
        out.scores_row_mut(0).copy_from_slice(&first);
        out.classes_mut()[0] = Classifier::predict_row(self, rows.row(0));
        for i in 1..n {
            let row = rows.row(i);
            out.classes_mut()[i] = Classifier::predict_row(self, row);
            let scores = self.predict_scores_row(row);
            out.scores_row_mut(i).copy_from_slice(&scores);
        }
        Ok(())
    }
}

/// Non-negative vote totals → fractions; all-zero → uniform.
fn normalize_votes(votes: Vec<f64>) -> Vec<f64> {
    let total: f64 = votes.iter().sum();
    if total > 0.0 {
        votes.into_iter().map(|v| v / total).collect()
    } else {
        let n = votes.len().max(1);
        vec![1.0 / n as f64; n]
    }
}

/// Numerically stable softmax of decision values.
fn softmax(decisions: Vec<f64>) -> Vec<f64> {
    let max = decisions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = decisions.iter().map(|&d| (d - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..3usize {
            let center = class as f64 * 4.0;
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    center + rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 3, vec![0; n], vec![])
    }

    const ALL_KINDS: [ClassifierKind; 7] = [
        ClassifierKind::RandomForest,
        ClassifierKind::XgBoost,
        ClassifierKind::DecisionTree,
        ClassifierKind::AdaBoost,
        ClassifierKind::Svm,
        ClassifierKind::NeuralNetwork,
        ClassifierKind::Knn,
    ];

    #[test]
    fn every_kind_round_trips_through_json() {
        let data = blob_data(20, 9);
        for kind in ALL_KINDS {
            let mut model = ErasedModel::new(kind, 3);
            model.fit(&data);
            let json = serde_json::to_string(&model).expect("serialise");
            let restored: ErasedModel = serde_json::from_str(&json).expect("deserialise");
            assert_eq!(restored.kind(), kind);
            assert_eq!(model.predict(&data), restored.predict(&data), "{kind}");
        }
    }

    #[test]
    fn scores_are_distributions_and_argmax_matches_predict() {
        let data = blob_data(20, 11);
        for kind in ALL_KINDS {
            let mut model = ErasedModel::new(kind, 3);
            model.fit(&data);
            for i in 0..data.len() {
                let scores = model.predict_scores_row(data.row(i));
                assert_eq!(scores.len(), data.n_classes, "{kind}");
                let sum: f64 = scores.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{kind} scores sum to {sum}");
                assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)), "{kind}");
                let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let pred = model.predict_row(data.row(i));
                assert!(
                    scores[pred] >= max - 1e-12,
                    "{kind} row {i}: predicted class {pred} scores {} < max {max}",
                    scores[pred]
                );
            }
        }
    }

    #[test]
    fn cli_names_map_to_kinds() {
        for (name, kind) in [
            ("rf", ClassifierKind::RandomForest),
            ("xgb", ClassifierKind::XgBoost),
            ("tree", ClassifierKind::DecisionTree),
            ("ada", ClassifierKind::AdaBoost),
            ("svm", ClassifierKind::Svm),
            ("mlp", ClassifierKind::NeuralNetwork),
            ("knn", ClassifierKind::Knn),
        ] {
            assert_eq!(ErasedModel::from_cli_name(name, 0).unwrap().kind(), kind);
        }
        assert!(ErasedModel::from_cli_name("bogus", 0).is_err());
    }
}
