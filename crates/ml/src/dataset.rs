//! Dense datasets: a row-major feature matrix plus labels and group ids.

use serde::{Deserialize, Serialize};

/// A classification dataset.
///
/// Features are stored row-major in one contiguous buffer; `row(i)` is a
/// slice view, so per-sample access in the hot training loops is
/// allocation-free. Labels are dense class indices `0..n_classes`, and
/// each sample carries a *group* id (the owning GeoLife user), the key of
/// user-oriented cross-validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
    /// Class index per row, in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of distinct classes the labels may take.
    pub n_classes: usize,
    /// Group (user) id per row.
    pub groups: Vec<u32>,
    /// Optional feature names, length `n_cols` when present.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset from feature rows.
    ///
    /// ```
    /// use traj_ml::Dataset;
    /// let data = Dataset::from_rows(
    ///     &[vec![1.0, 2.0], vec![3.0, 4.0]],
    ///     vec![0, 1],          // class per row
    ///     2,                   // number of classes
    ///     vec![10, 11],        // owning user per row
    ///     vec!["a".into(), "b".into()],
    /// );
    /// assert_eq!(data.len(), 2);
    /// assert_eq!(data.row(1), &[3.0, 4.0]);
    /// ```
    ///
    /// # Panics
    /// Panics when rows are jagged, lengths disagree, or any label is
    /// `≥ n_classes`.
    pub fn from_rows(
        rows: &[Vec<f64>],
        y: Vec<usize>,
        n_classes: usize,
        groups: Vec<u32>,
        feature_names: Vec<String>,
    ) -> Self {
        assert_eq!(rows.len(), y.len(), "one label per row");
        assert_eq!(rows.len(), groups.len(), "one group per row");
        let n_cols = rows.first().map_or(feature_names.len(), |r| r.len());
        if !feature_names.is_empty() {
            assert_eq!(feature_names.len(), n_cols, "one name per column");
        }
        let mut x = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "jagged feature rows");
            x.extend_from_slice(row);
        }
        assert!(
            y.iter().all(|&c| c < n_classes),
            "labels must be below n_classes"
        );
        debug_assert!(
            !x.iter().any(|v| v.is_nan()),
            "NaN feature values: the feature pipeline must impute or drop \
             them before training (split search skips NaN, but silently)"
        );
        Dataset {
            x,
            n_rows: rows.len(),
            n_cols,
            y,
            n_classes,
            groups,
            feature_names,
        }
    }

    /// Builds a dataset without the NaN debug assertion — for tests that
    /// exercise the split search's NaN-skipping behaviour.
    #[cfg(test)]
    pub(crate) fn from_rows_unchecked(
        rows: &[Vec<f64>],
        y: Vec<usize>,
        n_classes: usize,
        groups: Vec<u32>,
    ) -> Self {
        let n_cols = rows.first().map_or(0, |r| r.len());
        Dataset {
            x: rows.iter().flatten().copied().collect(),
            n_rows: rows.len(),
            n_cols,
            y,
            n_classes,
            groups,
            feature_names: vec![],
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_cols
    }

    /// The feature slice of sample `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Value of feature `j` of sample `i`.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.x[i * self.n_cols + j]
    }

    /// A new dataset holding the samples at `indices` (with repetition
    /// allowed — bootstrap sampling uses this).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut x = Vec::with_capacity(indices.len() * self.n_cols);
        let mut y = Vec::with_capacity(indices.len());
        let mut groups = Vec::with_capacity(indices.len());
        for &i in indices {
            x.extend_from_slice(self.row(i));
            y.push(self.y[i]);
            groups.push(self.groups[i]);
        }
        Dataset {
            x,
            n_rows: indices.len(),
            n_cols: self.n_cols,
            y,
            n_classes: self.n_classes,
            groups,
            feature_names: self.feature_names.clone(),
        }
    }

    /// A new dataset restricted to the feature columns `columns` (in that
    /// order). Used by the feature-selection searches.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        let mut x = Vec::with_capacity(self.n_rows * columns.len());
        for i in 0..self.n_rows {
            let row = self.row(i);
            for &c in columns {
                x.push(row[c]);
            }
        }
        let feature_names = if self.feature_names.is_empty() {
            Vec::new()
        } else {
            columns
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect()
        };
        Dataset {
            x,
            n_rows: self.n_rows,
            n_cols: columns.len(),
            y: self.y.clone(),
            n_classes: self.n_classes,
            groups: self.groups.clone(),
            feature_names,
        }
    }

    /// Per-class sample counts, length `n_classes`.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &c in &self.y {
            counts[c] += 1;
        }
        counts
    }

    /// Distinct group ids, sorted.
    pub fn distinct_groups(&self) -> Vec<u32> {
        let mut gs = self.groups.clone();
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    /// Index of a feature by name, when names are present.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Parses the CSV produced by [`Dataset::to_csv`]: a header whose last
    /// two columns are `label` and `group`, then one row per sample.
    /// `n_classes` is inferred as `max(label) + 1`.
    pub fn from_csv(csv: &str) -> Result<Dataset, String> {
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty CSV")?;
        let columns: Vec<&str> = header.split(',').collect();
        if columns.len() < 2
            || columns[columns.len() - 2] != "label"
            || columns[columns.len() - 1] != "group"
        {
            return Err("header must end with `label,group`".to_owned());
        }
        let d = columns.len() - 2;
        let feature_names: Vec<String> = columns[..d].iter().map(|s| s.to_string()).collect();

        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut y: Vec<usize> = Vec::new();
        let mut groups: Vec<u32> = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != d + 2 {
                return Err(format!(
                    "row {}: expected {} fields, found {}",
                    lineno + 2,
                    d + 2,
                    fields.len()
                ));
            }
            let mut row = Vec::with_capacity(d);
            for f in &fields[..d] {
                row.push(
                    f.parse::<f64>()
                        .map_err(|e| format!("row {}: bad feature {f:?}: {e}", lineno + 2))?,
                );
            }
            y.push(
                fields[d]
                    .parse()
                    .map_err(|e| format!("row {}: bad label: {e}", lineno + 2))?,
            );
            groups.push(
                fields[d + 1]
                    .parse()
                    .map_err(|e| format!("row {}: bad group: {e}", lineno + 2))?,
            );
            rows.push(row);
        }
        let n_classes = y.iter().max().map_or(0, |&m| m + 1);
        Ok(Dataset::from_rows(
            &rows,
            y,
            n_classes.max(1),
            groups,
            feature_names,
        ))
    }

    /// Serialises the dataset as CSV: a header of feature names (or
    /// `f0..fN` when unnamed) plus `label` and `group` columns, one row
    /// per sample. For interoperability with pandas/scikit-learn
    /// notebooks replicating the paper's plots.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.feature_names.is_empty() {
            for j in 0..self.n_cols {
                let _ = write!(out, "f{j},");
            }
        } else {
            for name in &self.feature_names {
                let _ = write!(out, "{name},");
            }
        }
        out.push_str("label,group\n");
        for i in 0..self.n_rows {
            for &v in self.row(i) {
                let _ = write!(out, "{v},");
            }
            let _ = writeln!(out, "{},{}", self.y[i], self.groups[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            &[
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0],
            ],
            vec![0, 1, 0, 1],
            2,
            vec![7, 7, 8, 9],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn construction_and_access() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(2), &[3.0, 30.0]);
        assert_eq!(d.value(1, 1), 20.0);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.distinct_groups(), vec![7, 8, 9]);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("zz"), None);
    }

    #[test]
    fn subset_preserves_metadata_and_allows_repeats() {
        let d = toy();
        let s = d.subset(&[3, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), &[4.0, 40.0]);
        assert_eq!(s.row(1), &[1.0, 10.0]);
        assert_eq!(s.row(2), &[4.0, 40.0]);
        assert_eq!(s.y, vec![1, 0, 1]);
        assert_eq!(s.groups, vec![9, 7, 9]);
        assert_eq!(s.n_classes, 2);
        assert_eq!(s.feature_names, d.feature_names);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = toy();
        let p = d.select_features(&[1]);
        assert_eq!(p.n_features(), 1);
        assert_eq!(p.row(0), &[10.0]);
        assert_eq!(p.feature_names, vec!["b".to_string()]);
        assert_eq!(p.y, d.y);
        // Re-ordering columns works too.
        let swapped = d.select_features(&[1, 0]);
        assert_eq!(swapped.row(3), &[40.0, 4.0]);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_rows(&[], vec![], 3, vec![], vec![]);
        assert!(d.is_empty());
        assert_eq!(d.class_counts(), vec![0, 0, 0]);
        assert!(d.distinct_groups().is_empty());
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_labels_panic() {
        let _ = Dataset::from_rows(&[vec![1.0]], vec![], 1, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "jagged")]
    fn jagged_rows_panic() {
        let _ = Dataset::from_rows(
            &[vec![1.0, 2.0], vec![1.0]],
            vec![0, 0],
            1,
            vec![0, 0],
            vec![],
        );
    }

    #[test]
    #[should_panic(expected = "below n_classes")]
    fn out_of_range_label_panics() {
        let _ = Dataset::from_rows(&[vec![1.0]], vec![5], 2, vec![0], vec![]);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let d = toy();
        let csv = d.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "a,b,label,group");
        assert_eq!(lines[1], "1,10,0,7");
        assert_eq!(lines[4], "4,40,1,9");
    }

    #[test]
    fn csv_export_names_unnamed_columns() {
        let d = Dataset::from_rows(&[vec![0.5, 1.5]], vec![0], 1, vec![3], vec![]);
        assert!(d.to_csv().starts_with("f0,f1,label,group\n0.5,1.5,0,3"));
    }

    #[test]
    fn csv_round_trips() {
        let d = toy();
        let back = Dataset::from_csv(&d.to_csv()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn csv_parse_rejects_malformed_input() {
        assert!(Dataset::from_csv("").is_err());
        assert!(
            Dataset::from_csv("a,b\n1,2\n").is_err(),
            "no label/group columns"
        );
        assert!(
            Dataset::from_csv("a,label,group\n1,0\n").is_err(),
            "short row"
        );
        assert!(
            Dataset::from_csv("a,label,group\nx,0,0\n").is_err(),
            "bad float"
        );
        assert!(
            Dataset::from_csv("a,label,group\n1,zero,0\n").is_err(),
            "bad label"
        );
    }

    #[test]
    fn csv_parse_skips_blank_lines_and_infers_classes() {
        let d = Dataset::from_csv("a,label,group\n1,2,0\n\n2,0,1\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_classes, 3, "max label 2 → 3 classes");
    }
}
