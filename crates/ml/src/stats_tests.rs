//! Wilcoxon signed-rank tests.
//!
//! The paper uses the Wilcoxon signed-ranks test three ways:
//!
//! * *paired two-sample* over cross-validation fold accuracies, to compare
//!   the random forest against each other classifier (§4.1);
//! * *one-sample* against a published constant, to compare measured
//!   accuracy with the 67.9 % of [Endo et al.] and the 84.8 % of
//!   [Dabiri & Heaslip] (§4.3).
//!
//! Zero differences are discarded (Wilcoxon's original treatment), ties in
//! absolute differences receive average ranks, and the p-value is computed
//! from the exact null distribution of `W+` when the effective sample is
//! small (`n ≤ 25`) and tie-free, falling back to the normal approximation
//! with tie and continuity corrections otherwise — mirroring SciPy's
//! `wilcoxon`, which the authors used.

use serde::{Deserialize, Serialize};

/// Alternative hypothesis of a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alternative {
    /// The distributions differ (two-sided).
    TwoSided,
    /// The first sample is stochastically greater.
    Greater,
    /// The first sample is stochastically less.
    Less,
}

/// How the p-value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PValueMethod {
    /// Exact enumeration of the signed-rank null distribution.
    Exact,
    /// Normal approximation with tie and continuity corrections.
    NormalApproximation,
}

/// Outcome of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WilcoxonResult {
    /// The test statistic `W = min(W+, W−)`.
    pub statistic: f64,
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero differences the test ran on.
    pub n_effective: usize,
    /// The p-value under the requested alternative.
    pub p_value: f64,
    /// How the p-value was computed.
    pub method: PValueMethod,
}

/// Paired Wilcoxon signed-rank test of `xs` against `ys`.
///
/// ```
/// use traj_ml::{wilcoxon_signed_rank, Alternative};
/// // Model A's fold accuracies consistently beat model B's.
/// let a = [0.91, 0.93, 0.90, 0.92, 0.94, 0.915, 0.935];
/// let b = [0.88, 0.90, 0.885, 0.89, 0.91, 0.88, 0.90];
/// let r = wilcoxon_signed_rank(&a, &b, Alternative::Greater);
/// assert!(r.p_value < 0.05);
/// ```
///
/// # Panics
/// Panics when the samples differ in length, or every difference is zero
/// (the test is undefined).
pub fn wilcoxon_signed_rank(xs: &[f64], ys: &[f64], alternative: Alternative) -> WilcoxonResult {
    assert_eq!(xs.len(), ys.len(), "paired samples must share a length");
    let diffs: Vec<f64> = xs.iter().zip(ys).map(|(&a, &b)| a - b).collect();
    wilcoxon_from_differences(&diffs, alternative)
}

/// One-sample Wilcoxon signed-rank test of `xs` against the constant `mu`.
///
/// # Panics
/// Panics when every `x - mu` is zero.
pub fn wilcoxon_one_sample(xs: &[f64], mu: f64, alternative: Alternative) -> WilcoxonResult {
    let diffs: Vec<f64> = xs.iter().map(|&x| x - mu).collect();
    wilcoxon_from_differences(&diffs, alternative)
}

fn wilcoxon_from_differences(diffs: &[f64], alternative: Alternative) -> WilcoxonResult {
    let nonzero: Vec<f64> = diffs.iter().copied().filter(|&d| d != 0.0).collect();
    assert!(
        !nonzero.is_empty(),
        "all differences are zero; the signed-rank test is undefined"
    );
    let n = nonzero.len();
    let abs: Vec<f64> = nonzero.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);

    let mut w_plus = 0.0;
    for (d, r) in nonzero.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        }
    }
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;
    let statistic = w_plus.min(w_minus);

    let has_ties = {
        let mut sorted = abs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite differences"));
        sorted.windows(2).any(|w| w[0] == w[1])
    };

    let (p_value, method) = if n <= 25 && !has_ties {
        (exact_p_value(w_plus, n, alternative), PValueMethod::Exact)
    } else {
        (
            normal_p_value(w_plus, &ranks, alternative),
            PValueMethod::NormalApproximation,
        )
    };

    WilcoxonResult {
        statistic,
        w_plus,
        w_minus,
        n_effective: n,
        p_value: p_value.clamp(0.0, 1.0),
        method,
    }
}

/// Average (midrank) ranks of a sample, 1-based.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Exact p-value from the null distribution of `W+` for `n` tie-free
/// differences: each rank `1..=n` is included with probability ½.
fn exact_p_value(w_plus: f64, n: usize, alternative: Alternative) -> f64 {
    // counts[w] = number of sign assignments with rank-sum w.
    let max_sum = n * (n + 1) / 2;
    let mut counts = vec![0.0f64; max_sum + 1];
    counts[0] = 1.0;
    for rank in 1..=n {
        for w in (rank..=max_sum).rev() {
            counts[w] += counts[w - rank];
        }
    }
    let total = 2f64.powi(n as i32);
    let w = w_plus.round() as usize;
    let cdf_le = |w: usize| -> f64 { counts[..=w.min(max_sum)].iter().sum::<f64>() / total };
    let sf_ge = |w: usize| -> f64 {
        if w > max_sum {
            0.0
        } else {
            counts[w..].iter().sum::<f64>() / total
        }
    };
    match alternative {
        Alternative::Greater => sf_ge(w),
        Alternative::Less => cdf_le(w),
        Alternative::TwoSided => (2.0 * cdf_le(w).min(sf_ge(w))).min(1.0),
    }
}

/// Normal approximation with tie correction and a 0.5 continuity
/// correction.
fn normal_p_value(w_plus: f64, ranks: &[f64], alternative: Alternative) -> f64 {
    let n = ranks.len() as f64;
    let mean = n * (n + 1.0) / 4.0;
    // Tie correction: subtract Σ(t³ − t)/48 over tie groups; equivalently
    // use the rank variance directly.
    let mut sorted = ranks.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ranks"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_term / 48.0;
    let sd = var.max(1e-12).sqrt();
    match alternative {
        Alternative::Greater => 1.0 - normal_cdf((w_plus - mean - 0.5) / sd),
        Alternative::Less => normal_cdf((w_plus - mean + 0.5) / sd),
        Alternative::TwoSided => {
            let z = (w_plus - mean).abs() - 0.5;
            2.0 * (1.0 - normal_cdf(z.max(0.0) / sd))
        }
    }
}

/// Outcome of a Friedman test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FriedmanResult {
    /// The χ²_F statistic.
    pub statistic: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: usize,
    /// Approximate p-value from the χ² distribution.
    pub p_value: f64,
    /// Mean rank of each treatment (lower = better when ranking errors,
    /// higher = better when ranking accuracies — ranks ascend with the
    /// measurements).
    pub mean_ranks: Vec<f64>,
}

/// Friedman test: do `k` treatments (classifiers) measured on the same
/// `n` blocks (CV folds) differ? The standard omnibus companion to the
/// pairwise Wilcoxon tests of the paper's §4.1 (Demšar 2006 recommends
/// it for multi-classifier comparisons).
///
/// `measurements[treatment][block]`; every treatment needs the same
/// number of blocks. Ties within a block receive average ranks; the
/// statistic includes the standard tie correction.
///
/// # Panics
/// Panics with fewer than two treatments, zero blocks, or ragged input.
pub fn friedman_test(measurements: &[Vec<f64>]) -> FriedmanResult {
    let k = measurements.len();
    assert!(k >= 2, "need at least two treatments");
    let n = measurements[0].len();
    assert!(n >= 1, "need at least one block");
    assert!(
        measurements.iter().all(|m| m.len() == n),
        "every treatment needs the same number of blocks"
    );

    let mut rank_sums = vec![0.0; k];
    let mut tie_correction = 0.0;
    let mut block = Vec::with_capacity(k);
    for b in 0..n {
        block.clear();
        block.extend(measurements.iter().map(|m| m[b]));
        let ranks = average_ranks(&block);
        for (s, r) in rank_sums.iter_mut().zip(&ranks) {
            *s += r;
        }
        // Tie term Σ(t³ − t) within this block.
        let mut sorted = block.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_correction += t * t * t - t;
            i = j + 1;
        }
    }
    let mean_ranks: Vec<f64> = rank_sums.iter().map(|&s| s / n as f64).collect();

    let nf = n as f64;
    let kf = k as f64;
    let sum_r2: f64 = rank_sums.iter().map(|&s| s * s).sum();
    // χ²_F = 12/(nk(k+1)) Σ R_j² − 3n(k+1), divided by the tie factor
    // C = 1 − Σ(t³−t) / (n(k³−k)) (Siegel & Castellan).
    let chi2 = 12.0 / (nf * kf * (kf + 1.0)) * sum_r2 - 3.0 * nf * (kf + 1.0);
    let tie_factor = 1.0 - tie_correction / (nf * (kf * kf * kf - kf));
    let statistic = if tie_factor > 0.0 {
        (chi2 / tie_factor).max(0.0)
    } else {
        0.0 // every block fully tied: no evidence of any difference
    };
    let df = k - 1;
    FriedmanResult {
        statistic,
        df,
        p_value: chi_square_sf(statistic, df),
        mean_ranks,
    }
}

/// Critical difference of the Nemenyi post-hoc test at α = 0.05: two of
/// `k` treatments compared over `n` blocks differ significantly when
/// their mean ranks differ by more than `CD = q_α √(k(k+1)/(6n))`
/// (Demšar 2006). Supported for `k ∈ 2..=10`.
///
/// # Panics
/// Panics for `k` outside `2..=10` or `n = 0`.
pub fn nemenyi_critical_difference(k: usize, n: usize) -> f64 {
    // Studentised-range q_0.05 / √2 for k = 2..=10 (Demšar 2006, Table 5).
    const Q_ALPHA_05: [f64; 9] = [
        1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
    ];
    assert!((2..=10).contains(&k), "Nemenyi table covers k in 2..=10");
    assert!(n > 0, "need at least one block");
    let q = Q_ALPHA_05[k - 2];
    q * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

/// Pairwise Nemenyi verdicts after a significant Friedman test: entry
/// `(i, j)` is `true` when treatments `i` and `j` differ at α = 0.05.
pub fn nemenyi_pairwise(mean_ranks: &[f64], n_blocks: usize) -> Vec<Vec<bool>> {
    let k = mean_ranks.len();
    let cd = nemenyi_critical_difference(k, n_blocks);
    (0..k)
        .map(|i| {
            (0..k)
                .map(|j| i != j && (mean_ranks[i] - mean_ranks[j]).abs() > cd)
                .collect()
        })
        .collect()
}

/// Survival function of the χ² distribution with `df` degrees of freedom
/// (via the Wilson–Hilferty normal approximation for df > 2 and exact
/// forms for df ∈ {1, 2}).
pub fn chi_square_sf(x: f64, df: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    match df {
        0 => 1.0,
        1 => 2.0 * (1.0 - normal_cdf(x.sqrt())),
        2 => (-x / 2.0).exp(),
        _ => {
            let k = df as f64;
            // Wilson–Hilferty: (χ²/k)^(1/3) ≈ N(1 − 2/(9k), 2/(9k)).
            let z = ((x / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
            (1.0 - normal_cdf(z)).clamp(0.0, 1.0)
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (absolute error < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_ranks_without_ties() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn average_ranks_with_ties() {
        // 10 10 20 → ranks 1.5 1.5 3
        assert_eq!(average_ranks(&[10.0, 10.0, 20.0]), vec![1.5, 1.5, 3.0]);
        // All equal → everyone gets the middle rank.
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.644_853_627) - 0.05).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn paired_test_matches_textbook_blood_pressure_example() {
        // Differences: 15, −7, 5, 20, 0, −9, 17, −12, 5, −10. The zero is
        // dropped (n = 9); |5| ties at midrank 1.5 force the normal path.
        // W+ = 7 + 1.5 + 9 + 8 + 1.5 = 27, W− = 18, statistic = 18.
        // With tie correction (one pair) and continuity correction:
        // z = (27 − 22.5 − 0.5)/√71.125 → two-sided p ≈ 0.635.
        let x = [
            125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0,
        ];
        let y = [
            110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0,
        ];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided);
        assert_eq!(r.n_effective, 9);
        assert_eq!(r.statistic, 18.0);
        assert_eq!(r.w_plus, 27.0);
        assert_eq!(r.method, PValueMethod::NormalApproximation);
        assert!((r.p_value - 0.635).abs() < 0.01, "p={}", r.p_value);
    }

    #[test]
    fn tie_free_small_sample_uses_exact_distribution() {
        // Distinct |differences|: 2, −1, 4, 8, −5, 9 (n = 6, no ties).
        // Ranks: 2→2, 1→1, 4→3, 8→5, 5→4, 9→6; W+ = 2+3+5+6 = 16.
        let x = [3.0, 1.0, 7.0, 10.0, 0.0, 12.0];
        let y = [1.0, 2.0, 3.0, 2.0, 5.0, 3.0];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided);
        assert_eq!(r.method, PValueMethod::Exact);
        assert_eq!(r.w_plus, 16.0);
        assert_eq!(r.statistic, 5.0);
        // Exact two-sided p: 2·P(W+ ≥ 16) = 2·(#assignments with sum ≥ 16)/64.
        assert!(r.p_value > 0.2 && r.p_value < 0.7, "p={}", r.p_value);
    }

    #[test]
    fn one_sided_p_is_half_of_two_sided_without_center_mass() {
        // Tie-free, all-positive differences: 0.5, 0.9, 0.7, 0.55, 1.8,
        // 1.9, 1.5 — the strongest one-sided evidence at n = 7.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let y = [0.5, 1.1, 2.3, 3.45, 3.2, 4.1, 5.5];
        let two = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided);
        let greater = wilcoxon_signed_rank(&x, &y, Alternative::Greater);
        assert!(greater.p_value < two.p_value);
        assert_eq!(greater.method, PValueMethod::Exact);
        assert_eq!(greater.w_plus, 28.0);
        assert!((greater.p_value - 1.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn one_sample_test_detects_shift() {
        // Ten accuracies around 0.695 tested against the published 0.679.
        let acc = [0.69, 0.70, 0.71, 0.68, 0.695, 0.70, 0.72, 0.69, 0.705, 0.70];
        let r = wilcoxon_one_sample(&acc, 0.679, Alternative::Greater);
        assert!(r.p_value < 0.01, "p={}", r.p_value);
        let r_less = wilcoxon_one_sample(&acc, 0.679, Alternative::Less);
        assert!(r_less.p_value > 0.95);
    }

    #[test]
    fn symmetric_data_is_not_significant() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided);
        assert!(r.p_value > 0.9, "p={}", r.p_value);
        assert_eq!(r.w_plus, r.w_minus);
    }

    #[test]
    fn swapping_samples_mirrors_alternative() {
        let x = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.5];
        let g = wilcoxon_signed_rank(&x, &y, Alternative::Greater);
        let l = wilcoxon_signed_rank(&y, &x, Alternative::Less);
        assert!((g.p_value - l.p_value).abs() < 1e-12);
        assert_eq!(g.w_plus, l.w_minus);
    }

    #[test]
    fn zero_differences_are_dropped() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided);
        assert_eq!(r.n_effective, 2);
    }

    #[test]
    #[should_panic(expected = "all differences are zero")]
    fn identical_samples_panic() {
        let x = [1.0, 2.0];
        let _ = wilcoxon_signed_rank(&x, &x, Alternative::TwoSided);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn length_mismatch_panics() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0], Alternative::TwoSided);
    }

    #[test]
    fn ties_fall_back_to_normal_approximation() {
        // Repeated |differences| force midranks → normal path.
        let x = [2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0];
        let y = [1.0; 10];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::Greater);
        assert_eq!(r.method, PValueMethod::NormalApproximation);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn large_samples_use_normal_approximation() {
        let x: Vec<f64> = (0..40).map(|i| i as f64 + 0.6).collect();
        let y: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&x, &y, Alternative::Greater);
        assert_eq!(r.method, PValueMethod::NormalApproximation);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn friedman_detects_a_consistently_better_treatment() {
        // Treatment 0 wins every block by a margin; 1 and 2 shuffle.
        let measurements = vec![
            vec![0.9, 0.91, 0.92, 0.9, 0.93, 0.9, 0.91, 0.9],
            vec![0.8, 0.82, 0.81, 0.8, 0.79, 0.8, 0.83, 0.81],
            vec![0.81, 0.8, 0.82, 0.79, 0.8, 0.81, 0.8, 0.8],
        ];
        let r = friedman_test(&measurements);
        assert_eq!(r.df, 2);
        assert!(r.p_value < 0.01, "p={}", r.p_value);
        // Treatment 0 has the highest mean rank (ranks ascend with value).
        assert!(r.mean_ranks[0] > r.mean_ranks[1]);
        assert!(r.mean_ranks[0] > r.mean_ranks[2]);
        assert!(
            (r.mean_ranks.iter().sum::<f64>() - 6.0).abs() < 1e-9,
            "ranks sum to k(k+1)/2"
        );
    }

    #[test]
    fn friedman_on_identical_treatments_is_not_significant() {
        let same = vec![0.8, 0.81, 0.79, 0.8, 0.82];
        let r = friedman_test(&[same.clone(), same.clone(), same]);
        assert_eq!(r.statistic, 0.0, "all blocks fully tied");
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn friedman_matches_textbook_example() {
        // Classic 3-treatment, 4-block example with full rank variation:
        // ranks per block all (1,2,3) in the same order →
        // χ² = 12/(4·3·4)·(4²+8²+12²) − 3·4·4 = 56 − 48 = 8.
        let measurements = vec![
            vec![1.0, 1.1, 1.2, 1.3],
            vec![2.0, 2.1, 2.2, 2.3],
            vec![3.0, 3.1, 3.2, 3.3],
        ];
        let r = friedman_test(&measurements);
        assert!((r.statistic - 8.0).abs() < 1e-9, "{}", r.statistic);
        assert!(r.p_value < 0.05);
    }

    #[test]
    #[should_panic(expected = "same number of blocks")]
    fn friedman_rejects_ragged_input() {
        let _ = friedman_test(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "two treatments")]
    fn friedman_rejects_single_treatment() {
        let _ = friedman_test(&[vec![1.0, 2.0]]);
    }

    #[test]
    fn nemenyi_critical_difference_matches_demsar() {
        // Demšar's worked example: k = 4, N = 14 → CD ≈ 1.25.
        let cd = nemenyi_critical_difference(4, 14);
        assert!((cd - 1.25).abs() < 0.01, "cd = {cd}");
        // More blocks shrink the CD; more treatments grow it.
        assert!(nemenyi_critical_difference(4, 30) < cd);
        assert!(nemenyi_critical_difference(6, 14) > cd);
    }

    #[test]
    fn nemenyi_pairwise_flags_big_rank_gaps() {
        // Ranks 1, 2, 3.8 over 20 blocks: CD(3, 20) ≈ 0.74.
        let verdicts = nemenyi_pairwise(&[1.0, 2.0, 3.8], 20);
        assert!(verdicts[0][1], "gap 1.0 > CD");
        assert!(verdicts[0][2]);
        assert!(verdicts[1][2], "gap 1.8 > CD");
        assert!(!verdicts[0][0], "diagonal never significant");
        // Symmetric matrix.
        assert_eq!(verdicts[0][1], verdicts[1][0]);
    }

    #[test]
    #[should_panic(expected = "2..=10")]
    fn nemenyi_rejects_unsupported_k() {
        let _ = nemenyi_critical_difference(11, 10);
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // df=1: P(χ² > 3.841) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1) - 0.05).abs() < 0.001);
        // df=2: exact exp(−x/2): P(χ² > 5.991) ≈ 0.05.
        assert!((chi_square_sf(5.991, 2) - 0.05).abs() < 0.001);
        // df=5: P(χ² > 11.07) ≈ 0.05 (Wilson–Hilferty ±0.002).
        assert!((chi_square_sf(11.07, 5) - 0.05).abs() < 0.005);
        assert_eq!(chi_square_sf(0.0, 3), 1.0);
        assert_eq!(chi_square_sf(-1.0, 3), 1.0);
        assert!(chi_square_sf(100.0, 3) < 1e-6);
    }

    #[test]
    fn exact_two_sided_never_exceeds_one() {
        let x = [1.0, 2.0];
        let y = [0.5, 2.5];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided);
        assert!(r.p_value <= 1.0);
        assert!(r.p_value > 0.5, "n=2 cannot be significant");
    }
}
