//! Classification metrics: accuracy, confusion matrices and F-scores.
//!
//! The paper reports *accuracy* (its comparison metric with prior work) and
//! the *F-score* "since the data was imbalanced" (§2). We provide per-class
//! precision/recall/F1 plus macro and support-weighted averages; Figure 4
//! plots the weighted F-score next to accuracy.

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics when the slices disagree in length or are empty.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(
        y_true.len(),
        y_pred.len(),
        "prediction/label length mismatch"
    );
    assert!(!y_true.is_empty(), "accuracy of zero samples is undefined");
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// Confusion matrix `m[t][p]` = number of samples with truth `t` predicted
/// as `p`.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        y_true.len(),
        y_pred.len(),
        "prediction/label length mismatch"
    );
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t][p] += 1;
    }
    m
}

/// Per-class and aggregate precision/recall/F1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Per-class precision; `0` for classes never predicted.
    pub precision: Vec<f64>,
    /// Per-class recall; `0` for classes with no samples.
    pub recall: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Number of true samples per class.
    pub support: Vec<usize>,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl ClassificationReport {
    /// Computes the report from truth and predictions.
    pub fn compute(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Self {
        let m = confusion_matrix(y_true, y_pred, n_classes);
        let mut precision = vec![0.0; n_classes];
        let mut recall = vec![0.0; n_classes];
        let mut f1 = vec![0.0; n_classes];
        let mut support = vec![0usize; n_classes];
        for c in 0..n_classes {
            let tp = m[c][c] as f64;
            let fp: f64 = (0..n_classes)
                .filter(|&t| t != c)
                .map(|t| m[t][c] as f64)
                .sum();
            let fn_: f64 = (0..n_classes)
                .filter(|&p| p != c)
                .map(|p| m[c][p] as f64)
                .sum();
            support[c] = m[c].iter().sum();
            precision[c] = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            recall[c] = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            f1[c] = if precision[c] + recall[c] > 0.0 {
                2.0 * precision[c] * recall[c] / (precision[c] + recall[c])
            } else {
                0.0
            };
        }
        ClassificationReport {
            precision,
            recall,
            f1,
            support,
            accuracy: accuracy(y_true, y_pred),
        }
    }

    /// Unweighted mean F1 over classes that have support.
    pub fn f1_macro(&self) -> f64 {
        let supported: Vec<usize> = (0..self.f1.len())
            .filter(|&c| self.support[c] > 0)
            .collect();
        if supported.is_empty() {
            return 0.0;
        }
        supported.iter().map(|&c| self.f1[c]).sum::<f64>() / supported.len() as f64
    }

    /// Support-weighted mean F1.
    pub fn f1_weighted(&self) -> f64 {
        let total: usize = self.support.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.f1
            .iter()
            .zip(&self.support)
            .map(|(&f, &s)| f * s as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Multi-class logarithmic loss: `−mean(log p_i[y_i])`, with
/// probabilities clipped to `[1e-15, 1 − 1e-15]` so degenerate
/// predictions stay finite.
///
/// # Panics
/// Panics when lengths disagree or the input is empty.
pub fn log_loss(y_true: &[usize], probabilities: &[Vec<f64>]) -> f64 {
    assert_eq!(
        y_true.len(),
        probabilities.len(),
        "prediction/label length mismatch"
    );
    assert!(!y_true.is_empty(), "log loss of zero samples is undefined");
    let mut total = 0.0;
    for (&t, probs) in y_true.iter().zip(probabilities) {
        let p = probs[t].clamp(1e-15, 1.0 - 1e-15);
        total -= p.ln();
    }
    total / y_true.len() as f64
}

/// Cohen's kappa: agreement between truth and prediction corrected for
/// chance agreement, `κ = (p_o − p_e) / (1 − p_e)`. `1` is perfect,
/// `0` is chance level; defined as `0` when `p_e = 1` (a single class).
pub fn cohen_kappa(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    let m = confusion_matrix(y_true, y_pred, n_classes);
    let n = y_true.len() as f64;
    assert!(n > 0.0, "kappa of zero samples is undefined");
    let p_o: f64 = (0..n_classes).map(|c| m[c][c] as f64).sum::<f64>() / n;
    let p_e: f64 = (0..n_classes)
        .map(|c| {
            let row: f64 = m[c].iter().sum::<usize>() as f64;
            let col: f64 = (0..n_classes).map(|t| m[t][c] as f64).sum();
            (row / n) * (col / n)
        })
        .sum();
    if (1.0 - p_e).abs() < 1e-12 {
        0.0
    } else {
        (p_o - p_e) / (1.0 - p_e)
    }
}

/// Renders a confusion matrix as a fixed-width text table with the given
/// class names on both axes (rows = truth, columns = prediction).
pub fn render_confusion_matrix(matrix: &[Vec<usize>], class_names: &[&str]) -> String {
    assert_eq!(matrix.len(), class_names.len(), "one name per class");
    let width = class_names
        .iter()
        .map(|n| n.len())
        .chain(matrix.iter().flatten().map(|v| v.to_string().len()))
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!("{:>width$} ", "t\\p", width = width));
    for name in class_names {
        out.push_str(&format!("{:>width$} ", name, width = width));
    }
    out.push('\n');
    for (t, row) in matrix.iter().enumerate() {
        out.push_str(&format!("{:>width$} ", class_names[t], width = width));
        for v in row {
            out.push_str(&format!("{:>width$} ", v, width = width));
        }
        out.push('\n');
    }
    out
}

/// Unweighted mean F1 over supported classes.
pub fn f1_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    ClassificationReport::compute(y_true, y_pred, n_classes).f1_macro()
}

/// Support-weighted mean F1.
pub fn f1_weighted(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    ClassificationReport::compute(y_true, y_pred, n_classes).f1_weighted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[1], &[0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn accuracy_rejects_empty() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    fn confusion_matrix_counts_cells() {
        let m = confusion_matrix(&[0, 0, 1, 1, 2], &[0, 1, 1, 1, 0], 3);
        assert_eq!(m[0], vec![1, 1, 0]);
        assert_eq!(m[1], vec![0, 2, 0]);
        assert_eq!(m[2], vec![1, 0, 0]);
    }

    #[test]
    fn report_matches_hand_computation() {
        // truth:      0 0 0 1 1 2
        // prediction: 0 1 0 1 1 1
        let r = ClassificationReport::compute(&[0, 0, 0, 1, 1, 2], &[0, 1, 0, 1, 1, 1], 3);
        // class 0: tp=2, fp=0, fn=1 → p=1, r=2/3, f1=0.8
        assert!((r.precision[0] - 1.0).abs() < 1e-12);
        assert!((r.recall[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.f1[0] - 0.8).abs() < 1e-12);
        // class 1: tp=2, fp=2, fn=0 → p=0.5, r=1, f1=2/3
        assert!((r.precision[1] - 0.5).abs() < 1e-12);
        assert!((r.recall[1] - 1.0).abs() < 1e-12);
        assert!((r.f1[1] - 2.0 / 3.0).abs() < 1e-12);
        // class 2: tp=0 → all zero
        assert_eq!(r.f1[2], 0.0);
        assert_eq!(r.support, vec![3, 2, 1]);
        assert!((r.accuracy - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_averages_supported_classes_only() {
        // Class 2 has no true samples; it must not drag down the macro F1.
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 0, 1, 1];
        assert_eq!(f1_macro(&y_true, &y_pred, 3), 1.0);
    }

    #[test]
    fn weighted_f1_weights_by_support() {
        // truth: 3×0 (all right), 1×1 (wrong) → f1_0=1 (weight 3/4)...
        let y_true = [0, 0, 0, 1];
        let y_pred = [0, 0, 0, 0];
        let r = ClassificationReport::compute(&y_true, &y_pred, 2);
        // class 0: p=3/4, r=1 → f1 = 6/7; class 1: f1 = 0.
        let expected = (6.0 / 7.0) * 3.0 / 4.0;
        assert!((r.f1_weighted() - expected).abs() < 1e-12);
        assert!(r.f1_weighted() < r.accuracy, "imbalance penalised");
    }

    #[test]
    fn perfect_prediction_gives_unit_scores() {
        let y = [0, 1, 2, 1, 0];
        let r = ClassificationReport::compute(&y, &y, 3);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.f1_macro(), 1.0);
        assert_eq!(r.f1_weighted(), 1.0);
    }

    #[test]
    fn degenerate_all_wrong() {
        let r = ClassificationReport::compute(&[0, 0], &[1, 1], 2);
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(r.f1_macro(), 0.0);
        assert_eq!(r.f1_weighted(), 0.0);
    }

    #[test]
    fn log_loss_of_confident_correct_predictions_is_tiny() {
        let probs = vec![vec![0.99, 0.01], vec![0.01, 0.99]];
        let loss = log_loss(&[0, 1], &probs);
        assert!(loss < 0.02, "loss {loss}");
    }

    #[test]
    fn log_loss_matches_hand_computation() {
        // −(ln 0.8 + ln 0.4)/2
        let probs = vec![vec![0.8, 0.2], vec![0.6, 0.4]];
        let expected = -(0.8f64.ln() + 0.4f64.ln()) / 2.0;
        assert!((log_loss(&[0, 1], &probs) - expected).abs() < 1e-12);
    }

    #[test]
    fn log_loss_clips_zero_probabilities() {
        let probs = vec![vec![1.0, 0.0]];
        let loss = log_loss(&[1], &probs);
        assert!(loss.is_finite());
        assert!(loss > 30.0, "clipped at 1e-15: {loss}");
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn log_loss_rejects_empty() {
        let _ = log_loss(&[], &[]);
    }

    #[test]
    fn kappa_perfect_chance_and_inverse() {
        let y = [0, 1, 0, 1, 0, 1];
        assert!((cohen_kappa(&y, &y, 2) - 1.0).abs() < 1e-12);
        // Constant prediction on balanced labels: p_o = 0.5 = p_e → κ = 0.
        let constant = [0usize; 6];
        assert!(cohen_kappa(&y, &constant, 2).abs() < 1e-12);
        // Systematic disagreement is negative.
        let flipped: Vec<usize> = y.iter().map(|&c| 1 - c).collect();
        assert!(cohen_kappa(&y, &flipped, 2) < -0.9);
    }

    #[test]
    fn kappa_degenerate_single_class_is_zero() {
        let y = [0, 0, 0];
        assert_eq!(cohen_kappa(&y, &y, 1), 0.0);
    }

    #[test]
    fn confusion_matrix_rendering_lines_up() {
        let m = confusion_matrix(&[0, 0, 1, 2], &[0, 1, 1, 2], 3);
        let text = render_confusion_matrix(&m, &["walk", "bike", "bus"]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows");
        assert!(lines[0].contains("walk") && lines[0].contains("bus"));
        assert!(lines[1].trim_start().starts_with("walk"));
        // Every line has the same width (fixed columns).
        let widths: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "{text}");
    }

    #[test]
    #[should_panic(expected = "one name per class")]
    fn rendering_requires_matching_names() {
        let m = confusion_matrix(&[0], &[0], 1);
        let _ = render_confusion_matrix(&m, &["a", "b"]);
    }
}
