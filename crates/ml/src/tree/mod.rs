//! CART decision trees.
//!
//! [`DecisionTree`] is the classification tree used directly as the
//! paper's "decision tree" classifier, as the base learner of the random
//! forest (with per-node feature subsampling), and — with sample weights —
//! as the weak learner of AdaBoost. Regression trees on
//! gradient/hessian targets live in [`crate::boosting::regression_tree`].

mod decision_tree;
mod hist;
mod split;

pub use decision_tree::{DecisionTree, TreeConfig};
pub use split::Criterion;

pub(crate) use decision_tree::Node as TreeNode;
pub(crate) use hist::{HIST_NODE_EXACT_CUTOFF, MAX_SUB_DEPTH};
