//! Impurity criteria and best-split search for classification trees.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Node-impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Gini impurity `1 − Σ p_c²` (CART's default).
    Gini,
    /// Shannon entropy `−Σ p_c log₂ p_c` (the information-gain criterion).
    Entropy,
}

impl Criterion {
    /// Impurity of a weighted class histogram.
    pub fn impurity(self, class_weights: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            Criterion::Gini => {
                let sum_sq: f64 = class_weights
                    .iter()
                    .map(|&w| (w / total) * (w / total))
                    .sum();
                1.0 - sum_sq
            }
            Criterion::Entropy => class_weights
                .iter()
                .filter(|&&w| w > 0.0)
                .map(|&w| {
                    let p = w / total;
                    -p * p.log2()
                })
                .sum(),
        }
    }
}

/// The best split found for a node, if any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Feature column to split on.
    pub feature: usize,
    /// Samples with `value <= threshold` go left.
    pub threshold: f64,
    /// Weighted impurity decrease of the split:
    /// `imp(node) − (w_L·imp(L) + w_R·imp(R)) / w_node`, scaled by the
    /// node's weight fraction when accumulated into feature importances.
    pub impurity_decrease: f64,
    /// Number of samples going left.
    pub n_left: usize,
}

/// Scratch buffers reused across nodes to avoid per-node allocation.
pub(crate) struct SplitScratch {
    /// (value, class, weight) triples of the node's samples.
    triples: Vec<(f64, usize, f64)>,
    left_weights: Vec<f64>,
    right_weights: Vec<f64>,
}

impl SplitScratch {
    pub(crate) fn new(n_classes: usize) -> Self {
        SplitScratch {
            triples: Vec::new(),
            left_weights: vec![0.0; n_classes],
            right_weights: vec![0.0; n_classes],
        }
    }
}

/// Finds the best split of `indices` over `features`, or `None` when no
/// split satisfies `min_samples_leaf` or improves impurity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_split(
    data: &Dataset,
    indices: &[usize],
    weights: &[f64],
    features: &[usize],
    criterion: Criterion,
    min_samples_leaf: usize,
    node_impurity: f64,
    scratch: &mut SplitScratch,
) -> Option<Split> {
    let n_classes = data.n_classes;

    let mut best: Option<Split> = None;

    for &feature in features {
        // NaN feature values are skipped: they can't be ordered against a
        // threshold, and `NaN <= t` is false at predict time anyway.
        // `Dataset::from_rows` debug-asserts they never occur upstream.
        scratch.triples.clear();
        scratch.triples.extend(indices.iter().filter_map(|&i| {
            let v = data.value(i, feature);
            (!v.is_nan()).then_some((v, data.y[i], weights[i]))
        }));
        let n = scratch.triples.len();
        scratch.triples.sort_by(|a, b| a.0.total_cmp(&b.0));

        let total_weight: f64 = scratch.triples.iter().map(|&(_, _, w)| w).sum();
        if total_weight <= 0.0 {
            continue;
        }
        scratch.left_weights.iter_mut().for_each(|w| *w = 0.0);
        scratch.right_weights.iter_mut().for_each(|w| *w = 0.0);
        for &(_, c, w) in scratch.triples.iter() {
            scratch.right_weights[c] += w;
        }

        let mut left_weight = 0.0;
        for split_pos in 1..n {
            let (v_prev, c_prev, w_prev) = scratch.triples[split_pos - 1];
            scratch.left_weights[c_prev] += w_prev;
            scratch.right_weights[c_prev] -= w_prev;
            left_weight += w_prev;

            let v_here = scratch.triples[split_pos].0;
            if v_here <= v_prev {
                continue; // only split between distinct values
            }
            if split_pos < min_samples_leaf || n - split_pos < min_samples_leaf {
                continue;
            }
            let right_weight = total_weight - left_weight;
            if left_weight <= 0.0 || right_weight <= 0.0 {
                continue;
            }
            let imp_l = criterion.impurity(&scratch.left_weights, left_weight);
            let imp_r = criterion.impurity(&scratch.right_weights, right_weight);
            let weighted_child = (left_weight * imp_l + right_weight * imp_r) / total_weight;
            let decrease = node_impurity - weighted_child;
            if decrease <= 1e-12 {
                continue;
            }
            // Midpoint threshold; guard against midpoint rounding to
            // the left value for adjacent floats.
            let mut threshold = 0.5 * (v_prev + v_here);
            if threshold <= v_prev {
                threshold = v_prev;
            }
            // Ties on impurity decrease break to the lower feature index,
            // then the lower threshold, so the winner is independent of
            // feature iteration order (and of thread count upstream).
            let is_better = match &best {
                None => true,
                Some(b) => {
                    decrease > b.impurity_decrease
                        || (decrease == b.impurity_decrease
                            && (feature, threshold) < (b.feature, b.threshold))
                }
            };
            if is_better {
                best = Some(Split {
                    feature,
                    threshold,
                    impurity_decrease: decrease,
                    n_left: split_pos,
                });
            }
        }
    }
    (n_classes > 1).then_some(()).and(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_data() -> Dataset {
        // Feature 0 separates perfectly at 2.5; feature 1 is noise.
        Dataset::from_rows(
            &[
                vec![1.0, 5.0],
                vec![2.0, 1.0],
                vec![3.0, 5.0],
                vec![4.0, 1.0],
            ],
            vec![0, 0, 1, 1],
            2,
            vec![0; 4],
            vec![],
        )
    }

    #[test]
    fn gini_impurity_values() {
        assert_eq!(Criterion::Gini.impurity(&[4.0, 0.0], 4.0), 0.0);
        assert_eq!(Criterion::Gini.impurity(&[2.0, 2.0], 4.0), 0.5);
        let three = Criterion::Gini.impurity(&[1.0, 1.0, 1.0], 3.0);
        assert!((three - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Criterion::Gini.impurity(&[0.0, 0.0], 0.0), 0.0);
    }

    #[test]
    fn entropy_impurity_values() {
        assert_eq!(Criterion::Entropy.impurity(&[4.0, 0.0], 4.0), 0.0);
        assert!((Criterion::Entropy.impurity(&[2.0, 2.0], 4.0) - 1.0).abs() < 1e-12);
        assert!((Criterion::Entropy.impurity(&[1.0, 1.0, 1.0, 1.0], 4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finds_perfect_split() {
        let data = two_class_data();
        let indices = [0, 1, 2, 3];
        let weights = [1.0; 4];
        let mut scratch = SplitScratch::new(2);
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        let split = best_split(
            &data,
            &indices,
            &weights,
            &[0, 1],
            Criterion::Gini,
            1,
            imp,
            &mut scratch,
        )
        .expect("split exists");
        assert_eq!(split.feature, 0);
        assert!((split.threshold - 2.5).abs() < 1e-12);
        assert!((split.impurity_decrease - 0.5).abs() < 1e-12);
        assert_eq!(split.n_left, 2);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let data = two_class_data();
        let indices = [0, 1, 2, 3];
        let weights = [1.0; 4];
        let mut scratch = SplitScratch::new(2);
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        // min_samples_leaf = 3 makes every split of 4 samples illegal.
        let split = best_split(
            &data,
            &indices,
            &weights,
            &[0, 1],
            Criterion::Gini,
            3,
            imp,
            &mut scratch,
        );
        assert!(split.is_none());
    }

    #[test]
    fn pure_node_yields_no_split() {
        let data = Dataset::from_rows(
            &[vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1],
            2,
            vec![0; 3],
            vec![],
        );
        let mut scratch = SplitScratch::new(2);
        let split = best_split(
            &data,
            &[0, 1, 2],
            &[1.0; 3],
            &[0],
            Criterion::Gini,
            1,
            0.0,
            &mut scratch,
        );
        assert!(split.is_none());
    }

    #[test]
    fn constant_feature_yields_no_split() {
        let data = Dataset::from_rows(
            &[vec![7.0], vec![7.0], vec![7.0], vec![7.0]],
            vec![0, 1, 0, 1],
            2,
            vec![0; 4],
            vec![],
        );
        let mut scratch = SplitScratch::new(2);
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        let split = best_split(
            &data,
            &[0, 1, 2, 3],
            &[1.0; 4],
            &[0],
            Criterion::Gini,
            1,
            imp,
            &mut scratch,
        );
        assert!(split.is_none());
    }

    #[test]
    fn nan_feature_values_are_skipped_not_fatal() {
        // Feature 0 has a NaN on a class-1 row; the remaining values still
        // separate the classes at 2.5. NaN must neither panic the sort nor
        // participate in a candidate threshold.
        let data = Dataset::from_rows_unchecked(
            &[vec![1.0], vec![2.0], vec![3.0], vec![f64::NAN]],
            vec![0, 0, 1, 1],
            2,
            vec![0; 4],
        );
        let mut scratch = SplitScratch::new(2);
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        let split = best_split(
            &data,
            &[0, 1, 2, 3],
            &[1.0; 4],
            &[0],
            Criterion::Gini,
            1,
            imp,
            &mut scratch,
        )
        .expect("split exists on the non-NaN values");
        assert_eq!(split.feature, 0);
        assert!((split.threshold - 2.5).abs() < 1e-12);
        assert_eq!(split.n_left, 2, "NaN is not counted on the left");

        // An all-NaN feature is simply unusable, like a constant one.
        let all_nan = Dataset::from_rows_unchecked(
            &[vec![f64::NAN], vec![f64::NAN]],
            vec![0, 1],
            2,
            vec![0; 2],
        );
        let none = best_split(
            &all_nan,
            &[0, 1],
            &[1.0; 2],
            &[0],
            Criterion::Gini,
            1,
            0.5,
            &mut scratch,
        );
        assert!(none.is_none());
    }

    #[test]
    fn equal_decrease_ties_break_to_lower_feature_then_threshold() {
        // Both features separate the classes perfectly, with different
        // thresholds; the tie must go to feature 0 regardless of the
        // order features are offered in.
        let data = Dataset::from_rows(
            &[
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0],
            ],
            vec![0, 0, 1, 1],
            2,
            vec![0; 4],
            vec![],
        );
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        for order in [[0usize, 1], [1, 0]] {
            let mut scratch = SplitScratch::new(2);
            let split = best_split(
                &data,
                &[0, 1, 2, 3],
                &[1.0; 4],
                &order,
                Criterion::Gini,
                1,
                imp,
                &mut scratch,
            )
            .expect("split exists");
            assert_eq!(split.feature, 0, "offered as {order:?}");
            assert!((split.threshold - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_steer_the_split() {
        // Feature separates {0,1} vs {2,3}; sample 3's label breaks purity
        // on the right, but a tiny weight makes the right side effectively
        // pure, so the split is still strongly preferred.
        let data = Dataset::from_rows(
            &[vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![0, 0, 1, 0],
            2,
            vec![0; 4],
            vec![],
        );
        let heavy = [1.0, 1.0, 1.0, 1e-9];
        let mut scratch = SplitScratch::new(2);
        let class_w = [2.0 + 1e-9, 1.0];
        let imp = Criterion::Gini.impurity(&class_w, 3.0 + 1e-9);
        let split = best_split(
            &data,
            &[0, 1, 2, 3],
            &heavy,
            &[0],
            Criterion::Gini,
            1,
            imp,
            &mut scratch,
        )
        .expect("split exists");
        assert_eq!(split.feature, 0);
        assert!((split.threshold - 2.5).abs() < 1e-12, "{}", split.threshold);
    }
}
