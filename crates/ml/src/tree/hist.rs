//! Histogram split search for classification trees.
//!
//! Works on a [`BinnedDataset`]: per node, one pass over the node's
//! samples accumulates a class-weight histogram per (feature, bin), then
//! an `O(n_bins)` sweep finds the best boundary — no per-node sorting.
//! Two structural tricks keep it fast:
//!
//! * **histogram subtraction** — after a split, only the smaller child's
//!   histogram is accumulated; the sibling's is the parent's minus the
//!   child's (exact for integer-valued weights, which covers the unit
//!   weights of plain/forest training).
//! * **small-node exact fallback** — below
//!   [`HIST_NODE_EXACT_CUTOFF`] samples the sort-based search is cheaper
//!   than zeroing and sweeping 256-bin histograms, so tiny nodes drop to
//!   `best_split`. The fallback is part of the Hist algorithm's
//!   definition, not an approximation: it searches the same candidate
//!   partitions or better.

use crate::binned::BinnedDataset;
use crate::tree::split::{Criterion, Split, SplitScratch};

/// Nodes smaller than this use the exact sort-based split search even on
/// the Hist path — histogram zero/sweep overhead dominates tiny nodes.
pub(crate) const HIST_NODE_EXACT_CUTOFF: usize = 256;

/// Maximum node depth at which the subtraction trick still keeps parent
/// histograms alive; deeper nodes rebuild from scratch. Bounds the pool
/// to one buffer per level of one root-to-leaf path.
pub(crate) const MAX_SUB_DEPTH: usize = 24;

/// A class-weight histogram over every (feature, bin) of a
/// [`BinnedDataset`], flattened: the slot of feature `f`, bin `b`, class
/// `c` is `w[(binned.bin_offset(f) + b) * n_classes + c]`, with the
/// matching unweighted sample count in `cnt`.
pub(crate) struct ClassHist {
    w: Vec<f64>,
    cnt: Vec<u32>,
}

impl ClassHist {
    fn new(total_bins: usize, n_classes: usize) -> Self {
        ClassHist {
            w: vec![0.0; total_bins * n_classes],
            cnt: vec![0; total_bins],
        }
    }

    fn zero(&mut self) {
        self.w.iter_mut().for_each(|v| *v = 0.0);
        self.cnt.iter_mut().for_each(|v| *v = 0);
    }

    /// Zeroes only the bin ranges of `features` — the per-node feature
    /// sampling path touches a handful of columns, so zeroing the whole
    /// buffer would dwarf the accumulation itself.
    pub(crate) fn zero_features(
        &mut self,
        binned: &BinnedDataset,
        features: &[usize],
        n_classes: usize,
    ) {
        for &f in features {
            let lo = binned.bin_offset(f);
            let hi = lo + binned.n_bins(f);
            self.w[lo * n_classes..hi * n_classes]
                .iter_mut()
                .for_each(|v| *v = 0.0);
            self.cnt[lo..hi].iter_mut().for_each(|v| *v = 0);
        }
    }

    /// Accumulates the node's samples into the ranges of `features`.
    pub(crate) fn accumulate(
        &mut self,
        binned: &BinnedDataset,
        features: &[usize],
        indices: &[usize],
        y: &[usize],
        weights: &[f64],
        n_classes: usize,
    ) {
        for &f in features {
            let off = binned.bin_offset(f);
            let col = binned.column(f);
            for &i in indices {
                let slot = off + col[i] as usize;
                self.w[slot * n_classes + y[i]] += weights[i];
                self.cnt[slot] += 1;
            }
        }
    }

    /// `self -= child`, turning a parent histogram into the sibling's.
    pub(crate) fn subtract(&mut self, child: &ClassHist) {
        for (p, c) in self.w.iter_mut().zip(&child.w) {
            *p -= c;
        }
        for (p, c) in self.cnt.iter_mut().zip(&child.cnt) {
            *p -= c;
        }
    }
}

/// Reusable buffers of one histogram-mode tree fit. Fields are borrowed
/// disjointly by the tree builder, hence the crate visibility.
pub(crate) struct HistScratch {
    n_classes: usize,
    total_bins: usize,
    /// Work buffer of the feature-sampling path (zeroed per node, sampled
    /// ranges only; never enters the pool).
    pub(crate) work: ClassHist,
    /// Pool of full histograms for the subtraction trick.
    pool: Vec<ClassHist>,
    /// Scratch of the small-node exact fallback.
    pub(crate) exact: SplitScratch,
    /// Left/right class-weight buffers of the sweep.
    pub(crate) left: Vec<f64>,
    pub(crate) right: Vec<f64>,
}

impl HistScratch {
    pub(crate) fn new(n_classes: usize, binned: &BinnedDataset) -> Self {
        let total_bins = binned.total_bins();
        HistScratch {
            n_classes,
            total_bins,
            work: ClassHist::new(total_bins, n_classes),
            pool: Vec::new(),
            exact: SplitScratch::new(n_classes),
            left: vec![0.0; n_classes],
            right: vec![0.0; n_classes],
        }
    }

    /// A zeroed full histogram, reusing a pooled buffer when available.
    pub(crate) fn take_zeroed(&mut self) -> ClassHist {
        match self.pool.pop() {
            Some(mut h) => {
                h.zero();
                h
            }
            None => ClassHist::new(self.total_bins, self.n_classes),
        }
    }

    /// Returns a histogram buffer to the pool.
    pub(crate) fn put(&mut self, h: ClassHist) {
        self.pool.push(h);
    }
}

/// A split found by the histogram sweep: the raw-space [`Split`] plus the
/// bin boundary it corresponds to (samples with `code <= bin` go left).
pub(crate) struct HistSplit {
    pub(crate) split: Split,
    pub(crate) bin: usize,
}

/// Sweeps a node histogram for the best boundary over `features`.
///
/// Candidate boundaries sit after each non-empty bin (a boundary after an
/// empty bin yields the same partition as the previous one, only with a
/// larger threshold — the sweep keeps the smallest, mirroring how the
/// exact search only splits between values present in the node).
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_split_hist(
    hist: &ClassHist,
    binned: &BinnedDataset,
    features: &[usize],
    criterion: Criterion,
    min_samples_leaf: usize,
    node_impurity: f64,
    class_weights: &[f64],
    node_weight: f64,
    n_node: usize,
    left: &mut [f64],
    right: &mut [f64],
) -> Option<HistSplit> {
    let k = class_weights.len();
    if k < 2 || node_weight <= 0.0 {
        return None;
    }
    let mut best: Option<HistSplit> = None;

    for &feature in features {
        let nb = binned.n_bins(feature);
        if nb < 2 {
            continue;
        }
        let off = binned.bin_offset(feature);
        left.iter_mut().for_each(|v| *v = 0.0);
        let mut left_weight = 0.0;
        let mut left_cnt = 0usize;

        for b in 0..nb - 1 {
            let c = hist.cnt[off + b] as usize;
            if c > 0 {
                let slot = (off + b) * k;
                for (cl, &w) in left.iter_mut().zip(&hist.w[slot..slot + k]) {
                    *cl += w;
                    left_weight += w;
                }
                left_cnt += c;
            } else {
                continue; // boundary duplicates the previous partition
            }
            if left_cnt == n_node {
                break; // nothing left on the right at any later boundary
            }
            if left_cnt < min_samples_leaf || n_node - left_cnt < min_samples_leaf {
                continue;
            }
            let right_weight = node_weight - left_weight;
            if left_weight <= 0.0 || right_weight <= 0.0 {
                continue;
            }
            for ((r, &total), &l) in right.iter_mut().zip(class_weights).zip(left.iter()) {
                *r = (total - l).max(0.0);
            }
            let imp_l = criterion.impurity(left, left_weight);
            let imp_r = criterion.impurity(right, right_weight);
            let weighted_child = (left_weight * imp_l + right_weight * imp_r) / node_weight;
            let decrease = node_impurity - weighted_child;
            if decrease <= 1e-12 {
                continue;
            }
            let threshold = binned.split_value(feature, b);
            // Same tie-break as the exact search: lower feature index,
            // then lower threshold.
            let is_better = match &best {
                None => true,
                Some(bst) => {
                    decrease > bst.split.impurity_decrease
                        || (decrease == bst.split.impurity_decrease
                            && (feature, threshold) < (bst.split.feature, bst.split.threshold))
                }
            };
            if is_better {
                best = Some(HistSplit {
                    split: Split {
                        feature,
                        threshold,
                        impurity_decrease: decrease,
                        n_left: left_cnt,
                    },
                    bin: b,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn dataset_and_bins(rows: &[Vec<f64>], y: Vec<usize>, k: usize) -> (Dataset, BinnedDataset) {
        let n = rows.len();
        let data = Dataset::from_rows(rows, y, k, vec![0; n], vec![]);
        let binned = BinnedDataset::from_dataset(&data);
        (data, binned)
    }

    #[test]
    fn hist_sweep_matches_exact_on_lossless_bins() {
        // Same dataset as split.rs's `finds_perfect_split`.
        let (data, binned) = dataset_and_bins(
            &[
                vec![1.0, 5.0],
                vec![2.0, 1.0],
                vec![3.0, 5.0],
                vec![4.0, 1.0],
            ],
            vec![0, 0, 1, 1],
            2,
        );
        let indices = [0usize, 1, 2, 3];
        let weights = [1.0; 4];
        let mut scratch = HistScratch::new(2, &binned);
        let mut hist = scratch.take_zeroed();
        hist.accumulate(&binned, &[0, 1], &indices, &data.y, &weights, 2);
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        let (mut left, mut right) = (vec![0.0; 2], vec![0.0; 2]);
        let hs = best_split_hist(
            &hist,
            &binned,
            &[0, 1],
            Criterion::Gini,
            1,
            imp,
            &[2.0, 2.0],
            4.0,
            4,
            &mut left,
            &mut right,
        )
        .expect("split exists");
        assert_eq!(hs.split.feature, 0);
        assert_eq!(hs.split.threshold, 2.5);
        assert_eq!(hs.split.impurity_decrease, 0.5);
        assert_eq!(hs.split.n_left, 2);
        assert_eq!(hs.bin, 1);
    }

    #[test]
    fn subtraction_recovers_the_sibling() {
        let (data, binned) = dataset_and_bins(
            &[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]],
            vec![0, 0, 1, 1, 0],
            2,
        );
        let weights = [1.0; 5];
        let mut scratch = HistScratch::new(2, &binned);
        let mut parent = scratch.take_zeroed();
        parent.accumulate(&binned, &[0], &[0, 1, 2, 3, 4], &data.y, &weights, 2);
        let mut small = scratch.take_zeroed();
        small.accumulate(&binned, &[0], &[0, 1], &data.y, &weights, 2);
        parent.subtract(&small);
        let mut sibling = scratch.take_zeroed();
        sibling.accumulate(&binned, &[0], &[2, 3, 4], &data.y, &weights, 2);
        assert_eq!(parent.w, sibling.w);
        assert_eq!(parent.cnt, sibling.cnt);
    }

    #[test]
    fn empty_bins_are_not_candidate_boundaries() {
        // The node only holds values {1, 4} of a column binned over
        // {1,2,3,4}; the only candidate partition is between them, taken
        // at the lowest representing boundary.
        let (data, binned) = dataset_and_bins(
            &[vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![0, 0, 1, 1],
            2,
        );
        let node = [0usize, 3];
        let weights = [1.0; 4];
        let mut scratch = HistScratch::new(2, &binned);
        let mut hist = scratch.take_zeroed();
        hist.accumulate(&binned, &[0], &node, &data.y, &weights, 2);
        let imp = Criterion::Gini.impurity(&[1.0, 1.0], 2.0);
        let (mut left, mut right) = (vec![0.0; 2], vec![0.0; 2]);
        let hs = best_split_hist(
            &hist,
            &binned,
            &[0],
            Criterion::Gini,
            1,
            imp,
            &[1.0, 1.0],
            2.0,
            2,
            &mut left,
            &mut right,
        )
        .expect("split exists");
        assert_eq!(hs.bin, 0, "boundary right after the bin of 1.0");
        assert_eq!(hs.split.threshold, 1.5);
        assert_eq!(hs.split.n_left, 1);
    }

    #[test]
    fn min_samples_leaf_is_enforced_on_counts() {
        let (data, binned) = dataset_and_bins(
            &[vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![0, 0, 1, 1],
            2,
        );
        let weights = [1.0; 4];
        let mut scratch = HistScratch::new(2, &binned);
        let mut hist = scratch.take_zeroed();
        hist.accumulate(&binned, &[0], &[0, 1, 2, 3], &data.y, &weights, 2);
        let imp = Criterion::Gini.impurity(&[2.0, 2.0], 4.0);
        let (mut left, mut right) = (vec![0.0; 2], vec![0.0; 2]);
        let none = best_split_hist(
            &hist,
            &binned,
            &[0],
            Criterion::Gini,
            3,
            imp,
            &[2.0, 2.0],
            4.0,
            4,
            &mut left,
            &mut right,
        );
        assert!(none.is_none());
    }
}
