//! The CART classification tree.

use crate::binned::{BinnedDataset, SplitAlgo};
use crate::dataset::Dataset;
use crate::tree::hist::{
    best_split_hist, ClassHist, HistScratch, HIST_NODE_EXACT_CUTOFF, MAX_SUB_DEPTH,
};
use crate::tree::split::{best_split, Criterion, SplitScratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Impurity criterion.
    pub criterion: Criterion,
    /// Maximum tree depth; `None` grows until purity or the minimum-sample
    /// limits stop a node.
    pub max_depth: Option<usize>,
    /// Minimum samples a node must hold to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum samples each child of a split must receive.
    pub min_samples_leaf: usize,
    /// Number of candidate features per node; `None` considers all.
    /// Random forests pass `⌈√d⌉`.
    pub max_features: Option<usize>,
    /// Seed of the per-node feature subsampling.
    pub seed: u64,
    /// Split-search algorithm; [`SplitAlgo::Auto`] picks the histogram
    /// path above [`crate::binned::HIST_AUTO_CUTOFF_ROWS`] training rows.
    #[serde(default)]
    pub split_algo: SplitAlgo,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
            split_algo: SplitAlgo::Auto,
        }
    }
}

/// One arena node of a classification tree. Exposed crate-wide so
/// [`crate::compiled`] can lower fitted trees into flat SoA arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    /// A split: `row[feature] <= threshold` routes left.
    Internal {
        feature: usize,
        threshold: f64,
        /// Index of the left child in the node arena; children always
        /// follow their parent.
        left: usize,
        right: usize,
    },
    /// A terminal node.
    Leaf {
        class: usize,
        /// Training class distribution at the leaf (weighted, normalised).
        probs: Vec<f64>,
    },
}

/// A CART decision tree classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
    /// Unnormalised impurity-decrease importance per feature.
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_classes: 0,
            n_features: 0,
            importances: Vec::new(),
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Fits the tree on every sample with unit weights.
    pub fn fit(&mut self, data: &Dataset) {
        let weights = vec![1.0; data.len()];
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_weighted_on(data, &indices, &weights);
    }

    /// Fits the tree on every sample with the given weights (AdaBoost's
    /// path).
    ///
    /// # Panics
    /// Panics when `weights.len() != data.len()` or the dataset is empty.
    pub fn fit_weighted(&mut self, data: &Dataset, weights: &[f64]) {
        assert_eq!(weights.len(), data.len(), "one weight per sample");
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_weighted_on(data, &indices, weights);
    }

    /// Fits the tree on the subset `indices` (with repetition allowed —
    /// the forest's bootstrap path) using per-sample `weights` indexed by
    /// the *original* dataset positions.
    ///
    /// When `split_algo` resolves to the histogram path for this size,
    /// the dataset is quantized here; callers that retrain repeatedly
    /// should bin once and use [`DecisionTree::fit_binned_on`] instead.
    pub fn fit_weighted_on(&mut self, data: &Dataset, indices: &[usize], weights: &[f64]) {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        if self.config.split_algo.use_hist(indices.len()) {
            let binned = BinnedDataset::from_dataset(data);
            self.fit_binned_on(data, &binned, indices, weights);
            return;
        }
        self.n_classes = data.n_classes;
        self.n_features = data.n_features();
        self.nodes.clear();
        self.importances = vec![0.0; self.n_features];

        let total_weight: f64 = indices.iter().map(|&i| weights[i]).sum();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut scratch = SplitScratch::new(self.n_classes);
        let mut owned = indices.to_vec();
        let mut all_features: Vec<usize> = (0..self.n_features).collect();
        self.build(
            data,
            &mut owned,
            weights,
            0,
            total_weight,
            &mut rng,
            &mut scratch,
            &mut all_features,
        );
    }

    /// Fits with the histogram split search on every sample, against a
    /// pre-built binned matrix (AdaBoost's per-round path).
    pub fn fit_binned_weighted(&mut self, data: &Dataset, binned: &BinnedDataset, weights: &[f64]) {
        assert_eq!(weights.len(), data.len(), "one weight per sample");
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_binned_on(data, binned, &indices, weights);
    }

    /// Fits with the histogram split search on the subset `indices`,
    /// against a binned matrix built once from the *full* dataset — the
    /// quantize-once entry point the forest, CV and feature-selection
    /// layers share. `weights` are indexed by original dataset positions.
    ///
    /// # Panics
    /// Panics when `indices` is empty or `binned` does not cover `data`.
    pub fn fit_binned_on(
        &mut self,
        data: &Dataset,
        binned: &BinnedDataset,
        indices: &[usize],
        weights: &[f64],
    ) {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert_eq!(
            binned.n_rows(),
            data.len(),
            "binned matrix must cover the dataset"
        );
        assert_eq!(
            binned.n_features(),
            data.n_features(),
            "binned matrix must cover every feature"
        );
        self.n_classes = data.n_classes;
        self.n_features = data.n_features();
        self.nodes.clear();
        self.importances = vec![0.0; self.n_features];

        let total_weight: f64 = indices.iter().map(|&i| weights[i]).sum();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut scratch = HistScratch::new(self.n_classes, binned);
        let mut owned = indices.to_vec();
        let mut all_features: Vec<usize> = (0..self.n_features).collect();
        self.build_hist(
            data,
            binned,
            &mut owned,
            weights,
            0,
            total_weight,
            &mut rng,
            &mut scratch,
            &mut all_features,
            None,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        weights: &[f64],
        depth: usize,
        root_weight: f64,
        rng: &mut StdRng,
        scratch: &mut SplitScratch,
        feature_pool: &mut Vec<usize>,
    ) -> usize {
        let (class_weights, node_weight) = self.class_weights(data, indices, weights);
        let node_impurity = self.config.criterion.impurity(&class_weights, node_weight);

        let depth_ok = self.config.max_depth.is_none_or(|d| depth < d);
        let size_ok = indices.len() >= self.config.min_samples_split;
        let impure = node_impurity > 1e-12;

        if depth_ok && size_ok && impure {
            let features: &[usize] = match self.config.max_features {
                Some(k) if k < feature_pool.len() => {
                    feature_pool.shuffle(rng);
                    &feature_pool[..k]
                }
                _ => feature_pool,
            };
            // The shuffled prefix must be copied: recursion below reuses
            // the pool.
            let features: Vec<usize> = features.to_vec();
            if let Some(split) = best_split(
                data,
                indices,
                weights,
                &features,
                self.config.criterion,
                self.config.min_samples_leaf,
                node_impurity,
                scratch,
            ) {
                self.importances[split.feature] +=
                    (node_weight / root_weight) * split.impurity_decrease;

                // Partition indices in place around the threshold.
                let mut lt = 0usize;
                for i in 0..indices.len() {
                    if data.value(indices[i], split.feature) <= split.threshold {
                        indices.swap(lt, i);
                        lt += 1;
                    }
                }
                debug_assert_eq!(lt, split.n_left);

                let node_id = self.nodes.len();
                self.nodes.push(Node::Internal {
                    feature: split.feature,
                    threshold: split.threshold,
                    left: 0,
                    right: 0,
                });
                let (left_ix, right_ix) = indices.split_at_mut(lt);
                let left = self.build(
                    data,
                    left_ix,
                    weights,
                    depth + 1,
                    root_weight,
                    rng,
                    scratch,
                    feature_pool,
                );
                let right = self.build(
                    data,
                    right_ix,
                    weights,
                    depth + 1,
                    root_weight,
                    rng,
                    scratch,
                    feature_pool,
                );
                if let Node::Internal {
                    left: l, right: r, ..
                } = &mut self.nodes[node_id]
                {
                    *l = left;
                    *r = right;
                }
                return node_id;
            }
        }

        self.push_leaf(&class_weights, node_weight)
    }

    /// The histogram-mode twin of [`DecisionTree::build`]: identical stop
    /// conditions, RNG consumption, importance accumulation and recursion
    /// order, with the split search swapped for the binned sweep.
    /// `inherited` is this node's pre-accumulated histogram when the
    /// parent derived it via the subtraction trick.
    #[allow(clippy::too_many_arguments)]
    fn build_hist(
        &mut self,
        data: &Dataset,
        binned: &BinnedDataset,
        indices: &mut [usize],
        weights: &[f64],
        depth: usize,
        root_weight: f64,
        rng: &mut StdRng,
        scratch: &mut HistScratch,
        feature_pool: &mut Vec<usize>,
        inherited: Option<ClassHist>,
    ) -> usize {
        let mut inherited = inherited;
        let (class_weights, node_weight) = self.class_weights(data, indices, weights);
        let node_impurity = self.config.criterion.impurity(&class_weights, node_weight);

        let depth_ok = self.config.max_depth.is_none_or(|d| depth < d);
        let size_ok = indices.len() >= self.config.min_samples_split;
        let impure = node_impurity > 1e-12;

        if depth_ok && size_ok && impure {
            let sampling = matches!(self.config.max_features, Some(k) if k < feature_pool.len());
            let features: Vec<usize> = if sampling {
                let k = self.config.max_features.expect("sampling implies Some");
                feature_pool.shuffle(rng);
                feature_pool[..k].to_vec()
            } else {
                feature_pool.clone()
            };

            if indices.len() < HIST_NODE_EXACT_CUTOFF {
                // Small-node exact fallback: sorting a few hundred values
                // beats zeroing and sweeping 256-bin histograms.
                if let Some(h) = inherited.take() {
                    scratch.put(h);
                }
                if let Some(split) = best_split(
                    data,
                    indices,
                    weights,
                    &features,
                    self.config.criterion,
                    self.config.min_samples_leaf,
                    node_impurity,
                    &mut scratch.exact,
                ) {
                    self.importances[split.feature] +=
                        (node_weight / root_weight) * split.impurity_decrease;
                    let mut lt = 0usize;
                    for i in 0..indices.len() {
                        if data.value(indices[i], split.feature) <= split.threshold {
                            indices.swap(lt, i);
                            lt += 1;
                        }
                    }
                    debug_assert_eq!(lt, split.n_left);
                    return self.finish_split_hist(
                        data,
                        binned,
                        indices,
                        lt,
                        split.feature,
                        split.threshold,
                        weights,
                        depth,
                        root_weight,
                        rng,
                        scratch,
                        feature_pool,
                        None,
                        None,
                    );
                }
            } else if sampling {
                // Per-node feature sampling (the forest's trees): only the
                // sampled columns are histogrammed, into a reusable work
                // buffer; no subtraction — the parent's histogram covers
                // different columns than the children will sample.
                if let Some(h) = inherited.take() {
                    scratch.put(h);
                }
                let found = {
                    let HistScratch {
                        work, left, right, ..
                    } = &mut *scratch;
                    work.zero_features(binned, &features, self.n_classes);
                    work.accumulate(binned, &features, indices, &data.y, weights, self.n_classes);
                    best_split_hist(
                        work,
                        binned,
                        &features,
                        self.config.criterion,
                        self.config.min_samples_leaf,
                        node_impurity,
                        &class_weights,
                        node_weight,
                        indices.len(),
                        left,
                        right,
                    )
                };
                if let Some(hs) = found {
                    self.importances[hs.split.feature] +=
                        (node_weight / root_weight) * hs.split.impurity_decrease;
                    let lt = partition_by_code(binned, indices, hs.split.feature, hs.bin);
                    debug_assert_eq!(lt, hs.split.n_left);
                    return self.finish_split_hist(
                        data,
                        binned,
                        indices,
                        lt,
                        hs.split.feature,
                        hs.split.threshold,
                        weights,
                        depth,
                        root_weight,
                        rng,
                        scratch,
                        feature_pool,
                        None,
                        None,
                    );
                }
            } else {
                // Full-feature histogram with the subtraction trick.
                let hist = match inherited.take() {
                    Some(h) => h,
                    None => {
                        let mut h = scratch.take_zeroed();
                        h.accumulate(binned, &features, indices, &data.y, weights, self.n_classes);
                        h
                    }
                };
                let found = {
                    let HistScratch { left, right, .. } = &mut *scratch;
                    best_split_hist(
                        &hist,
                        binned,
                        &features,
                        self.config.criterion,
                        self.config.min_samples_leaf,
                        node_impurity,
                        &class_weights,
                        node_weight,
                        indices.len(),
                        left,
                        right,
                    )
                };
                match found {
                    None => scratch.put(hist),
                    Some(hs) => {
                        let mut hist = hist;
                        self.importances[hs.split.feature] +=
                            (node_weight / root_weight) * hs.split.impurity_decrease;
                        let lt = partition_by_code(binned, indices, hs.split.feature, hs.bin);
                        debug_assert_eq!(lt, hs.split.n_left);
                        let n_right = indices.len() - lt;
                        // Subtraction: accumulate only the smaller child,
                        // derive the larger from the parent. Skipped when
                        // both children will take the exact fallback or
                        // the depth cap (which bounds the buffer pool)
                        // is hit.
                        let worth_it =
                            depth < MAX_SUB_DEPTH && lt.max(n_right) >= HIST_NODE_EXACT_CUTOFF;
                        let (left_hist, right_hist) = if worth_it {
                            let mut small = scratch.take_zeroed();
                            let small_ix = if lt <= n_right {
                                &indices[..lt]
                            } else {
                                &indices[lt..]
                            };
                            small.accumulate(
                                binned,
                                &features,
                                small_ix,
                                &data.y,
                                weights,
                                self.n_classes,
                            );
                            hist.subtract(&small);
                            if lt <= n_right {
                                (Some(small), Some(hist))
                            } else {
                                (Some(hist), Some(small))
                            }
                        } else {
                            scratch.put(hist);
                            (None, None)
                        };
                        return self.finish_split_hist(
                            data,
                            binned,
                            indices,
                            lt,
                            hs.split.feature,
                            hs.split.threshold,
                            weights,
                            depth,
                            root_weight,
                            rng,
                            scratch,
                            feature_pool,
                            left_hist,
                            right_hist,
                        );
                    }
                }
            }
        }
        if let Some(h) = inherited.take() {
            scratch.put(h);
        }
        self.push_leaf(&class_weights, node_weight)
    }

    /// Pushes the internal node, recurses into both children of the
    /// histogram builder, and backpatches the child links.
    #[allow(clippy::too_many_arguments)]
    fn finish_split_hist(
        &mut self,
        data: &Dataset,
        binned: &BinnedDataset,
        indices: &mut [usize],
        lt: usize,
        feature: usize,
        threshold: f64,
        weights: &[f64],
        depth: usize,
        root_weight: f64,
        rng: &mut StdRng,
        scratch: &mut HistScratch,
        feature_pool: &mut Vec<usize>,
        left_hist: Option<ClassHist>,
        right_hist: Option<ClassHist>,
    ) -> usize {
        let node_id = self.nodes.len();
        self.nodes.push(Node::Internal {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let (left_ix, right_ix) = indices.split_at_mut(lt);
        let left = self.build_hist(
            data,
            binned,
            left_ix,
            weights,
            depth + 1,
            root_weight,
            rng,
            scratch,
            feature_pool,
            left_hist,
        );
        let right = self.build_hist(
            data,
            binned,
            right_ix,
            weights,
            depth + 1,
            root_weight,
            rng,
            scratch,
            feature_pool,
            right_hist,
        );
        if let Node::Internal {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Leaf: majority class by weight.
    fn push_leaf(&mut self, class_weights: &[f64], node_weight: f64) -> usize {
        let node_id = self.nodes.len();
        let class = argmax(class_weights);
        let probs = if node_weight > 0.0 {
            class_weights.iter().map(|&w| w / node_weight).collect()
        } else {
            vec![1.0 / self.n_classes as f64; self.n_classes]
        };
        self.nodes.push(Node::Leaf { class, probs });
        node_id
    }

    fn class_weights(&self, data: &Dataset, indices: &[usize], weights: &[f64]) -> (Vec<f64>, f64) {
        let mut cw = vec![0.0; self.n_classes];
        let mut total = 0.0;
        for &i in indices {
            cw[data.y[i]] += weights[i];
            total += weights[i];
        }
        (cw, total)
    }

    /// Predicted class of one feature row.
    ///
    /// # Panics
    /// Panics when the tree is unfitted.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        match &self.nodes[self.leaf_of(row)] {
            Node::Leaf { class, .. } => *class,
            Node::Internal { .. } => unreachable!("leaf_of returns a leaf"),
        }
    }

    /// Training class distribution at the leaf `row` lands in.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        match &self.nodes[self.leaf_of(row)] {
            Node::Leaf { probs, .. } => probs.clone(),
            Node::Internal { .. } => unreachable!("leaf_of returns a leaf"),
        }
    }

    fn leaf_of(&self, row: &[f64]) -> usize {
        assert!(!self.nodes.is_empty(), "predict on an unfitted tree");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // Shared with the compiled traversal so both paths
                    // agree bit-for-bit, including on NaN (routes right).
                    node = if crate::compiled::goes_left(row[*feature], *threshold) {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted classes of a dataset — a thin wrapper over the compiled
    /// batch path ([`crate::compiled::BatchPredictor`]). Prefer it (or
    /// `predict_into` with a reused buffer) over per-row
    /// [`DecisionTree::predict_row`] loops in hot paths.
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }

    /// Per-feature impurity-decrease importances, normalised to sum to 1
    /// (all-zero when the tree is a single leaf).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            self.importances.iter().map(|&v| v / total).collect()
        } else {
            vec![0.0; self.importances.len()]
        }
    }

    /// Raw (unnormalised) importance accumulators; the forest averages
    /// these before normalising.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `true` once the tree has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// The node arena (empty when unfitted) — the compiled lowering's
    /// view.
    pub(crate) fn nodes_raw(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of classes seen at fit time.
    pub(crate) fn n_classes_raw(&self) -> usize {
        self.n_classes
    }

    /// Width of the feature space seen at fit time.
    pub(crate) fn n_features_raw(&self) -> usize {
        self.n_features
    }

    /// Depth of the fitted tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }
}

/// Partitions `indices` in place so samples whose bin code on `feature`
/// is `<= bin` come first; returns their count. The code comparison is
/// equivalent to the raw-space `value <= threshold` by construction of
/// the bin boundaries.
fn partition_by_code(
    binned: &BinnedDataset,
    indices: &mut [usize],
    feature: usize,
    bin: usize,
) -> usize {
    let col = binned.column(feature);
    let mut lt = 0usize;
    for i in 0..indices.len() {
        if (col[indices[i]] as usize) <= bin {
            indices.swap(lt, i);
            lt += 1;
        }
    }
    lt
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        // XOR with 4 clusters of 10 points each; not linearly separable
        // but a shallow tree nails it. Random jitter breaks the exact
        // symmetry that would zero out every root split's gain.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (cx, cy, label) in [
            (0.0, 0.0, 0usize),
            (1.0, 1.0, 0),
            (0.0, 1.0, 1),
            (1.0, 0.0, 1),
        ] {
            for _ in 0..10 {
                rows.push(vec![
                    cx + rng.gen_range(-0.1..0.1),
                    cy + rng.gen_range(-0.1..0.1),
                ]);
                y.push(label);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 2, vec![0; n], vec![])
    }

    #[test]
    fn learns_xor_perfectly() {
        let data = xor_data();
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
        let pred = tree.predict(&data);
        assert_eq!(pred, data.y);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn max_depth_limits_growth() {
        let data = xor_data();
        let mut stump = DecisionTree::new(TreeConfig {
            max_depth: Some(1),
            ..TreeConfig::default()
        });
        stump.fit(&data);
        assert!(stump.depth() <= 1);
        assert!(stump.n_nodes() <= 3);
    }

    #[test]
    fn pure_training_set_is_single_leaf() {
        let data = Dataset::from_rows(
            &[vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1],
            2,
            vec![0; 3],
            vec![],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_row(&[9.9]), 1);
        assert!(tree.feature_importances().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn probabilities_reflect_leaf_distribution() {
        // One feature, threshold at 1.5; right side is 3:1 mixed but
        // unsplittable (constant feature value).
        let data = Dataset::from_rows(
            &[vec![1.0], vec![2.0], vec![2.0], vec![2.0], vec![2.0]],
            vec![0, 1, 1, 1, 0],
            2,
            vec![0; 5],
            vec![],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
        let p = tree.predict_proba_row(&[2.0]);
        assert!((p[1] - 0.75).abs() < 1e-12, "{p:?}");
        assert_eq!(tree.predict_row(&[2.0]), 1);
        assert_eq!(tree.predict_row(&[1.0]), 0);
        let p_left = tree.predict_proba_row(&[1.0]);
        assert_eq!(p_left, vec![1.0, 0.0]);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        // Feature 1 is pure signal, features 0 and 2 are constants.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![1.0, i as f64, 2.0]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let data = Dataset::from_rows(&rows, y, 2, vec![0; 40], vec![]);
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
        let imp = tree.feature_importances();
        assert_eq!(imp[1], 1.0, "{imp:?}");
        assert_eq!(imp[0] + imp[2], 0.0);
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_fit_respects_weights() {
        // Second cluster outweighs the first despite fewer samples.
        let data = Dataset::from_rows(
            &[vec![1.0], vec![1.0], vec![1.0], vec![2.0]],
            vec![0, 0, 0, 1],
            2,
            vec![0; 4],
            vec![],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit_weighted(&data, &[0.1, 0.1, 0.1, 10.0]);
        assert_eq!(tree.predict_row(&[2.0]), 1);
        assert_eq!(tree.predict_row(&[1.0]), 0);
    }

    #[test]
    fn min_samples_split_stops_early() {
        let data = xor_data();
        let mut tree = DecisionTree::new(TreeConfig {
            min_samples_split: 1000,
            ..TreeConfig::default()
        });
        tree.fit(&data);
        assert_eq!(tree.n_nodes(), 1, "root cannot split");
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let data = xor_data();
        let config = TreeConfig {
            max_features: Some(1),
            seed: 42,
            ..TreeConfig::default()
        };
        let mut t1 = DecisionTree::new(config);
        let mut t2 = DecisionTree::new(config);
        t1.fit(&data);
        t2.fit(&data);
        assert_eq!(t1.predict(&data), t2.predict(&data));
        assert_eq!(t1.n_nodes(), t2.n_nodes());
    }

    #[test]
    fn multiclass_prediction() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let data = Dataset::from_rows(&rows, y.clone(), 3, vec![0; 30], vec![]);
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
        assert_eq!(tree.predict(&data), y);
        assert_eq!(tree.predict_row(&[-5.0]), 0);
        assert_eq!(tree.predict_row(&[99.0]), 2);
    }

    #[test]
    #[should_panic(expected = "unfitted tree")]
    fn predict_on_unfitted_tree_panics() {
        let tree = DecisionTree::new(TreeConfig::default());
        let _ = tree.predict_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn fit_on_empty_dataset_panics() {
        let data = Dataset::from_rows(&[], vec![], 2, vec![], vec![]);
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
    }
}
