//! Compiled batch inference: flat SoA tree ensembles behind the
//! batch-first prediction API.
//!
//! Fitted tree models ([`crate::tree::DecisionTree`],
//! [`crate::forest::RandomForest`], [`crate::boosting::GradientBoosting`])
//! are *lowered* into a [`CompiledModel`]: one flat node arena of packed
//! 32-byte records (so a node visit costs one cache line) with the cold
//! leaf payloads — class distributions, Newton weights — split out into
//! structure-of-arrays side tables, shared by every tree of the
//! ensemble. Leaves
//! self-loop (`left == right == self`, threshold `+∞`), so traversal is an
//! unconditional level-synchronous iteration — a block of rows advances
//! through each depth together with no per-node branching on node kind,
//! no pointer chasing through enum variants, and no per-row allocation.
//!
//! When a [`BinnedDataset`] is available at compile time, each internal
//! node whose threshold is exactly a bin boundary stores that bin, and
//! traversal over binned rows compares `u8` codes instead of `f64`
//! values. Nodes produced by the histogram trainer's small-node exact
//! fallback carry midpoint thresholds that are not bin boundaries; those
//! keep the `f64` comparison (sentinel [`NO_BIN`]), so a single tree can
//! mix both forms.
//!
//! The front door is [`BatchPredictor`]: `predict_into(&rows, &mut out)`
//! with a `Result`-returning [`BatchPredictor::try_predict`] convenience,
//! replacing the panic-on-unfitted contract at the serving boundary with
//! a typed [`PredictError`]. Every classifier in the workspace implements
//! it; tree ensembles run compiled, the rest fall back to their per-row
//! kernels behind the same interface.
//!
//! Determinism: traversal uses the same [`goes_left`]
//! (`f64::total_cmp`-consistent) comparison as the interpreted walkers,
//! and accumulates ensemble scores in the identical order, so compiled
//! and interpreted predictions are bit-identical (pinned by
//! `tests/compiled_parity.rs`).

use crate::binned::BinnedDataset;
use crate::boosting::{GradientBoosting, RegressionTree};
use crate::dataset::Dataset;
use crate::forest::RandomForest;
use crate::tree::DecisionTree;
use std::cmp::Ordering;
use std::fmt;

/// Sentinel in the per-node `bin` table: the node's threshold is not a
/// bin boundary, traverse it with the raw `f64` comparison. Real bin
/// indices fit below it (a feature has at most 256 bins, so at most 255
/// interior boundaries, indices `0..=254`).
pub(crate) const NO_BIN: u8 = u8::MAX;

/// Rows per traversal block: small enough that a block's node cursors
/// and touched feature values stay in L1 across levels.
const BLOCK: usize = 32;

/// Rows per ensemble tile: every tree of the ensemble traverses one
/// tile before the next tile is touched, so the tile's feature rows are
/// read from memory once per *ensemble*, not once per tree (a 70-column
/// `f64` tile is ~280 KiB — L2-resident while the tree nodes stream).
const TILE: usize = 512;

/// Levels advanced between early-exit scans. Leaves self-loop, so extra
/// iterations are harmless; scanning every level would cost more than it
/// saves on balanced trees.
const LEVEL_BURST: usize = 4;

/// Typed prediction failure — the batch API's replacement for the
/// panic-on-unfitted contract of the per-row walkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// The model has not been fitted.
    NotFitted,
    /// The input rows are narrower than the feature space the model was
    /// trained on.
    WrongWidth {
        /// Width the model was trained on.
        expected: usize,
        /// Width of the rows supplied.
        got: usize,
    },
    /// The prediction queue is shutting down and will not answer this
    /// job. Surfaced by the serving micro-batcher so in-flight requests
    /// get a typed retryable error instead of a dropped channel.
    ShuttingDown,
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::NotFitted => f.write_str("predict on an unfitted model"),
            PredictError::WrongWidth { expected, got } => {
                write!(
                    f,
                    "feature rows have {got} values; model expects {expected}"
                )
            }
            PredictError::ShuttingDown => f.write_str("prediction queue is shutting down"),
        }
    }
}

impl std::error::Error for PredictError {}

/// `value` goes to the left child of a node with threshold `threshold`.
///
/// `f64::total_cmp`-consistent twin of `value <= threshold`, shared by
/// the compiled traversal *and* the interpreted per-row walkers so the
/// two paths agree bit-for-bit on every input, including NaN (which
/// always routes right, matching `NaN <= t == false`). This is the same
/// total-order tie rule the split search adopted in the determinism
/// pass.
#[inline]
pub fn goes_left(value: f64, threshold: f64) -> bool {
    value.total_cmp(&threshold) != Ordering::Greater
}

/// Index of the maximum score, resolving ties to the **last** maximum —
/// exactly the tie rule of `Iterator::max_by` that the interpreted
/// `predict_row` paths use.
#[inline]
fn argmax_last(xs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if xs[best].partial_cmp(&v).expect("finite scores") != Ordering::Greater {
            best = i;
        }
    }
    best
}

/// Softmax in place, replicating the interpreted
/// `GradientBoosting::predict_proba_row` operation order bit-for-bit.
fn softmax_in_place(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for v in row.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum: f64 = row.iter().sum();
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// A dense row-major matrix of feature rows — the batch API's input.
///
/// Owns its storage so callers can build it once (or reuse it via
/// [`RowMatrix::clear`] + [`RowMatrix::push_row`]) and predict many
/// times without per-row allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowMatrix {
    values: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl RowMatrix {
    /// An empty matrix accepting rows of width `n_cols`.
    pub fn with_width(n_cols: usize) -> RowMatrix {
        RowMatrix {
            values: Vec::new(),
            n_rows: 0,
            n_cols,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the matrix width.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        self.values.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Builds from a slice of equal-width rows.
    ///
    /// # Panics
    /// Panics when rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> RowMatrix {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut m = RowMatrix::with_width(n_cols);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// A single-row matrix (the per-request serving path).
    pub fn from_row(row: &[f64]) -> RowMatrix {
        RowMatrix {
            values: row.to_vec(),
            n_rows: 1,
            n_cols: row.len(),
        }
    }

    /// Copies every row of a dataset.
    pub fn from_dataset(data: &Dataset) -> RowMatrix {
        let ids: Vec<usize> = (0..data.len()).collect();
        RowMatrix::gather(data, &ids)
    }

    /// Copies the dataset rows at `ids`, in order.
    pub fn gather(data: &Dataset, ids: &[usize]) -> RowMatrix {
        let n_cols = data.n_features();
        let mut values = Vec::with_capacity(ids.len() * n_cols);
        for &i in ids {
            values.extend_from_slice(data.row(i));
        }
        RowMatrix {
            values,
            n_rows: ids.len(),
            n_cols,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Width of each row.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Value at row `i`, column `j`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n_cols + j]
    }

    /// Drops every row, keeping the width and the allocation.
    pub fn clear(&mut self) {
        self.values.clear();
        self.n_rows = 0;
    }

    /// Drops every row and re-arms the matrix for rows of width
    /// `n_cols`, keeping the allocation — the scratch-reuse entry point
    /// for callers that batch for models of varying widths.
    pub fn reset(&mut self, n_cols: usize) {
        self.values.clear();
        self.n_rows = 0;
        self.n_cols = n_cols;
    }
}

/// Reusable prediction output buffer: one class per row and, when the
/// predictor produces them, a dense `n_rows × n_classes` score matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Predictions {
    classes: Vec<usize>,
    scores: Vec<f64>,
    n_classes: usize,
}

impl Predictions {
    /// An empty buffer (filled by [`BatchPredictor::predict_into`]).
    pub fn new() -> Predictions {
        Predictions::default()
    }

    /// Re-shapes for `n_rows` rows of `n_classes` scores (0 = classes
    /// only), zero-filling both tables while keeping allocations.
    pub(crate) fn reset(&mut self, n_rows: usize, n_classes: usize) {
        self.classes.clear();
        self.classes.resize(n_rows, 0);
        self.scores.clear();
        self.scores.resize(n_rows * n_classes, 0.0);
        self.n_classes = n_classes;
    }

    /// Number of predicted rows.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when no rows have been predicted.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Predicted class indices, one per row.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Predicted class of row `i`.
    pub fn class(&self, i: usize) -> usize {
        self.classes[i]
    }

    /// Number of score columns (0 when the predictor emits classes only).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class scores of row `i`; `None` when the predictor emits
    /// classes only.
    pub fn scores(&self, i: usize) -> Option<&[f64]> {
        (self.n_classes > 0).then(|| &self.scores[i * self.n_classes..(i + 1) * self.n_classes])
    }

    /// Consumes the buffer into its class vector.
    pub fn into_classes(self) -> Vec<usize> {
        self.classes
    }

    pub(crate) fn classes_mut(&mut self) -> &mut [usize] {
        &mut self.classes
    }

    pub(crate) fn scores_row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.scores[i * self.n_classes..(i + 1) * self.n_classes]
    }
}

/// The batch-first prediction interface every classifier implements.
///
/// This is the hot-path entry point: callers build a [`RowMatrix`] once
/// and reuse a [`Predictions`] buffer across calls. Unfitted models
/// report [`PredictError::NotFitted`] instead of panicking; rows
/// narrower than the training feature space report
/// [`PredictError::WrongWidth`] (wider rows are allowed, matching the
/// per-row walkers, which only index the trained features).
pub trait BatchPredictor {
    /// Predicts every row of `rows` into `out` (classes always; scores
    /// when the model produces them).
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError>;

    /// Allocating convenience over [`BatchPredictor::predict_into`].
    fn try_predict(&self, rows: &RowMatrix) -> Result<Predictions, PredictError> {
        let mut out = Predictions::default();
        self.predict_into(rows, &mut out)?;
        Ok(out)
    }
}

/// Shared per-row fallback for models without a compiled form: classes
/// only, via the model's per-row kernel.
pub(crate) fn per_row_classes(
    fitted: bool,
    rows: &RowMatrix,
    out: &mut Predictions,
    mut class_of: impl FnMut(&[f64]) -> usize,
) -> Result<(), PredictError> {
    if !fitted {
        return Err(PredictError::NotFitted);
    }
    out.reset(rows.n_rows(), 0);
    for (i, slot) in out.classes.iter_mut().enumerate() {
        *slot = class_of(rows.row(i));
    }
    Ok(())
}

/// The input of a compiled traversal: either a dense row matrix, or
/// indices into a dataset with an optional binned view for `u8`-code
/// comparisons.
enum Rows<'a> {
    Matrix(&'a RowMatrix),
    Indexed {
        data: &'a Dataset,
        binned: Option<&'a BinnedDataset>,
        ids: &'a [usize],
    },
}

impl Rows<'_> {
    fn len(&self) -> usize {
        match self {
            Rows::Matrix(m) => m.n_rows(),
            Rows::Indexed { ids, .. } => ids.len(),
        }
    }

    fn width(&self) -> usize {
        match self {
            Rows::Matrix(m) => m.n_cols(),
            Rows::Indexed { data, .. } => data.n_features(),
        }
    }
}

/// One flat node, packed to 32 bytes so a visit costs one cache line
/// (the interpreted enum nodes are 40+ bytes across a pointer chase;
/// splitting the fields into parallel arrays would cost four lines per
/// visit — the hot record is deliberately AoS, the cold leaf payload
/// tables stay SoA on the owning ensemble).
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    threshold: f64,
    feature: u32,
    left: u32,
    right: u32,
    /// Leaf table index for leaves; 0 for internal nodes.
    payload: u32,
    /// Bin index `b` such that `value <= threshold ⇔ code <= b` for rows
    /// of the compile-time binned matrix; [`NO_BIN`] when the threshold
    /// is not a bin boundary (or no binned matrix was supplied).
    bin: u8,
}

impl FlatNode {
    /// Leaves self-loop: `left == right == self`.
    #[inline]
    fn is_leaf(&self, id: u32) -> bool {
        self.left == id
    }
}

/// Flat node arena for a whole ensemble. Node ids are global across
/// trees; `roots[t]`/`depths[t]` locate and bound tree `t`. Leaves
/// self-loop (`left == right == self`) with threshold `+∞` so the
/// level-synchronous loop needs no node-kind branch.
#[derive(Debug, Clone, Default)]
struct FlatTrees {
    nodes: Vec<FlatNode>,
    roots: Vec<u32>,
    depths: Vec<u32>,
}

impl FlatTrees {
    fn n_trees(&self) -> usize {
        self.roots.len()
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Runs rows `[row0, row0 + cur.len())` through tree `t`, leaving
    /// each row's leaf id in `cur`. `left_of(row, node)` decides the
    /// branch. Rows advance in blocks of [`BLOCK`] level-by-level — the
    /// block's ~32 independent root-to-leaf chains overlap their cache
    /// misses — with a periodic all-leaves early exit every
    /// [`LEVEL_BURST`] levels.
    fn descend(
        &self,
        tree: usize,
        row0: usize,
        cur: &mut [u32],
        mut left_of: impl FnMut(usize, &FlatNode) -> bool,
    ) {
        let root = self.roots[tree];
        let depth = self.depths[tree] as usize;
        cur.fill(root);
        if depth == 0 {
            return;
        }
        let nodes = self.nodes.as_slice();
        let n_rows = cur.len();
        let mut start = 0usize;
        while start < n_rows {
            let end = (start + BLOCK).min(n_rows);
            let chunk = &mut cur[start..end];
            let mut level = 0usize;
            while level < depth {
                let burst = LEVEL_BURST.min(depth - level);
                for _ in 0..burst {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let node = &nodes[*slot as usize];
                        *slot = if left_of(row0 + start + j, node) {
                            node.left
                        } else {
                            node.right
                        };
                    }
                }
                level += burst;
                if chunk.iter().all(|&n| nodes[n as usize].is_leaf(n)) {
                    break;
                }
            }
            start = end;
        }
    }

    /// [`FlatTrees::descend`] with the branch rule chosen per input form:
    /// raw `f64` compares for matrices, mixed `u8`-code / `f64` compares
    /// for binned datasets.
    fn descend_rows(&self, tree: usize, rows: &Rows<'_>, row0: usize, cur: &mut [u32]) {
        match *rows {
            Rows::Matrix(m) => self.descend(tree, row0, cur, |i, node| {
                goes_left(m.value(i, node.feature as usize), node.threshold)
            }),
            Rows::Indexed {
                data,
                binned: Some(b),
                ids,
            } => self.descend(tree, row0, cur, |i, node| {
                if node.bin != NO_BIN {
                    b.code(ids[i], node.feature as usize) <= node.bin
                } else {
                    goes_left(data.value(ids[i], node.feature as usize), node.threshold)
                }
            }),
            Rows::Indexed {
                data,
                binned: None,
                ids,
            } => self.descend(tree, row0, cur, |i, node| {
                goes_left(data.value(ids[i], node.feature as usize), node.threshold)
            }),
        }
    }

    /// Depth of the tree whose nodes occupy `[base, base + len)`.
    /// Children are always pushed after their parent, so one reverse
    /// sweep suffices.
    fn depth_of_range(&self, base: usize, len: usize) -> u32 {
        let mut depth = vec![0u32; len];
        for j in (0..len).rev() {
            let n = base + j;
            if self.nodes[n].is_leaf(n as u32) {
                continue;
            }
            let l = self.nodes[n].left as usize - base;
            let r = self.nodes[n].right as usize - base;
            debug_assert!(l > j && r > j, "children follow their parent");
            depth[j] = 1 + depth[l].max(depth[r]);
        }
        depth.first().copied().unwrap_or(0)
    }
}

/// The bin index `b` with `split_value(feature, b)` bit-equal to
/// `threshold`, when one exists. Only such thresholds satisfy
/// `value <= threshold ⇔ code <= b` for rows of `binned`.
fn bin_of(binned: Option<&BinnedDataset>, feature: usize, threshold: f64) -> u8 {
    let Some(b) = binned else { return NO_BIN };
    if feature >= b.n_features() {
        return NO_BIN;
    }
    let boundaries = b.n_bins(feature).saturating_sub(1).min(NO_BIN as usize);
    for bin in 0..boundaries {
        if b.split_value(feature, bin).to_bits() == threshold.to_bits() {
            return bin as u8;
        }
    }
    NO_BIN
}

/// A classification-tree ensemble (single tree or forest) in compiled
/// form: shared flat nodes plus a leaf table of classes and class
/// distributions.
#[derive(Debug, Clone)]
struct ClassEnsemble {
    flat: FlatTrees,
    n_classes: usize,
    n_features: usize,
    leaf_class: Vec<u32>,
    /// Dense `n_leaves × n_classes` leaf distributions.
    leaf_probs: Vec<f64>,
    /// Average leaf distributions and arg-max (forest soft voting);
    /// `false` reads the single tree's leaf directly.
    average: bool,
}

impl ClassEnsemble {
    fn lower_tree(&mut self, tree: &DecisionTree, binned: Option<&BinnedDataset>) {
        use crate::tree::TreeNode;
        let nodes = tree.nodes_raw();
        let base = self.flat.n_nodes();
        self.flat.roots.push(base as u32);
        for (j, node) in nodes.iter().enumerate() {
            match node {
                TreeNode::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => self.flat.nodes.push(FlatNode {
                    threshold: *threshold,
                    feature: *feature as u32,
                    left: (base + *left) as u32,
                    right: (base + *right) as u32,
                    payload: 0,
                    bin: bin_of(binned, *feature, *threshold),
                }),
                TreeNode::Leaf { class, probs } => {
                    let id = (base + j) as u32;
                    self.flat.nodes.push(FlatNode {
                        threshold: f64::INFINITY,
                        feature: 0,
                        left: id,
                        right: id,
                        payload: self.leaf_class.len() as u32,
                        bin: NO_BIN,
                    });
                    self.leaf_class.push(*class as u32);
                    debug_assert_eq!(probs.len(), self.n_classes);
                    self.leaf_probs.extend_from_slice(probs);
                }
            }
        }
        let depth = self.flat.depth_of_range(base, nodes.len());
        self.flat.depths.push(depth);
    }

    fn predict(&self, rows: &Rows<'_>, out: &mut Predictions) {
        let n = rows.len();
        let k = self.n_classes;
        out.reset(n, k);
        let mut cur = vec![0u32; n.min(TILE)];
        if self.average {
            // Soft voting, accumulated tree-by-tree per row in the exact
            // order of the interpreted `predict_proba_row`. Tiling rows
            // outermost means a tile's feature rows are fetched once and
            // stay cache-resident while every tree traverses them.
            let inv = 1.0 / self.flat.n_trees() as f64;
            let mut start = 0usize;
            while start < n {
                let end = (start + TILE).min(n);
                let chunk = &mut cur[..end - start];
                for t in 0..self.flat.n_trees() {
                    self.flat.descend_rows(t, rows, start, chunk);
                    for (j, &leaf) in chunk.iter().enumerate() {
                        let p = self.flat.nodes[leaf as usize].payload as usize;
                        let probs = &self.leaf_probs[p * k..(p + 1) * k];
                        let acc = out.scores_row_mut(start + j);
                        for (acc, &v) in acc.iter_mut().zip(probs) {
                            *acc += v;
                        }
                    }
                }
                for v in &mut out.scores[start * k..end * k] {
                    *v *= inv;
                }
                for i in start..end {
                    out.classes[i] = argmax_last(&out.scores[i * k..(i + 1) * k]);
                }
                start = end;
            }
        } else {
            let mut start = 0usize;
            while start < n {
                let end = (start + TILE).min(n);
                let chunk = &mut cur[..end - start];
                self.flat.descend_rows(0, rows, start, chunk);
                for (j, &leaf) in chunk.iter().enumerate() {
                    let p = self.flat.nodes[leaf as usize].payload as usize;
                    out.classes[start + j] = self.leaf_class[p] as usize;
                    out.scores_row_mut(start + j)
                        .copy_from_slice(&self.leaf_probs[p * k..(p + 1) * k]);
                }
                start = end;
            }
        }
    }
}

/// A compiled gradient-boosted ensemble: flat regression trees ordered
/// round-major then class, Newton leaf weights in a side table.
#[derive(Debug, Clone)]
struct GbdtEnsemble {
    flat: FlatTrees,
    n_classes: usize,
    n_features: usize,
    base_scores: Vec<f64>,
    learning_rate: f64,
    leaf_weight: Vec<f64>,
}

impl GbdtEnsemble {
    fn lower_tree(&mut self, tree: &RegressionTree, binned: Option<&BinnedDataset>) {
        use crate::boosting::RegressionNode;
        let nodes = tree.nodes_raw();
        let base = self.flat.n_nodes();
        self.flat.roots.push(base as u32);
        for (j, node) in nodes.iter().enumerate() {
            match node {
                RegressionNode::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => self.flat.nodes.push(FlatNode {
                    threshold: *threshold,
                    feature: *feature as u32,
                    left: (base + *left) as u32,
                    right: (base + *right) as u32,
                    payload: 0,
                    bin: bin_of(binned, *feature, *threshold),
                }),
                RegressionNode::Leaf { weight } => {
                    let id = (base + j) as u32;
                    self.flat.nodes.push(FlatNode {
                        threshold: f64::INFINITY,
                        feature: 0,
                        left: id,
                        right: id,
                        payload: self.leaf_weight.len() as u32,
                        bin: NO_BIN,
                    });
                    self.leaf_weight.push(*weight);
                }
            }
        }
        let depth = self.flat.depth_of_range(base, nodes.len());
        self.flat.depths.push(depth);
    }

    fn predict(&self, rows: &Rows<'_>, out: &mut Predictions) {
        let n = rows.len();
        let k = self.n_classes;
        out.reset(n, k);
        for i in 0..n {
            out.scores_row_mut(i).copy_from_slice(&self.base_scores);
        }
        let mut cur = vec![0u32; n.min(TILE)];
        let mut start = 0usize;
        while start < n {
            let end = (start + TILE).min(n);
            let chunk = &mut cur[..end - start];
            // Trees are stored round-major then class — the interpreted
            // `decision_row` accumulation order, so margins match
            // bit-exactly. Row tiles are outermost so a tile's features
            // stay cache-resident across all rounds.
            for t in 0..self.flat.n_trees() {
                self.flat.descend_rows(t, rows, start, chunk);
                let c = t % k;
                for (j, &leaf) in chunk.iter().enumerate() {
                    let w = self.leaf_weight[self.flat.nodes[leaf as usize].payload as usize];
                    out.scores[(start + j) * k + c] += self.learning_rate * w;
                }
            }
            // Arg-max over margins (the interpreted tie rule), then
            // softmax the stored scores in the interpreted operation
            // order.
            for i in start..end {
                let row = out.scores_row_mut(i);
                let class = argmax_last(row);
                softmax_in_place(row);
                out.classes[i] = class;
            }
            start = end;
        }
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Class(ClassEnsemble),
    Gbdt(GbdtEnsemble),
}

/// A fitted tree model lowered to flat SoA node arrays for batch
/// traversal. Build one with [`CompiledModel::from_tree`],
/// [`CompiledModel::from_forest`], [`CompiledModel::from_gbdt`] or
/// [`crate::ErasedModel::compile`]; predictions are bit-identical to the
/// interpreted per-row walkers.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    repr: Repr,
}

impl CompiledModel {
    /// Lowers a fitted decision tree; `None` when unfitted. `binned`
    /// (when given) lets nodes whose thresholds are bin boundaries
    /// traverse `u8` codes via
    /// [`CompiledModel::predict_dataset_into`].
    pub fn from_tree(tree: &DecisionTree, binned: Option<&BinnedDataset>) -> Option<CompiledModel> {
        if tree.nodes_raw().is_empty() {
            return None;
        }
        let mut e = ClassEnsemble {
            flat: FlatTrees::default(),
            n_classes: tree.n_classes_raw(),
            n_features: tree.n_features_raw(),
            leaf_class: Vec::new(),
            leaf_probs: Vec::new(),
            average: false,
        };
        e.lower_tree(tree, binned);
        Some(CompiledModel {
            repr: Repr::Class(e),
        })
    }

    /// Lowers a fitted random forest; `None` when unfitted.
    pub fn from_forest(
        forest: &RandomForest,
        binned: Option<&BinnedDataset>,
    ) -> Option<CompiledModel> {
        let trees = forest.trees_raw();
        if trees.is_empty() {
            return None;
        }
        let mut e = ClassEnsemble {
            flat: FlatTrees::default(),
            n_classes: forest.n_classes_raw(),
            n_features: forest.n_features_raw(),
            leaf_class: Vec::new(),
            leaf_probs: Vec::new(),
            average: true,
        };
        for tree in trees {
            e.lower_tree(tree, binned);
        }
        Some(CompiledModel {
            repr: Repr::Class(e),
        })
    }

    /// Lowers a fitted gradient-boosted ensemble; `None` when unfitted.
    pub fn from_gbdt(
        gbdt: &GradientBoosting,
        binned: Option<&BinnedDataset>,
    ) -> Option<CompiledModel> {
        if gbdt.n_classes_raw() == 0 {
            return None;
        }
        let n_features = gbdt
            .rounds_raw()
            .iter()
            .flatten()
            .map(|t| t.raw_importances().len())
            .next()
            .unwrap_or(0);
        let mut e = GbdtEnsemble {
            flat: FlatTrees::default(),
            n_classes: gbdt.n_classes_raw(),
            n_features,
            base_scores: gbdt.base_scores_raw().to_vec(),
            learning_rate: gbdt.config().learning_rate,
            leaf_weight: Vec::new(),
        };
        for round in gbdt.rounds_raw() {
            for tree in round {
                e.lower_tree(tree, binned);
            }
        }
        Some(CompiledModel {
            repr: Repr::Gbdt(e),
        })
    }

    /// Width of the feature space the model was trained on.
    pub fn n_features(&self) -> usize {
        match &self.repr {
            Repr::Class(e) => e.n_features,
            Repr::Gbdt(e) => e.n_features,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        match &self.repr {
            Repr::Class(e) => e.n_classes,
            Repr::Gbdt(e) => e.n_classes,
        }
    }

    /// Total trees across the ensemble.
    pub fn n_trees(&self) -> usize {
        match &self.repr {
            Repr::Class(e) => e.flat.n_trees(),
            Repr::Gbdt(e) => e.flat.n_trees(),
        }
    }

    /// Total flat nodes across the ensemble.
    pub fn n_nodes(&self) -> usize {
        match &self.repr {
            Repr::Class(e) => e.flat.n_nodes(),
            Repr::Gbdt(e) => e.flat.n_nodes(),
        }
    }

    fn check_width(&self, got: usize) -> Result<(), PredictError> {
        let expected = self.n_features();
        if got < expected {
            return Err(PredictError::WrongWidth { expected, got });
        }
        Ok(())
    }

    fn predict_rows(&self, rows: &Rows<'_>, out: &mut Predictions) -> Result<(), PredictError> {
        self.check_width(rows.width())?;
        match &self.repr {
            Repr::Class(e) => e.predict(rows, out),
            Repr::Gbdt(e) => e.predict(rows, out),
        }
        Ok(())
    }

    /// Batch-predicts dataset rows `ids`, comparing `u8` bin codes on
    /// every node whose threshold is a boundary of `binned`.
    ///
    /// `binned` must be built from (or share the edges of) `data` —
    /// the quantize-once contract of cross-validation and selection —
    /// and should match the binned matrix given at compile time.
    pub fn predict_dataset_into(
        &self,
        data: &Dataset,
        binned: Option<&BinnedDataset>,
        ids: &[usize],
        out: &mut Predictions,
    ) -> Result<(), PredictError> {
        if let Some(b) = binned {
            debug_assert_eq!(b.n_rows(), data.len(), "binned matrix must cover the data");
        }
        self.predict_rows(&Rows::Indexed { data, binned, ids }, out)
    }
}

impl BatchPredictor for CompiledModel {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        self.predict_rows(&Rows::Matrix(rows), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goes_left_matches_le_and_routes_nan_right() {
        for (v, t) in [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0), (-1.5, -1.5)] {
            assert_eq!(goes_left(v, t), v <= t, "{v} vs {t}");
        }
        assert!(!goes_left(f64::NAN, 1e300));
        assert!(goes_left(f64::NEG_INFINITY, -1e300));
        assert!(goes_left(1.0, f64::INFINITY));
        assert!(!goes_left(f64::NAN, f64::INFINITY));
    }

    #[test]
    fn argmax_last_resolves_ties_like_max_by() {
        for scores in [
            vec![0.2, 0.5, 0.3],
            vec![0.5, 0.5],
            vec![0.1, 0.4, 0.4, 0.1],
            vec![1.0],
        ] {
            let expect = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(c, _)| c)
                .unwrap();
            assert_eq!(argmax_last(&scores), expect, "{scores:?}");
        }
    }

    #[test]
    fn row_matrix_builds_and_indexes() {
        let mut m = RowMatrix::with_width(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.value(0, 1), 2.0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.n_cols(), 2);

        let m2 = RowMatrix::from_rows(&[vec![5.0], vec![6.0]]);
        assert_eq!((m2.n_rows(), m2.n_cols()), (2, 1));
        let m3 = RowMatrix::from_row(&[7.0, 8.0, 9.0]);
        assert_eq!((m3.n_rows(), m3.n_cols()), (1, 3));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut m = RowMatrix::with_width(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn predictions_reset_reuses_buffers() {
        let mut p = Predictions::new();
        p.reset(3, 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.scores(0), Some(&[0.0, 0.0][..]));
        p.scores_row_mut(2).copy_from_slice(&[0.25, 0.75]);
        p.classes_mut()[2] = 1;
        assert_eq!(p.class(2), 1);
        assert_eq!(p.scores(2), Some(&[0.25, 0.75][..]));
        p.reset(1, 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.n_classes(), 0);
        assert_eq!(p.scores(0), None);
    }

    #[test]
    fn predict_error_displays() {
        assert!(PredictError::NotFitted.to_string().contains("unfitted"));
        let e = PredictError::WrongWidth {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
    }
}
