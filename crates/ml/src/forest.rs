//! Random forest — the paper's best-performing classifier (§4.1) and the
//! source of its "information theoretical" feature importances (§4.2).
//!
//! Bagged CART trees with per-node feature subsampling (`⌈√d⌉` by
//! default), trained in parallel — one [`traj_runtime`] task per tree, so
//! work stealing evens out trees of unequal depth. Besides prediction
//! the forest exposes:
//!
//! * impurity-decrease **feature importances**, averaged over trees — the
//!   ranking the paper feeds to its incremental selection (Fig. 3a);
//! * the **out-of-bag score**, an internal generalisation estimate.

use crate::binned::{BinnedDataset, SplitAlgo};
use crate::dataset::Dataset;
use crate::tree::{Criterion, DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees. The paper's §4.3 runs use 50 estimators.
    pub n_estimators: usize,
    /// Impurity criterion of the member trees.
    pub criterion: Criterion,
    /// Maximum member-tree depth.
    pub max_depth: Option<usize>,
    /// Minimum samples per internal node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Candidate features per node; `None` uses `⌈√d⌉`.
    pub max_features: Option<usize>,
    /// Draw bootstrap samples per tree (standard bagging).
    pub bootstrap: bool,
    /// Master seed; per-tree seeds derive deterministically from it.
    pub seed: u64,
    /// Split-search algorithm. The dataset is quantized **once** here and
    /// shared by every member tree; [`SplitAlgo::Auto`] picks the
    /// histogram path above [`crate::binned::HIST_AUTO_CUTOFF_ROWS`]
    /// rows.
    #[serde(default)]
    pub split_algo: SplitAlgo,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_estimators: 50,
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            bootstrap: true,
            seed: 0,
            split_algo: SplitAlgo::Auto,
        }
    }
}

/// A bagged ensemble of CART trees with soft voting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
    oob_score: Option<f64>,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
            oob_score: None,
        }
    }

    /// Convenience constructor matching the paper's §4.3 setting:
    /// `n_estimators` trees, gini, `⌈√d⌉` features, bootstrap.
    pub fn with_estimators(n_estimators: usize, seed: u64) -> Self {
        RandomForest::new(ForestConfig {
            n_estimators,
            seed,
            ..ForestConfig::default()
        })
    }

    /// The forest's configuration.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Fits the forest, training one [`traj_runtime`] task per tree on
    /// the shared pool. Per-tree seeds derive from the master seed before
    /// any task runs, so the fitted forest is bit-identical for any
    /// thread count.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit a forest on zero samples");
        // Quantize once; every member tree trains against the same binned
        // matrix.
        let binned = self
            .config
            .split_algo
            .use_hist(data.len())
            .then(|| BinnedDataset::from_dataset(data));
        let rows: Vec<usize> = (0..data.len()).collect();
        self.fit_on(data, &rows, binned.as_ref());
    }

    /// Fits the forest on the samples at `rows`, optionally against a
    /// binned matrix built once from the full dataset — the shared
    /// quantize-once entry point of cross-validation and feature
    /// selection. Bit-identical to `fit(&data.subset(rows))` when `rows`
    /// holds distinct indices and `binned` matches `split_algo`'s
    /// resolution for `rows.len()` samples.
    ///
    /// # Panics
    /// Panics when `rows` is empty or `binned` does not cover `data`.
    pub fn fit_on(&mut self, data: &Dataset, rows: &[usize], binned: Option<&BinnedDataset>) {
        assert!(!rows.is_empty(), "cannot fit a forest on zero samples");
        if let Some(b) = binned {
            assert_eq!(
                b.n_rows(),
                data.len(),
                "binned matrix must cover the dataset"
            );
        }
        self.n_classes = data.n_classes;
        self.n_features = data.n_features();

        let m = rows.len();
        let max_features = self
            .config
            .max_features
            .unwrap_or_else(|| (self.n_features as f64).sqrt().ceil() as usize)
            .clamp(1, self.n_features.max(1));

        // Derive per-tree seeds up front so results are independent of
        // thread scheduling.
        let mut master = StdRng::seed_from_u64(self.config.seed);
        let tree_seeds: Vec<u64> = (0..self.config.n_estimators)
            .map(|_| master.gen())
            .collect();

        let weights = vec![1.0; data.len()];
        let config = self.config;
        // Member trees never re-bin: this layer owns quantization.
        let tree_config = |seed: u64| TreeConfig {
            criterion: config.criterion,
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            min_samples_leaf: config.min_samples_leaf,
            max_features: Some(max_features),
            seed: seed ^ 0x9e37_79b9_7f4a_7c15,
            split_algo: SplitAlgo::Exact,
        };
        let results: Vec<(DecisionTree, Vec<usize>)> =
            traj_runtime::parallel_map(&tree_seeds, |_, &seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                // Bootstrap positions into `rows` (not raw dataset ids),
                // so subset fits consume the RNG exactly like
                // `fit(&data.subset(rows))` would.
                let pos: Vec<usize> = if config.bootstrap {
                    (0..m).map(|_| rng.gen_range(0..m)).collect()
                } else {
                    (0..m).collect()
                };
                let indices: Vec<usize> = pos.iter().map(|&j| rows[j]).collect();
                let mut tree = DecisionTree::new(tree_config(seed));
                match binned {
                    Some(b) => tree.fit_binned_on(data, b, &indices, &weights),
                    None => tree.fit_weighted_on(data, &indices, &weights),
                }
                (tree, pos)
            });

        // Out-of-bag score: majority vote among trees whose bootstrap
        // missed the sample.
        if self.config.bootstrap {
            let mut votes = vec![vec![0usize; self.n_classes]; m];
            let mut in_bag = vec![false; m];
            for (tree, pos) in &results {
                in_bag.iter_mut().for_each(|b| *b = false);
                for &j in pos {
                    in_bag[j] = true;
                }
                for (j, bagged) in in_bag.iter().enumerate() {
                    if !bagged {
                        votes[j][tree.predict_row(data.row(rows[j]))] += 1;
                    }
                }
            }
            let mut correct = 0usize;
            let mut counted = 0usize;
            for (j, sample_votes) in votes.iter().enumerate() {
                let total: usize = sample_votes.iter().sum();
                if total == 0 {
                    continue;
                }
                counted += 1;
                let pred = sample_votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if pred == data.y[rows[j]] {
                    correct += 1;
                }
            }
            self.oob_score = (counted > 0).then(|| correct as f64 / counted as f64);
        } else {
            self.oob_score = None;
        }

        self.trees = results.into_iter().map(|(tree, _)| tree).collect();
    }

    /// Soft-vote class probabilities of one row (mean of member-tree leaf
    /// distributions).
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict on an unfitted forest");
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba_row(row)) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a *= inv);
        acc
    }

    /// Predicted class of one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let probs = self.predict_proba_row(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicted classes of a dataset — a thin wrapper over the compiled
    /// batch path ([`crate::compiled::BatchPredictor`]). Prefer it (or
    /// `predict_into` with a reused buffer) over per-row
    /// [`RandomForest::predict_row`] loops in hot paths.
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }

    /// Mean impurity-decrease feature importances over trees, normalised
    /// to sum to 1.
    pub fn feature_importances(&self) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "importances of an unfitted forest");
        let mut acc = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (a, &v) in acc.iter_mut().zip(tree.raw_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            acc.iter_mut().for_each(|a| *a /= total);
        }
        acc
    }

    /// Out-of-bag accuracy estimate, when bootstrap sampling was used and
    /// at least one sample was out of bag.
    pub fn oob_score(&self) -> Option<f64> {
        self.oob_score
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// `true` once the forest has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// The fitted member trees — the compiled lowering's view.
    pub(crate) fn trees_raw(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of classes seen at fit time.
    pub(crate) fn n_classes_raw(&self) -> usize {
        self.n_classes
    }

    /// Width of the feature space seen at fit time.
    pub(crate) fn n_features_raw(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two noisy Gaussian-ish blobs per class, plus noise features.
    fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..3usize {
            let center = class as f64 * 3.0;
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    center - rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0), // noise
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 3, vec![0; n], vec![])
    }

    #[test]
    fn forest_learns_blobs() {
        let data = blob_data(50, 1);
        let mut forest = RandomForest::with_estimators(25, 7);
        forest.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &forest.predict(&data));
        assert!(acc > 0.95, "training accuracy {acc}");
        assert_eq!(forest.n_trees(), 25);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let data = blob_data(30, 2);
        let mut f1 = RandomForest::with_estimators(10, 99);
        let mut f2 = RandomForest::with_estimators(10, 99);
        f1.fit(&data);
        f2.fit(&data);
        assert_eq!(f1.predict(&data), f2.predict(&data));
        assert_eq!(f1.feature_importances(), f2.feature_importances());
        assert_eq!(f1.oob_score(), f2.oob_score());
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let data = blob_data(30, 3);
        let mut f1 = RandomForest::with_estimators(5, 1);
        let mut f2 = RandomForest::with_estimators(5, 2);
        f1.fit(&data);
        f2.fit(&data);
        // Importances are continuous; identical values across seeds would
        // indicate the seed is ignored.
        assert_ne!(f1.feature_importances(), f2.feature_importances());
    }

    #[test]
    fn oob_score_is_reasonable() {
        let data = blob_data(60, 4);
        let mut forest = RandomForest::with_estimators(30, 5);
        forest.fit(&data);
        let oob = forest.oob_score().expect("bootstrap produces OOB samples");
        assert!(oob > 0.8, "oob {oob}");
        assert!(oob <= 1.0);
    }

    #[test]
    fn no_bootstrap_means_no_oob() {
        let data = blob_data(20, 5);
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 5,
            bootstrap: false,
            ..ForestConfig::default()
        });
        forest.fit(&data);
        assert!(forest.oob_score().is_none());
    }

    #[test]
    fn importances_favor_signal_features() {
        let data = blob_data(60, 6);
        let mut forest = RandomForest::with_estimators(30, 8);
        forest.fit(&data);
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 3);
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(
            imp[0] > imp[2] && imp[1] > imp[2],
            "noise ranked last: {imp:?}"
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = blob_data(20, 7);
        let mut forest = RandomForest::with_estimators(10, 3);
        forest.fit(&data);
        let p = forest.predict_proba_row(data.row(0));
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{p:?}");
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn single_tree_forest_works() {
        let data = blob_data(20, 8);
        let mut forest = RandomForest::with_estimators(1, 0);
        forest.fit(&data);
        assert_eq!(forest.n_trees(), 1);
        let _ = forest.predict(&data);
    }

    #[test]
    #[should_panic(expected = "unfitted forest")]
    fn predict_unfitted_panics() {
        let forest = RandomForest::with_estimators(5, 0);
        let _ = forest.predict_row(&[0.0]);
    }
}
