//! A uniform interface over every classifier, and the paper's roster.
//!
//! [`ClassifierKind`] enumerates the six classifiers of the paper's §4.1
//! comparison (XGBoost, SVM, decision tree, random forest, neural network,
//! AdaBoost) plus the extra kNN baseline; [`ClassifierKind::build`] is the
//! factory the cross-validation and feature-selection machinery uses.

use crate::binned::BinnedDataset;
use crate::boosting::{AdaBoost, AdaBoostConfig, GbdtConfig, GradientBoosting};
use crate::compiled::{
    per_row_classes, BatchPredictor, CompiledModel, PredictError, Predictions, RowMatrix,
};
use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use crate::knn::{Knn, KnnConfig};
use crate::linear::{LinearSvm, SvmConfig};
use crate::neural::{Mlp, MlpConfig};
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Object-safe classifier interface: fit on a dataset, predict dense class
/// indices.
///
/// Prediction is batch-first: every classifier is a
/// [`BatchPredictor`], and [`Classifier::predict`] is a thin wrapper
/// over it, so all seven models share one entry point. Tree ensembles
/// run the compiled flat-array traversal of [`crate::compiled`]; the
/// rest fall back to their per-row kernels behind the same interface.
/// Per-row [`Classifier::predict_row`] remains for single-row callers
/// but is deprecated in hot loops — it re-walks boxed node structs and
/// allocates per call.
pub trait Classifier: Send + BatchPredictor {
    /// Fits the model.
    fn fit(&mut self, data: &Dataset);

    /// Fits on the row subset `indices` of `data`. When `binned` is given
    /// it quantizes the **full** dataset; histogram-capable models index
    /// into it instead of re-quantizing per retrain (the quantize-once
    /// contract of CV and forward selection). The default materialises the
    /// subset and calls [`Classifier::fit`], ignoring `binned`.
    fn fit_subset(&mut self, data: &Dataset, indices: &[usize], binned: Option<&BinnedDataset>) {
        let _ = binned;
        self.fit(&data.subset(indices));
    }

    /// Whether fitting this model on `n_rows` training rows would use a
    /// binned matrix passed to [`Classifier::fit_subset`]. Retraining
    /// layers probe this to decide whether quantizing once up front pays.
    fn benefits_from_binning(&self, n_rows: usize) -> bool {
        let _ = n_rows;
        false
    }

    /// `true` once the model has been fitted. Unfitted models report
    /// [`PredictError::NotFitted`] from the batch API instead of
    /// panicking.
    fn is_fitted(&self) -> bool;

    /// Predicted class of one feature row.
    fn predict_row(&self, row: &[f64]) -> usize;

    /// Batch-predicts the dataset rows `rows` into `out`, reusing a
    /// binned view of `data` when the model can compare `u8` bin codes
    /// instead of `f64` values — the CV/selection inner-loop entry
    /// point. `binned` must be built from `data` (the quantize-once
    /// contract). The default gathers the rows and ignores `binned`;
    /// tree models override it with the compiled mixed bin/raw
    /// traversal.
    fn predict_rows_into(
        &self,
        data: &Dataset,
        binned: Option<&BinnedDataset>,
        rows: &[usize],
        out: &mut Predictions,
    ) -> Result<(), PredictError> {
        let _ = binned;
        self.predict_into(&RowMatrix::gather(data, rows), out)
    }

    /// Predicted classes of a dataset — a thin wrapper over
    /// [`BatchPredictor::predict_into`].
    ///
    /// # Panics
    /// Panics when the model is unfitted (use
    /// [`BatchPredictor::try_predict`] for the typed-error path).
    fn predict(&self, data: &Dataset) -> Vec<usize> {
        let mut out = Predictions::default();
        match self.predict_into(&RowMatrix::from_dataset(data), &mut out) {
            Ok(()) => out.into_classes(),
            Err(e) => panic!("{e}"),
        }
    }
}

impl BatchPredictor for RandomForest {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        CompiledModel::from_forest(self, None)
            .ok_or(PredictError::NotFitted)?
            .predict_into(rows, out)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        RandomForest::fit(self, data);
    }
    fn fit_subset(&mut self, data: &Dataset, indices: &[usize], binned: Option<&BinnedDataset>) {
        // No materialisation at all: trees bootstrap positions of
        // `indices` and (optionally) sweep histograms of the shared bins.
        self.fit_on(data, indices, binned);
    }
    fn benefits_from_binning(&self, n_rows: usize) -> bool {
        self.config().split_algo.use_hist(n_rows)
    }
    fn is_fitted(&self) -> bool {
        RandomForest::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        RandomForest::predict_row(self, row)
    }
    fn predict_rows_into(
        &self,
        data: &Dataset,
        binned: Option<&BinnedDataset>,
        rows: &[usize],
        out: &mut Predictions,
    ) -> Result<(), PredictError> {
        CompiledModel::from_forest(self, binned)
            .ok_or(PredictError::NotFitted)?
            .predict_dataset_into(data, binned, rows, out)
    }
}

impl BatchPredictor for GradientBoosting {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        CompiledModel::from_gbdt(self, None)
            .ok_or(PredictError::NotFitted)?
            .predict_into(rows, out)
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, data: &Dataset) {
        GradientBoosting::fit(self, data);
    }
    fn fit_subset(&mut self, data: &Dataset, indices: &[usize], binned: Option<&BinnedDataset>) {
        let sub = data.subset(indices);
        match binned {
            // Gather the pre-computed bin codes instead of re-running the
            // per-feature quantile search on every retrain.
            Some(b) => self.fit_prebinned(&sub, Some(&b.subset(indices))),
            None => GradientBoosting::fit(self, &sub),
        }
    }
    fn benefits_from_binning(&self, n_rows: usize) -> bool {
        self.config().split_algo.use_hist(n_rows)
    }
    fn is_fitted(&self) -> bool {
        GradientBoosting::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        GradientBoosting::predict_row(self, row)
    }
    fn predict_rows_into(
        &self,
        data: &Dataset,
        binned: Option<&BinnedDataset>,
        rows: &[usize],
        out: &mut Predictions,
    ) -> Result<(), PredictError> {
        CompiledModel::from_gbdt(self, binned)
            .ok_or(PredictError::NotFitted)?
            .predict_dataset_into(data, binned, rows, out)
    }
}

impl BatchPredictor for DecisionTree {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        CompiledModel::from_tree(self, None)
            .ok_or(PredictError::NotFitted)?
            .predict_into(rows, out)
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        DecisionTree::fit(self, data);
    }
    fn fit_subset(&mut self, data: &Dataset, indices: &[usize], binned: Option<&BinnedDataset>) {
        match binned {
            Some(b) => {
                let weights = vec![1.0; data.len()];
                self.fit_binned_on(data, b, indices, &weights);
            }
            None => DecisionTree::fit(self, &data.subset(indices)),
        }
    }
    fn benefits_from_binning(&self, n_rows: usize) -> bool {
        self.config().split_algo.use_hist(n_rows)
    }
    fn is_fitted(&self) -> bool {
        DecisionTree::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        DecisionTree::predict_row(self, row)
    }
    fn predict_rows_into(
        &self,
        data: &Dataset,
        binned: Option<&BinnedDataset>,
        rows: &[usize],
        out: &mut Predictions,
    ) -> Result<(), PredictError> {
        CompiledModel::from_tree(self, binned)
            .ok_or(PredictError::NotFitted)?
            .predict_dataset_into(data, binned, rows, out)
    }
}

impl BatchPredictor for AdaBoost {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        per_row_classes(AdaBoost::is_fitted(self), rows, out, |row| {
            AdaBoost::predict_row(self, row)
        })
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, data: &Dataset) {
        AdaBoost::fit(self, data);
    }
    fn fit_subset(&mut self, data: &Dataset, indices: &[usize], binned: Option<&BinnedDataset>) {
        let sub = data.subset(indices);
        match binned {
            Some(b) => self.fit_prebinned(&sub, Some(&b.subset(indices))),
            None => AdaBoost::fit(self, &sub),
        }
    }
    fn benefits_from_binning(&self, n_rows: usize) -> bool {
        self.config().split_algo.use_hist(n_rows)
    }
    fn is_fitted(&self) -> bool {
        AdaBoost::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        AdaBoost::predict_row(self, row)
    }
}

impl BatchPredictor for LinearSvm {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        per_row_classes(LinearSvm::is_fitted(self), rows, out, |row| {
            LinearSvm::predict_row(self, row)
        })
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) {
        LinearSvm::fit(self, data);
    }
    fn is_fitted(&self) -> bool {
        LinearSvm::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        LinearSvm::predict_row(self, row)
    }
}

impl BatchPredictor for Mlp {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        per_row_classes(Mlp::is_fitted(self), rows, out, |row| {
            Mlp::predict_row(self, row)
        })
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset) {
        Mlp::fit(self, data);
    }
    fn is_fitted(&self) -> bool {
        Mlp::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        Mlp::predict_row(self, row)
    }
}

impl BatchPredictor for Knn {
    fn predict_into(&self, rows: &RowMatrix, out: &mut Predictions) -> Result<(), PredictError> {
        per_row_classes(Knn::is_fitted(self), rows, out, |row| {
            Knn::predict_row(self, row)
        })
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Dataset) {
        Knn::fit(self, data);
    }
    fn is_fitted(&self) -> bool {
        Knn::is_fitted(self)
    }
    fn predict_row(&self, row: &[f64]) -> usize {
        Knn::predict_row(self, row)
    }
}

/// The classifier roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Gradient-boosted trees (the paper's "XGBoost").
    XgBoost,
    /// Linear SVM (Pegasos, one-vs-rest).
    Svm,
    /// Single CART decision tree.
    DecisionTree,
    /// Random forest.
    RandomForest,
    /// Multilayer perceptron.
    NeuralNetwork,
    /// AdaBoost·SAMME over decision stumps.
    AdaBoost,
    /// k-nearest-neighbours (extra baseline, not in the paper's six).
    Knn,
}

impl ClassifierKind {
    /// The six classifiers of the paper's §4.1 comparison, in the order
    /// Figure 2 discusses them.
    pub const PAPER_SIX: [ClassifierKind; 6] = [
        ClassifierKind::XgBoost,
        ClassifierKind::Svm,
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::NeuralNetwork,
        ClassifierKind::AdaBoost,
    ];

    /// Builds an unfitted classifier with reproduction-default
    /// hyper-parameters and the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::XgBoost => Box::new(GradientBoosting::new(GbdtConfig {
                n_rounds: 20,
                max_depth: 4,
                seed,
                ..GbdtConfig::default()
            })),
            ClassifierKind::Svm => Box::new(LinearSvm::new(SvmConfig {
                seed,
                ..SvmConfig::default()
            })),
            ClassifierKind::DecisionTree => Box::new(DecisionTree::new(TreeConfig {
                seed,
                ..TreeConfig::default()
            })),
            ClassifierKind::RandomForest => Box::new(RandomForest::new(ForestConfig {
                n_estimators: 50,
                seed,
                ..ForestConfig::default()
            })),
            ClassifierKind::NeuralNetwork => Box::new(Mlp::new(MlpConfig {
                seed,
                ..MlpConfig::default()
            })),
            ClassifierKind::AdaBoost => Box::new(AdaBoost::new(AdaBoostConfig::default())),
            ClassifierKind::Knn => Box::new(Knn::new(KnnConfig::default())),
        }
    }

    /// Display name matching the paper's terminology.
    pub const fn name(self) -> &'static str {
        match self {
            ClassifierKind::XgBoost => "XGBoost",
            ClassifierKind::Svm => "SVM",
            ClassifierKind::DecisionTree => "Decision Tree",
            ClassifierKind::RandomForest => "Random Forest",
            ClassifierKind::NeuralNetwork => "Neural Network",
            ClassifierKind::AdaBoost => "AdaBoost",
            ClassifierKind::Knn => "kNN",
        }
    }
}

impl fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..2usize {
            let center = class as f64 * 4.0;
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    center + rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 2, vec![0; n], vec![])
    }

    #[test]
    fn every_kind_builds_fits_and_predicts() {
        let data = blob_data(25, 51);
        for kind in ClassifierKind::PAPER_SIX
            .into_iter()
            .chain([ClassifierKind::Knn])
        {
            let mut model = kind.build(7);
            model.fit(&data);
            let pred = model.predict(&data);
            assert_eq!(pred.len(), data.len(), "{kind}");
            let acc = crate::metrics::accuracy(&data.y, &pred);
            assert!(acc > 0.8, "{kind} training accuracy {acc}");
        }
    }

    #[test]
    fn paper_six_has_exactly_the_papers_roster() {
        assert_eq!(ClassifierKind::PAPER_SIX.len(), 6);
        assert!(!ClassifierKind::PAPER_SIX.contains(&ClassifierKind::Knn));
        let names: Vec<&str> = ClassifierKind::PAPER_SIX.iter().map(|k| k.name()).collect();
        assert!(names.contains(&"XGBoost"));
        assert!(names.contains(&"Random Forest"));
        assert!(names.contains(&"SVM"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ClassifierKind::RandomForest.to_string(), "Random Forest");
        assert_eq!(format!("{}", ClassifierKind::Svm), "SVM");
    }
}
