//! Hyper-parameter search.
//!
//! The paper fixes its hyper-parameters (50 estimators, scikit-learn
//! defaults) and the ablation benches sweep them one axis at a time; this
//! module provides the general tool: exhaustive grid search over any
//! classifier family under any cross-validation scheme, scored by mean
//! accuracy. The forest-specific [`forest_grid`] covers the two axes
//! that matter for the paper's model (tree count, depth).
//!
//! Grid cells are evaluated **in parallel** on the shared
//! [`traj_runtime`] pool, one task per grid point; each cell's
//! cross-validation then fans out one task per fold, and stealing keeps
//! every core busy across both levels.

use crate::classifier::Classifier;
use crate::cv::{cross_validate, mean_accuracy, mean_f1_weighted, SplitError, Splitter};
use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use serde::{Deserialize, Serialize};

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint<P> {
    /// The parameter combination.
    pub params: P,
    /// Mean cross-validated accuracy.
    pub accuracy: f64,
    /// Mean cross-validated weighted F1.
    pub f1_weighted: f64,
}

/// Exhaustive grid search: evaluates `build(params)` for every entry of
/// `grid` under `splitter`, returning all cells sorted by descending
/// accuracy (ties keep grid order, so earlier = simpler wins on ties
/// when the grid is ordered simple → complex). Cells are scored in
/// parallel; the returned ordering depends only on the scores, never on
/// scheduling.
///
/// # Panics
/// Panics on an empty grid.
pub fn grid_search<P, B, S>(
    data: &Dataset,
    grid: &[P],
    build: &B,
    splitter: &S,
    seed: u64,
) -> Result<Vec<GridPoint<P>>, SplitError>
where
    P: Clone + Send + Sync,
    B: Fn(&P, u64) -> Box<dyn Classifier> + Sync + ?Sized,
    S: Splitter + Sync + ?Sized,
{
    assert!(!grid.is_empty(), "grid search over an empty grid");
    let scored: Vec<Result<GridPoint<P>, SplitError>> =
        traj_runtime::parallel_map(grid, |_, params| {
            let factory = |s: u64| build(params, s);
            let scores = cross_validate(&factory, data, splitter, seed)?;
            Ok(GridPoint {
                params: params.clone(),
                accuracy: mean_accuracy(&scores),
                f1_weighted: mean_f1_weighted(&scores),
            })
        });
    let mut cells: Vec<(usize, GridPoint<P>)> = scored
        .into_iter()
        .enumerate()
        .map(|(i, cell)| cell.map(|c| (i, c)))
        .collect::<Result<_, _>>()?;
    cells.sort_by(|a, b| {
        b.1.accuracy
            .partial_cmp(&a.1.accuracy)
            .expect("finite accuracies")
            .then(a.0.cmp(&b.0))
    });
    Ok(cells.into_iter().map(|(_, c)| c).collect())
}

/// Random-forest parameter combination for [`forest_grid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Maximum depth (`None` = unlimited).
    pub max_depth: Option<usize>,
}

/// Grid search over a random forest's tree count × depth.
pub fn forest_grid<S>(
    data: &Dataset,
    n_estimators: &[usize],
    max_depths: &[Option<usize>],
    splitter: &S,
    seed: u64,
) -> Result<Vec<GridPoint<ForestParams>>, SplitError>
where
    S: Splitter + Sync + ?Sized,
{
    let grid: Vec<ForestParams> = n_estimators
        .iter()
        .flat_map(|&n| {
            max_depths.iter().map(move |&d| ForestParams {
                n_estimators: n,
                max_depth: d,
            })
        })
        .collect();
    let build = |p: &ForestParams, s: u64| -> Box<dyn Classifier> {
        Box::new(RandomForest::new(ForestConfig {
            n_estimators: p.n_estimators,
            max_depth: p.max_depth,
            seed: s,
            ..ForestConfig::default()
        }))
    };
    grid_search(data, &grid, &build, splitter, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use crate::cv::KFold;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..2usize {
            for _ in 0..60 {
                rows.push(vec![
                    class as f64 * 3.0 + rng.gen_range(-1.5..1.5),
                    rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 2, vec![0; n], vec![])
    }

    #[test]
    fn forest_grid_covers_the_product_and_sorts() {
        let data = blob_data(1);
        let cells = forest_grid(&data, &[2, 8], &[Some(2), None], &KFold::new(3, 1), 0).unwrap();
        assert_eq!(cells.len(), 4);
        assert!(cells.windows(2).all(|w| w[0].accuracy >= w[1].accuracy));
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.accuracy));
            assert!((0.0..=1.0).contains(&c.f1_weighted));
        }
        // The winner should be competitive: more trees rarely hurt.
        assert!(cells[0].accuracy >= cells.last().unwrap().accuracy);
    }

    #[test]
    fn generic_grid_search_works_over_arbitrary_params() {
        let data = blob_data(2);
        // Grid over kNN's k.
        let grid = vec![1usize, 5, 25];
        let build = |&k: &usize, _s: u64| -> Box<dyn Classifier> {
            Box::new(crate::knn::Knn::new(crate::knn::KnnConfig { k }))
        };
        let cells = grid_search(&data, &grid, &build, &KFold::new(3, 2), 0).unwrap();
        assert_eq!(cells.len(), 3);
        assert!(cells[0].accuracy >= cells[2].accuracy);
    }

    #[test]
    fn grid_search_is_deterministic() {
        let data = blob_data(3);
        let grid = vec![ForestParams {
            n_estimators: 3,
            max_depth: Some(3),
        }];
        let build = |p: &ForestParams, s: u64| -> Box<dyn Classifier> {
            Box::new(RandomForest::new(ForestConfig {
                n_estimators: p.n_estimators,
                max_depth: p.max_depth,
                seed: s,
                ..ForestConfig::default()
            }))
        };
        let a = grid_search(&data, &grid, &build, &KFold::new(3, 1), 5).unwrap();
        let b = grid_search(&data, &grid, &build, &KFold::new(3, 1), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn grid_search_surfaces_split_errors() {
        let data = blob_data(4);
        let grid = vec![1usize];
        let build = |_: &usize, s: u64| ClassifierKind::DecisionTree.build(s);
        let err = grid_search(&data, &grid, &build, &KFold::new(1, 0), 0)
            .expect_err("single fold must be rejected");
        assert_eq!(
            err,
            crate::cv::SplitError::TooFewFolds {
                n_splits: 1,
                minimum: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let data = blob_data(4);
        let build = |_: &usize, s: u64| ClassifierKind::DecisionTree.build(s);
        let _ = grid_search(&data, &[], &build, &KFold::new(2, 0), 0);
    }
}
