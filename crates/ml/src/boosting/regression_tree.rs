//! Regression trees on gradient/hessian targets — the base learner of the
//! second-order gradient boosting in [`crate::boosting::gbdt`].
//!
//! Each leaf outputs the Newton step `w* = −G / (H + λ)`; each split is
//! scored with the XGBoost gain
//! `½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionTreeConfig {
    /// Maximum depth (XGBoost's default is 6).
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child (XGBoost's `min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for RegressionTreeConfig {
    fn default() -> Self {
        RegressionTreeConfig {
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RNode {
    Internal {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        weight: f64,
    },
}

/// A depth-limited regression tree producing Newton leaf weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    config: RegressionTreeConfig,
    nodes: Vec<RNode>,
    /// Total split gain accumulated per feature during fitting.
    importances: Vec<f64>,
}

impl RegressionTree {
    /// Fits a tree to per-sample gradients `g` and hessians `h` over the
    /// feature matrix of `data` (labels in `data.y` are ignored).
    pub fn fit(data: &Dataset, g: &[f64], h: &[f64], config: RegressionTreeConfig) -> Self {
        assert_eq!(g.len(), data.len(), "one gradient per sample");
        assert_eq!(h.len(), data.len(), "one hessian per sample");
        assert!(!data.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = RegressionTree {
            config,
            nodes: Vec::new(),
            importances: vec![0.0; data.n_features()],
        };
        let mut indices: Vec<usize> = (0..data.len()).collect();
        tree.build(data, &mut indices, g, h, 0);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        g: &[f64],
        h: &[f64],
        depth: usize,
    ) -> usize {
        let (gsum, hsum) = sums(indices, g, h);

        if depth < self.config.max_depth && indices.len() >= 2 {
            if let Some((feature, threshold, n_left, gain)) =
                self.best_split(data, indices, g, h, gsum, hsum)
            {
                self.importances[feature] += gain;
                let mut lt = 0usize;
                for i in 0..indices.len() {
                    if data.value(indices[i], feature) <= threshold {
                        indices.swap(lt, i);
                        lt += 1;
                    }
                }
                debug_assert_eq!(lt, n_left);
                let node_id = self.nodes.len();
                self.nodes.push(RNode::Internal {
                    feature,
                    threshold,
                    left: 0,
                    right: 0,
                });
                let (left_ix, right_ix) = indices.split_at_mut(lt);
                let left = self.build(data, left_ix, g, h, depth + 1);
                let right = self.build(data, right_ix, g, h, depth + 1);
                if let RNode::Internal {
                    left: l, right: r, ..
                } = &mut self.nodes[node_id]
                {
                    *l = left;
                    *r = right;
                }
                return node_id;
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(RNode::Leaf {
            weight: -gsum / (hsum + self.config.lambda),
        });
        node_id
    }

    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        g: &[f64],
        h: &[f64],
        gsum: f64,
        hsum: f64,
    ) -> Option<(usize, f64, usize, f64)> {
        let lambda = self.config.lambda;
        let parent_score = gsum * gsum / (hsum + lambda);
        let mut best_gain = self.config.gamma.max(1e-12);
        let mut best: Option<(usize, f64, usize, f64)> = None;

        let mut triples: Vec<(f64, f64, f64)> = Vec::with_capacity(indices.len());
        for feature in 0..data.n_features() {
            triples.clear();
            triples.extend(
                indices
                    .iter()
                    .map(|&i| (data.value(i, feature), g[i], h[i])),
            );
            triples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite feature values"));

            let mut gl = 0.0;
            let mut hl = 0.0;
            for pos in 1..triples.len() {
                gl += triples[pos - 1].1;
                hl += triples[pos - 1].2;
                let (v_prev, v_here) = (triples[pos - 1].0, triples[pos].0);
                if v_here <= v_prev {
                    continue;
                }
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < self.config.min_child_weight || hr < self.config.min_child_weight {
                    continue;
                }
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score);
                if gain > best_gain {
                    best_gain = gain;
                    let mut threshold = 0.5 * (v_prev + v_here);
                    if threshold <= v_prev {
                        threshold = v_prev;
                    }
                    best = Some((feature, threshold, pos, gain));
                }
            }
        }
        best
    }

    /// The additive score this tree contributes for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RNode::Leaf { weight } => return *weight,
                RNode::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Unnormalised per-feature split-gain totals of this tree.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }
}

fn sums(indices: &[usize], g: &[f64], h: &[f64]) -> (f64, f64) {
    let mut gs = 0.0;
    let mut hs = 0.0;
    for &i in indices {
        gs += g[i];
        hs += h[i];
    }
    (gs, hs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squared_error_fit(xs: &[f64], ys: &[f64], config: RegressionTreeConfig) -> RegressionTree {
        // For squared error ½(pred−y)² at pred=0: g = −y, h = 1.
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let data = Dataset::from_rows(&rows, vec![0; xs.len()], 1, vec![0; xs.len()], vec![]);
        let g: Vec<f64> = ys.iter().map(|&y| -y).collect();
        let h = vec![1.0; ys.len()];
        RegressionTree::fit(&data, &g, &h, config)
    }

    #[test]
    fn fits_a_step_function() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 10.0 { -1.0 } else { 1.0 })
            .collect();
        let tree = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..RegressionTreeConfig::default()
            },
        );
        assert!((tree.predict_row(&[3.0]) + 1.0).abs() < 1e-9);
        assert!((tree.predict_row(&[15.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_shrinks_leaf_weights() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 2.0];
        let free = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        let ridge = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 2.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        assert!((free.predict_row(&[0.0]) - 2.0).abs() < 1e-9);
        // Constant target → single leaf: weight = Σy/(n+λ) = 4/(2+2) = 1.
        assert!((ridge.predict_row(&[0.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // Tiny signal — splitting gains little.
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 5.0 { 0.0 } else { 0.01 })
            .collect();
        let eager = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                gamma: 0.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        let pruned = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                gamma: 10.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        assert!(eager.n_nodes() > 1);
        assert_eq!(pruned.n_nodes(), 1, "gain below gamma → single leaf");
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.to_vec();
        let tree = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                max_depth: 0,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(tree.n_nodes(), 1);
        // Leaf = mean of targets = 4.5.
        assert!((tree.predict_row(&[0.0]) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn min_child_weight_blocks_unbalanced_splits() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 0.0, 10.0];
        // Each sample has h=1; min_child_weight=2 forbids a 1-sample leaf
        // isolating the outlier at x=3 but allows the 2/2 split.
        let tree = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                min_child_weight: 2.0,
                max_depth: 1,
                ..Default::default()
            },
        );
        if tree.n_nodes() > 1 {
            // The only legal split is between x=1 and x=2.
            assert!((tree.predict_row(&[0.0]) - 0.0).abs() < 1e-9);
            assert!((tree.predict_row(&[3.0]) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "one gradient per sample")]
    fn mismatched_gradients_panic() {
        let data = Dataset::from_rows(&[vec![1.0]], vec![0], 1, vec![0], vec![]);
        let _ = RegressionTree::fit(&data, &[], &[1.0], RegressionTreeConfig::default());
    }
}
