//! Regression trees on gradient/hessian targets — the base learner of the
//! second-order gradient boosting in [`crate::boosting::gbdt`].
//!
//! Each leaf outputs the Newton step `w* = −G / (H + λ)`; each split is
//! scored with the XGBoost gain
//! `½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`.

use crate::binned::BinnedDataset;
use crate::dataset::Dataset;
use crate::tree::{HIST_NODE_EXACT_CUTOFF, MAX_SUB_DEPTH};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionTreeConfig {
    /// Maximum depth (XGBoost's default is 6).
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child (XGBoost's `min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for RegressionTreeConfig {
    fn default() -> Self {
        RegressionTreeConfig {
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// One arena node of a regression tree. Exposed crate-wide so
/// [`crate::compiled`] can lower fitted trees into flat SoA arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum RNode {
    /// A split: `row[feature] <= threshold` routes left.
    Internal {
        feature: usize,
        threshold: f64,
        /// Children always follow their parent in the arena.
        left: usize,
        right: usize,
    },
    /// A terminal node emitting a Newton leaf weight.
    Leaf { weight: f64 },
}

/// A depth-limited regression tree producing Newton leaf weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    config: RegressionTreeConfig,
    nodes: Vec<RNode>,
    /// Total split gain accumulated per feature during fitting.
    importances: Vec<f64>,
}

impl RegressionTree {
    /// Fits a tree to per-sample gradients `g` and hessians `h` over the
    /// feature matrix of `data` (labels in `data.y` are ignored).
    pub fn fit(data: &Dataset, g: &[f64], h: &[f64], config: RegressionTreeConfig) -> Self {
        assert_eq!(g.len(), data.len(), "one gradient per sample");
        assert_eq!(h.len(), data.len(), "one hessian per sample");
        assert!(!data.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = RegressionTree {
            config,
            nodes: Vec::new(),
            importances: vec![0.0; data.n_features()],
        };
        let mut indices: Vec<usize> = (0..data.len()).collect();
        tree.build(data, &mut indices, g, h, 0);
        tree
    }

    /// Fits with the histogram split search against a pre-built binned
    /// matrix covering `data` — the quantize-once path of gradient
    /// boosting, where every round retrains over the same feature matrix.
    ///
    /// Same panics as [`RegressionTree::fit`], plus a binned/raw shape
    /// mismatch.
    pub fn fit_binned(
        data: &Dataset,
        binned: &BinnedDataset,
        g: &[f64],
        h: &[f64],
        config: RegressionTreeConfig,
    ) -> Self {
        assert_eq!(g.len(), data.len(), "one gradient per sample");
        assert_eq!(h.len(), data.len(), "one hessian per sample");
        assert!(!data.is_empty(), "cannot fit a tree on zero samples");
        assert_eq!(
            binned.n_rows(),
            data.len(),
            "binned matrix must cover the dataset"
        );
        assert_eq!(
            binned.n_features(),
            data.n_features(),
            "binned matrix must cover every feature"
        );
        let mut tree = RegressionTree {
            config,
            nodes: Vec::new(),
            importances: vec![0.0; data.n_features()],
        };
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let mut pool: Vec<GradHist> = Vec::new();
        tree.build_binned(data, binned, &mut indices, g, h, 0, &mut pool, None);
        tree
    }

    /// The histogram-mode twin of [`RegressionTree::build`]: same stop
    /// conditions and recursion order, split search over per-bin
    /// gradient/hessian sums, histogram subtraction for the larger child,
    /// and the sort-based fallback below [`HIST_NODE_EXACT_CUTOFF`]
    /// samples.
    #[allow(clippy::too_many_arguments)]
    fn build_binned(
        &mut self,
        data: &Dataset,
        binned: &BinnedDataset,
        indices: &mut [usize],
        g: &[f64],
        h: &[f64],
        depth: usize,
        pool: &mut Vec<GradHist>,
        inherited: Option<GradHist>,
    ) -> usize {
        let mut inherited = inherited;
        let (gsum, hsum) = sums(indices, g, h);

        if depth < self.config.max_depth && indices.len() >= 2 {
            if indices.len() < HIST_NODE_EXACT_CUTOFF {
                if let Some(hist) = inherited.take() {
                    pool.push(hist);
                }
                if let Some((feature, threshold, n_left, gain)) =
                    self.best_split(data, indices, g, h, gsum, hsum)
                {
                    self.importances[feature] += gain;
                    let mut lt = 0usize;
                    for i in 0..indices.len() {
                        if data.value(indices[i], feature) <= threshold {
                            indices.swap(lt, i);
                            lt += 1;
                        }
                    }
                    debug_assert_eq!(lt, n_left);
                    return self.finish_split_binned(
                        data, binned, indices, lt, feature, threshold, g, h, depth, pool, None,
                        None,
                    );
                }
            } else {
                let mut hist = match inherited.take() {
                    Some(hist) => hist,
                    None => {
                        let mut hist = GradHist::take_zeroed(pool, binned.total_bins());
                        hist.accumulate(binned, indices, g, h);
                        hist
                    }
                };
                if let Some((feature, threshold, n_left, gain, bin)) =
                    self.best_split_binned(&hist, binned, gsum, hsum, indices.len())
                {
                    self.importances[feature] += gain;
                    let col = binned.column(feature);
                    let mut lt = 0usize;
                    for i in 0..indices.len() {
                        if (col[indices[i]] as usize) <= bin {
                            indices.swap(lt, i);
                            lt += 1;
                        }
                    }
                    debug_assert_eq!(lt, n_left);
                    let n_right = indices.len() - lt;
                    let worth_it =
                        depth < MAX_SUB_DEPTH && lt.max(n_right) >= HIST_NODE_EXACT_CUTOFF;
                    let (left_hist, right_hist) = if worth_it {
                        let mut small = GradHist::take_zeroed(pool, binned.total_bins());
                        let small_ix = if lt <= n_right {
                            &indices[..lt]
                        } else {
                            &indices[lt..]
                        };
                        small.accumulate(binned, small_ix, g, h);
                        hist.subtract(&small);
                        if lt <= n_right {
                            (Some(small), Some(hist))
                        } else {
                            (Some(hist), Some(small))
                        }
                    } else {
                        pool.push(hist);
                        (None, None)
                    };
                    return self.finish_split_binned(
                        data, binned, indices, lt, feature, threshold, g, h, depth, pool,
                        left_hist, right_hist,
                    );
                }
                pool.push(hist);
            }
        }
        if let Some(hist) = inherited.take() {
            pool.push(hist);
        }
        let node_id = self.nodes.len();
        self.nodes.push(RNode::Leaf {
            weight: -gsum / (hsum + self.config.lambda),
        });
        node_id
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_split_binned(
        &mut self,
        data: &Dataset,
        binned: &BinnedDataset,
        indices: &mut [usize],
        lt: usize,
        feature: usize,
        threshold: f64,
        g: &[f64],
        h: &[f64],
        depth: usize,
        pool: &mut Vec<GradHist>,
        left_hist: Option<GradHist>,
        right_hist: Option<GradHist>,
    ) -> usize {
        let node_id = self.nodes.len();
        self.nodes.push(RNode::Internal {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let (left_ix, right_ix) = indices.split_at_mut(lt);
        let left = self.build_binned(data, binned, left_ix, g, h, depth + 1, pool, left_hist);
        let right = self.build_binned(data, binned, right_ix, g, h, depth + 1, pool, right_hist);
        if let RNode::Internal {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Sweeps per-bin gradient/hessian sums for the best boundary; returns
    /// `(feature, threshold, n_left, gain, bin)`. Candidate boundaries sit
    /// after non-empty bins only, exactly like the empty-bin rule of the
    /// classification sweep.
    fn best_split_binned(
        &self,
        hist: &GradHist,
        binned: &BinnedDataset,
        gsum: f64,
        hsum: f64,
        n_node: usize,
    ) -> Option<(usize, f64, usize, f64, usize)> {
        let lambda = self.config.lambda;
        let parent_score = gsum * gsum / (hsum + lambda);
        let floor = self.config.gamma.max(1e-12);
        let mut best: Option<(usize, f64, usize, f64, usize)> = None;

        for feature in 0..binned.n_features() {
            let nb = binned.n_bins(feature);
            if nb < 2 {
                continue;
            }
            let off = binned.bin_offset(feature);
            let mut gl = 0.0;
            let mut hl = 0.0;
            let mut cl = 0usize;
            for b in 0..nb - 1 {
                let c = hist.cnt[off + b] as usize;
                if c == 0 {
                    continue;
                }
                gl += hist.g[off + b];
                hl += hist.h[off + b];
                cl += c;
                if cl == n_node {
                    break;
                }
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < self.config.min_child_weight || hr < self.config.min_child_weight {
                    continue;
                }
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score);
                if gain <= floor {
                    continue;
                }
                let threshold = binned.split_value(feature, b);
                let accept = match best {
                    None => true,
                    Some((bf, bt, _, bg, _)) => {
                        gain > bg || (gain == bg && (feature, threshold) < (bf, bt))
                    }
                };
                if accept {
                    best = Some((feature, threshold, cl, gain, b));
                }
            }
        }
        best
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        g: &[f64],
        h: &[f64],
        depth: usize,
    ) -> usize {
        let (gsum, hsum) = sums(indices, g, h);

        if depth < self.config.max_depth && indices.len() >= 2 {
            if let Some((feature, threshold, n_left, gain)) =
                self.best_split(data, indices, g, h, gsum, hsum)
            {
                self.importances[feature] += gain;
                let mut lt = 0usize;
                for i in 0..indices.len() {
                    if data.value(indices[i], feature) <= threshold {
                        indices.swap(lt, i);
                        lt += 1;
                    }
                }
                debug_assert_eq!(lt, n_left);
                let node_id = self.nodes.len();
                self.nodes.push(RNode::Internal {
                    feature,
                    threshold,
                    left: 0,
                    right: 0,
                });
                let (left_ix, right_ix) = indices.split_at_mut(lt);
                let left = self.build(data, left_ix, g, h, depth + 1);
                let right = self.build(data, right_ix, g, h, depth + 1);
                if let RNode::Internal {
                    left: l, right: r, ..
                } = &mut self.nodes[node_id]
                {
                    *l = left;
                    *r = right;
                }
                return node_id;
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(RNode::Leaf {
            weight: -gsum / (hsum + self.config.lambda),
        });
        node_id
    }

    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        g: &[f64],
        h: &[f64],
        gsum: f64,
        hsum: f64,
    ) -> Option<(usize, f64, usize, f64)> {
        let lambda = self.config.lambda;
        let parent_score = gsum * gsum / (hsum + lambda);
        let floor = self.config.gamma.max(1e-12);
        let mut best: Option<(usize, f64, usize, f64)> = None;

        let mut triples: Vec<(f64, f64, f64)> = Vec::with_capacity(indices.len());
        for feature in 0..data.n_features() {
            // NaN values are skipped (they land on the right at predict
            // time, since `NaN <= t` is false); `Dataset::from_rows`
            // debug-asserts they never occur.
            triples.clear();
            triples.extend(indices.iter().filter_map(|&i| {
                let v = data.value(i, feature);
                (!v.is_nan()).then_some((v, g[i], h[i]))
            }));
            triples.sort_by(|a, b| a.0.total_cmp(&b.0));

            let mut gl = 0.0;
            let mut hl = 0.0;
            for pos in 1..triples.len() {
                gl += triples[pos - 1].1;
                hl += triples[pos - 1].2;
                let (v_prev, v_here) = (triples[pos - 1].0, triples[pos].0);
                if v_here <= v_prev {
                    continue;
                }
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < self.config.min_child_weight || hr < self.config.min_child_weight {
                    continue;
                }
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score);
                if gain <= floor {
                    continue;
                }
                let mut threshold = 0.5 * (v_prev + v_here);
                if threshold <= v_prev {
                    threshold = v_prev;
                }
                // Ties on gain break to the lower feature index, then the
                // lower threshold — same rule as the classification paths.
                let accept = match best {
                    None => true,
                    Some((bf, bt, _, bg)) => {
                        gain > bg || (gain == bg && (feature, threshold) < (bf, bt))
                    }
                };
                if accept {
                    best = Some((feature, threshold, pos, gain));
                }
            }
        }
        best
    }

    /// The additive score this tree contributes for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RNode::Leaf { weight } => return *weight,
                RNode::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // Shared with the compiled traversal so both paths
                    // agree bit-for-bit, including on NaN (routes right).
                    node = if crate::compiled::goes_left(row[*feature], *threshold) {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The node arena — the compiled lowering's view.
    pub(crate) fn nodes_raw(&self) -> &[RNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Unnormalised per-feature split-gain totals of this tree.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }
}

/// Per-bin gradient/hessian sums over every (feature, bin) of a binned
/// matrix, flattened by [`BinnedDataset::bin_offset`]; the regression
/// analogue of the classification class-weight histogram.
struct GradHist {
    g: Vec<f64>,
    h: Vec<f64>,
    cnt: Vec<u32>,
}

impl GradHist {
    fn take_zeroed(pool: &mut Vec<GradHist>, total_bins: usize) -> GradHist {
        match pool.pop() {
            Some(mut hist) => {
                hist.g.iter_mut().for_each(|v| *v = 0.0);
                hist.h.iter_mut().for_each(|v| *v = 0.0);
                hist.cnt.iter_mut().for_each(|v| *v = 0);
                hist
            }
            None => GradHist {
                g: vec![0.0; total_bins],
                h: vec![0.0; total_bins],
                cnt: vec![0; total_bins],
            },
        }
    }

    fn accumulate(&mut self, binned: &BinnedDataset, indices: &[usize], g: &[f64], h: &[f64]) {
        for f in 0..binned.n_features() {
            let off = binned.bin_offset(f);
            let col = binned.column(f);
            for &i in indices {
                let slot = off + col[i] as usize;
                self.g[slot] += g[i];
                self.h[slot] += h[i];
                self.cnt[slot] += 1;
            }
        }
    }

    fn subtract(&mut self, child: &GradHist) {
        for (p, c) in self.g.iter_mut().zip(&child.g) {
            *p -= c;
        }
        for (p, c) in self.h.iter_mut().zip(&child.h) {
            *p -= c;
        }
        for (p, c) in self.cnt.iter_mut().zip(&child.cnt) {
            *p -= c;
        }
    }
}

fn sums(indices: &[usize], g: &[f64], h: &[f64]) -> (f64, f64) {
    let mut gs = 0.0;
    let mut hs = 0.0;
    for &i in indices {
        gs += g[i];
        hs += h[i];
    }
    (gs, hs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squared_error_fit(xs: &[f64], ys: &[f64], config: RegressionTreeConfig) -> RegressionTree {
        // For squared error ½(pred−y)² at pred=0: g = −y, h = 1.
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let data = Dataset::from_rows(&rows, vec![0; xs.len()], 1, vec![0; xs.len()], vec![]);
        let g: Vec<f64> = ys.iter().map(|&y| -y).collect();
        let h = vec![1.0; ys.len()];
        RegressionTree::fit(&data, &g, &h, config)
    }

    #[test]
    fn fits_a_step_function() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 10.0 { -1.0 } else { 1.0 })
            .collect();
        let tree = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..RegressionTreeConfig::default()
            },
        );
        assert!((tree.predict_row(&[3.0]) + 1.0).abs() < 1e-9);
        assert!((tree.predict_row(&[15.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_shrinks_leaf_weights() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 2.0];
        let free = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        let ridge = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 2.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        assert!((free.predict_row(&[0.0]) - 2.0).abs() < 1e-9);
        // Constant target → single leaf: weight = Σy/(n+λ) = 4/(2+2) = 1.
        assert!((ridge.predict_row(&[0.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // Tiny signal — splitting gains little.
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 5.0 { 0.0 } else { 0.01 })
            .collect();
        let eager = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                gamma: 0.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        let pruned = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                gamma: 10.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        assert!(eager.n_nodes() > 1);
        assert_eq!(pruned.n_nodes(), 1, "gain below gamma → single leaf");
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.to_vec();
        let tree = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                max_depth: 0,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(tree.n_nodes(), 1);
        // Leaf = mean of targets = 4.5.
        assert!((tree.predict_row(&[0.0]) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn min_child_weight_blocks_unbalanced_splits() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 0.0, 10.0];
        // Each sample has h=1; min_child_weight=2 forbids a 1-sample leaf
        // isolating the outlier at x=3 but allows the 2/2 split.
        let tree = squared_error_fit(
            &xs,
            &ys,
            RegressionTreeConfig {
                lambda: 0.0,
                min_child_weight: 2.0,
                max_depth: 1,
                ..Default::default()
            },
        );
        if tree.n_nodes() > 1 {
            // The only legal split is between x=1 and x=2.
            assert!((tree.predict_row(&[0.0]) - 0.0).abs() < 1e-9);
            assert!((tree.predict_row(&[3.0]) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn binned_fit_matches_exact_on_lossless_bins() {
        // 300 samples over 30 distinct values per feature → every bin is
        // one distinct value, and unit hessians make all sums
        // integer-valued, so the two paths agree bit-for-bit on training
        // predictions and split gains.
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 30) as f64, ((i * 7) % 30) as f64])
            .collect();
        let data = Dataset::from_rows(&rows, vec![0; 300], 1, vec![0; 300], vec![]);
        let g: Vec<f64> = (0..300)
            .map(|i| if (i % 30) < 15 { -1.0 } else { 1.0 })
            .collect();
        let h = vec![1.0; 300];
        let config = RegressionTreeConfig {
            max_depth: 4,
            ..RegressionTreeConfig::default()
        };
        let exact = RegressionTree::fit(&data, &g, &h, config);
        let binned = BinnedDataset::from_dataset(&data);
        let hist = RegressionTree::fit_binned(&data, &binned, &g, &h, config);
        for i in 0..data.len() {
            assert_eq!(
                exact.predict_row(data.row(i)),
                hist.predict_row(data.row(i)),
                "row {i}"
            );
        }
        assert_eq!(exact.raw_importances(), hist.raw_importances());
    }

    #[test]
    #[should_panic(expected = "one gradient per sample")]
    fn mismatched_gradients_panic() {
        let data = Dataset::from_rows(&[vec![1.0]], vec![0], 1, vec![0], vec![]);
        let _ = RegressionTree::fit(&data, &[], &[1.0], RegressionTreeConfig::default());
    }
}
