//! Second-order gradient-boosted trees with a softmax objective — the
//! reproduction's stand-in for the paper's "XGBoost" classifier.
//!
//! Each boosting round fits one regression tree per class on the softmax
//! gradients `g_ic = p_ic − 1[y_i = c]` and hessians
//! `h_ic = p_ic (1 − p_ic)`, exactly XGBoost's `multi:softprob` objective
//! with the exact greedy split finder.

use crate::binned::{BinnedDataset, SplitAlgo};
use crate::boosting::regression_tree::{RegressionTree, RegressionTreeConfig};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`GradientBoosting`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (each trains one tree per class).
    pub n_rounds: usize,
    /// Shrinkage η applied to every tree's output (XGBoost default 0.3).
    pub learning_rate: f64,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per round (1.0 disables).
    pub subsample: f64,
    /// Seed of the row subsampler.
    pub seed: u64,
    /// Split-search algorithm. The dataset is quantized once before the
    /// boosting loop and reused by every round's `K` trees.
    #[serde(default)]
    pub split_algo: SplitAlgo,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_rounds: 50,
            learning_rate: 0.3,
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            seed: 0,
            split_algo: SplitAlgo::Auto,
        }
    }
}

/// A boosted multi-class classifier (`K` trees per round, softmax link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    config: GbdtConfig,
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    n_classes: usize,
    /// Log-prior initial scores per class.
    base_scores: Vec<f64>,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(config: GbdtConfig) -> Self {
        GradientBoosting {
            config,
            trees: Vec::new(),
            n_classes: 0,
            base_scores: Vec::new(),
        }
    }

    /// The booster's configuration.
    pub fn config(&self) -> &GbdtConfig {
        &self.config
    }

    /// Fits the booster.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(&mut self, data: &Dataset) {
        let binned = self
            .config
            .split_algo
            .use_hist(data.len())
            .then(|| BinnedDataset::from_dataset(data));
        self.fit_prebinned(data, binned.as_ref());
    }

    /// Fits against an optional pre-built binned matrix covering `data` —
    /// the quantize-once path shared with cross-validation. `None` trains
    /// with the exact sort-based split search.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit_prebinned(&mut self, data: &Dataset, binned: Option<&BinnedDataset>) {
        assert!(!data.is_empty(), "cannot fit a booster on zero samples");
        let n = data.len();
        let k = data.n_classes;
        self.n_classes = k;
        self.trees.clear();

        // Start from the class log-priors: faster convergence on the
        // imbalanced mode distribution than a zero start.
        let counts = data.class_counts();
        self.base_scores = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (n as f64 + k as f64)).ln())
            .collect();

        // scores[i*k + c] = current margin of sample i for class c.
        let mut scores: Vec<f64> = (0..n)
            .flat_map(|_| self.base_scores.iter().copied())
            .collect();
        let mut probs = vec![0.0f64; n * k];
        let mut g = vec![0.0f64; n];
        let mut h = vec![0.0f64; n];
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let tree_config = RegressionTreeConfig {
            max_depth: self.config.max_depth,
            lambda: self.config.lambda,
            gamma: self.config.gamma,
            min_child_weight: self.config.min_child_weight,
        };

        for _round in 0..self.config.n_rounds {
            // Softmax per sample.
            for i in 0..n {
                let row = &scores[i * k..(i + 1) * k];
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for c in 0..k {
                    let e = (row[c] - max).exp();
                    probs[i * k + c] = e;
                    sum += e;
                }
                for c in 0..k {
                    probs[i * k + c] /= sum;
                }
            }

            // Row subsampling mask shared by the round's K trees. The
            // subset (and its binned view) is materialised once per round,
            // not once per class tree.
            let subsampled: Option<(Vec<usize>, Dataset, Option<BinnedDataset>)> =
                if self.config.subsample < 1.0 {
                    let keep: Vec<usize> = (0..n)
                        .filter(|_| rng.gen::<f64>() < self.config.subsample)
                        .collect();
                    (!keep.is_empty()).then(|| {
                        let sub = data.subset(&keep);
                        let sub_binned = binned.map(|b| b.subset(&keep));
                        (keep, sub, sub_binned)
                    })
                } else {
                    None
                };

            let mut round_trees = Vec::with_capacity(k);
            for c in 0..k {
                for i in 0..n {
                    let p = probs[i * k + c];
                    let target = if data.y[i] == c { 1.0 } else { 0.0 };
                    g[i] = p - target;
                    h[i] = (p * (1.0 - p)).max(1e-16);
                }
                let tree = match &subsampled {
                    None => match binned {
                        Some(b) => RegressionTree::fit_binned(data, b, &g, &h, tree_config),
                        None => RegressionTree::fit(data, &g, &h, tree_config),
                    },
                    Some((keep, sub, sub_binned)) => {
                        let gs: Vec<f64> = keep.iter().map(|&i| g[i]).collect();
                        let hs: Vec<f64> = keep.iter().map(|&i| h[i]).collect();
                        match sub_binned {
                            Some(b) => RegressionTree::fit_binned(sub, b, &gs, &hs, tree_config),
                            None => RegressionTree::fit(sub, &gs, &hs, tree_config),
                        }
                    }
                };
                for i in 0..n {
                    scores[i * k + c] += self.config.learning_rate * tree.predict_row(data.row(i));
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
    }

    /// Class margins (pre-softmax scores) of one row.
    pub fn decision_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(self.n_classes > 0, "predict on an unfitted booster");
        let mut scores = self.base_scores.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.config.learning_rate * tree.predict_row(row);
            }
        }
        scores
    }

    /// Softmax probabilities of one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let scores = self.decision_row(row);
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Predicted class of one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let scores = self.decision_row(row);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicted classes of a dataset — a thin wrapper over the compiled
    /// batch path ([`crate::compiled::BatchPredictor`]). Prefer it (or
    /// `predict_into` with a reused buffer) over per-row
    /// [`GradientBoosting::predict_row`] loops in hot paths.
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }

    /// Number of completed boosting rounds.
    pub fn n_rounds_fitted(&self) -> usize {
        self.trees.len()
    }

    /// `true` once the booster has been fitted (zero-round fits count:
    /// they predict from the class priors).
    pub fn is_fitted(&self) -> bool {
        self.n_classes > 0
    }

    /// `trees[round][class]` — the compiled lowering's view.
    pub(crate) fn rounds_raw(&self) -> &[Vec<RegressionTree>] {
        &self.trees
    }

    /// Log-prior base scores per class.
    pub(crate) fn base_scores_raw(&self) -> &[f64] {
        &self.base_scores
    }

    /// Number of classes seen at fit time.
    pub(crate) fn n_classes_raw(&self) -> usize {
        self.n_classes
    }

    /// Gain-based feature importances (total split gain per feature over
    /// every tree of every round), normalised to sum to 1 — XGBoost's
    /// `total_gain` importance.
    ///
    /// # Panics
    /// Panics on an unfitted booster.
    pub fn feature_importances(&self) -> Vec<f64> {
        assert!(self.n_classes > 0, "importances of an unfitted booster");
        let n_features = self
            .trees
            .iter()
            .flatten()
            .map(|t| t.raw_importances().len())
            .max()
            .unwrap_or(0);
        let mut acc = vec![0.0; n_features];
        for tree in self.trees.iter().flatten() {
            for (a, &v) in acc.iter_mut().zip(tree.raw_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            acc.iter_mut().for_each(|a| *a /= total);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..3usize {
            let center = class as f64 * 2.5;
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    -center + rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 3, vec![0; n], vec![])
    }

    #[test]
    fn learns_blobs() {
        let data = blob_data(40, 11);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 20,
            ..GbdtConfig::default()
        });
        gbdt.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &gbdt.predict(&data));
        assert!(acc > 0.95, "training accuracy {acc}");
        assert_eq!(gbdt.n_rounds_fitted(), 20);
    }

    #[test]
    fn learns_xor_unlike_linear_models() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (cx, cy, label) in [
            (0.0, 0.0, 0usize),
            (1.0, 1.0, 0),
            (0.0, 1.0, 1),
            (1.0, 0.0, 1),
        ] {
            for _ in 0..15 {
                // Random jitter breaks the symmetry that would zero out
                // every first-split gain on exact XOR.
                rows.push(vec![
                    cx + rng.gen_range(-0.1..0.1),
                    cy + rng.gen_range(-0.1..0.1),
                ]);
                y.push(label);
            }
        }
        let n = rows.len();
        let data = Dataset::from_rows(&rows, y, 2, vec![0; n], vec![]);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 15,
            ..Default::default()
        });
        gbdt.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &gbdt.predict(&data));
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let data = blob_data(20, 12);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 5,
            ..Default::default()
        });
        gbdt.fit(&data);
        let p = gbdt.predict_proba_row(data.row(0));
        assert_eq!(p.len(), 3);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn deterministic_per_seed_and_subsampling_changes_results() {
        let data = blob_data(25, 13);
        let fit = |seed: u64, subsample: f64| {
            let mut m = GradientBoosting::new(GbdtConfig {
                n_rounds: 5,
                subsample,
                seed,
                ..Default::default()
            });
            m.fit(&data);
            m.decision_row(data.row(0))
        };
        assert_eq!(fit(1, 0.7), fit(1, 0.7));
        assert_ne!(fit(1, 0.7), fit(2, 0.7));
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = blob_data(30, 14);
        let acc_at = |rounds: usize| {
            let mut m = GradientBoosting::new(GbdtConfig {
                n_rounds: rounds,
                learning_rate: 0.1,
                max_depth: 2,
                ..Default::default()
            });
            m.fit(&data);
            crate::metrics::accuracy(&data.y, &m.predict(&data))
        };
        assert!(acc_at(30) >= acc_at(1));
    }

    #[test]
    fn base_scores_reflect_class_priors() {
        // Strong imbalance: an unfitted-ish model (0 rounds) predicts the
        // majority class everywhere.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut y = vec![0usize; 18];
        y.extend([1, 1]);
        let data = Dataset::from_rows(&rows, y, 2, vec![0; 20], vec![]);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 0,
            ..Default::default()
        });
        gbdt.fit(&data);
        assert_eq!(gbdt.predict_row(&[3.0]), 0);
    }

    #[test]
    #[should_panic(expected = "unfitted booster")]
    fn predict_unfitted_panics() {
        let gbdt = GradientBoosting::new(GbdtConfig::default());
        let _ = gbdt.predict_row(&[0.0]);
    }

    #[test]
    fn gain_importances_identify_signal_features() {
        // Feature 0 carries the class; feature 1 is constant noise.
        let mut rng = StdRng::seed_from_u64(15);
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 2) as f64 * 3.0 + rng.gen_range(-0.5..0.5), 1.0])
            .collect();
        let y: Vec<usize> = (0..80).map(|i| i % 2).collect();
        let data = Dataset::from_rows(&rows, y, 2, vec![0; 80], vec![]);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 5,
            ..Default::default()
        });
        gbdt.fit(&data);
        let imp = gbdt.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.99, "{imp:?}");
        assert_eq!(imp[1], 0.0, "constant feature never splits");
    }
}
