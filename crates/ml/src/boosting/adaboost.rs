//! AdaBoost·SAMME — the multi-class AdaBoost variant of Zhu et al. (2009),
//! the algorithm behind scikit-learn's `AdaBoostClassifier` that the
//! paper's §4.1 comparison includes.
//!
//! Each round fits a shallow weighted CART tree, computes its weighted
//! error `ε`, assigns it the stage weight
//! `α = ln((1−ε)/ε) + ln(K−1)` and re-weights samples multiplicatively by
//! `exp(α·1[mistake])`.

use crate::binned::{BinnedDataset, SplitAlgo};
use crate::dataset::Dataset;
use crate::tree::{Criterion, DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`AdaBoost`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostConfig {
    /// Maximum boosting rounds (scikit-learn's default is 50).
    pub n_estimators: usize,
    /// Depth of the weak trees (1 = decision stumps, scikit-learn's
    /// default).
    pub max_depth: usize,
    /// Shrinkage on the stage weights α.
    pub learning_rate: f64,
    /// Split-search algorithm of the weak trees. The dataset is quantized
    /// once before the boosting loop; every round reuses the bins.
    #[serde(default)]
    pub split_algo: SplitAlgo,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            n_estimators: 50,
            max_depth: 1,
            learning_rate: 1.0,
            split_algo: SplitAlgo::Auto,
        }
    }
}

/// A SAMME-boosted ensemble of weighted decision trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaBoost {
    config: AdaBoostConfig,
    stages: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Creates an unfitted booster.
    pub fn new(config: AdaBoostConfig) -> Self {
        AdaBoost {
            config,
            stages: Vec::new(),
            n_classes: 0,
        }
    }

    /// The booster's configuration.
    pub fn config(&self) -> &AdaBoostConfig {
        &self.config
    }

    /// Fits the ensemble. Boosting stops early when a weak learner is
    /// perfect (its vote dominates) or no better than chance.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(&mut self, data: &Dataset) {
        let binned = self
            .config
            .split_algo
            .use_hist(data.len())
            .then(|| BinnedDataset::from_dataset(data));
        self.fit_prebinned(data, binned.as_ref());
    }

    /// Fits against an optional pre-built binned matrix covering `data` —
    /// the quantize-once path shared with cross-validation. `None` trains
    /// with the exact sort-based split search.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit_prebinned(&mut self, data: &Dataset, binned: Option<&BinnedDataset>) {
        assert!(!data.is_empty(), "cannot fit a booster on zero samples");
        let n = data.len();
        let k = data.n_classes as f64;
        self.n_classes = data.n_classes;
        self.stages.clear();

        let mut weights = vec![1.0 / n as f64; n];
        for round in 0..self.config.n_estimators {
            let mut tree = DecisionTree::new(TreeConfig {
                criterion: Criterion::Gini,
                max_depth: Some(self.config.max_depth),
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
                seed: round as u64,
                // The booster owns quantization; weak trees never re-bin.
                split_algo: SplitAlgo::Exact,
            });
            match binned {
                Some(b) => tree.fit_binned_weighted(data, b, &weights),
                None => tree.fit_weighted(data, &weights),
            }

            let pred: Vec<usize> = (0..n).map(|i| tree.predict_row(data.row(i))).collect();
            let err: f64 = weights
                .iter()
                .zip(pred.iter().zip(&data.y))
                .filter(|(_, (p, t))| p != t)
                .map(|(&w, _)| w)
                .sum();

            if err <= 1e-12 {
                // Perfect learner: give it a large but finite vote and stop.
                self.stages.push((tree, 10.0 + (k - 1.0).ln()));
                break;
            }
            // SAMME requires better-than-chance accuracy 1−ε > 1/K.
            if err >= 1.0 - 1.0 / k {
                if self.stages.is_empty() {
                    // Keep one weak stage so the model still predicts.
                    self.stages.push((tree, 1e-3));
                }
                break;
            }

            let alpha = self.config.learning_rate * (((1.0 - err) / err).ln() + (k - 1.0).ln());
            for (w, (p, t)) in weights.iter_mut().zip(pred.iter().zip(&data.y)) {
                if p != t {
                    *w *= alpha.exp();
                }
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total);
            self.stages.push((tree, alpha));
        }
    }

    /// Per-class vote totals for one row.
    pub fn decision_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.stages.is_empty(), "predict on an unfitted booster");
        let mut votes = vec![0.0; self.n_classes];
        for (tree, alpha) in &self.stages {
            votes[tree.predict_row(row)] += alpha;
        }
        votes
    }

    /// Predicted class of one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let votes = self.decision_row(row);
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite votes"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicted classes of a dataset — a thin wrapper over the shared
    /// batch API ([`crate::compiled::BatchPredictor`]).
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// `true` once the ensemble has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..3usize {
            let center = class as f64 * 3.0;
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    center + rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 3, vec![0; n], vec![])
    }

    #[test]
    fn stumps_boost_to_high_accuracy() {
        let data = blob_data(40, 21);
        let mut ada = AdaBoost::new(AdaBoostConfig::default());
        ada.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &ada.predict(&data));
        assert!(acc > 0.9, "training accuracy {acc}");
        assert!(ada.n_stages() >= 1);
    }

    #[test]
    fn perfect_stump_stops_boosting() {
        // Linearly separable by one threshold: the first stump is perfect.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let data = Dataset::from_rows(&rows, y.clone(), 2, vec![0; 20], vec![]);
        let mut ada = AdaBoost::new(AdaBoostConfig::default());
        ada.fit(&data);
        assert_eq!(ada.n_stages(), 1);
        assert_eq!(ada.predict(&data), y);
    }

    #[test]
    fn boosting_beats_a_single_stump_on_stripes() {
        // Three vertical stripes: one threshold cannot separate class 1 in
        // the middle, boosting can.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..60)
            .map(|i| usize::from((20..40).contains(&i)))
            .collect();
        let data = Dataset::from_rows(&rows, y.clone(), 2, vec![0; 60], vec![]);

        let mut single = AdaBoost::new(AdaBoostConfig {
            n_estimators: 1,
            ..Default::default()
        });
        single.fit(&data);
        let acc1 = crate::metrics::accuracy(&data.y, &single.predict(&data));

        let mut many = AdaBoost::new(AdaBoostConfig {
            n_estimators: 50,
            ..Default::default()
        });
        many.fit(&data);
        let acc50 = crate::metrics::accuracy(&data.y, &many.predict(&data));
        assert!(acc50 > acc1, "boosting improves: {acc1} → {acc50}");
        assert!(acc50 > 0.9, "{acc50}");
    }

    #[test]
    fn deeper_weak_learners_work_too() {
        let data = blob_data(30, 22);
        let mut ada = AdaBoost::new(AdaBoostConfig {
            max_depth: 3,
            n_estimators: 10,
            ..Default::default()
        });
        ada.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &ada.predict(&data));
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn decision_row_totals_are_positive() {
        let data = blob_data(20, 23);
        let mut ada = AdaBoost::new(AdaBoostConfig::default());
        ada.fit(&data);
        let votes = ada.decision_row(data.row(0));
        assert_eq!(votes.len(), 3);
        assert!(votes.iter().sum::<f64>() > 0.0);
    }

    #[test]
    #[should_panic(expected = "unfitted booster")]
    fn predict_unfitted_panics() {
        let ada = AdaBoost::new(AdaBoostConfig::default());
        let _ = ada.predict_row(&[0.0]);
    }
}
