//! Boosted ensembles: the paper's "XGBoost" (second-order gradient-boosted
//! trees with a softmax objective) and AdaBoost·SAMME.

pub mod adaboost;
pub mod gbdt;
pub mod regression_tree;

pub use adaboost::{AdaBoost, AdaBoostConfig};
pub use gbdt::{GbdtConfig, GradientBoosting};
pub use regression_tree::RegressionTree;

pub(crate) use regression_tree::RNode as RegressionNode;
