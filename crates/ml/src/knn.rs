//! k-nearest-neighbours — an additional baseline beyond the paper's six
//! classifiers, useful for sanity-checking feature spaces (a strong kNN
//! score means the features cluster by mode at all).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// A brute-force Euclidean kNN classifier (stores the training set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knn {
    config: KnnConfig,
    train: Option<Dataset>,
}

impl Knn {
    /// Creates an unfitted classifier.
    pub fn new(config: KnnConfig) -> Self {
        Knn {
            config,
            train: None,
        }
    }

    /// Memorises the training set.
    ///
    /// # Panics
    /// Panics on an empty dataset or `k == 0`.
    pub fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit kNN on zero samples");
        assert!(self.config.k > 0, "k must be positive");
        self.train = Some(data.clone());
    }

    /// `true` once a training set has been memorised.
    pub fn is_fitted(&self) -> bool {
        self.train.is_some()
    }

    /// Predicted class of one row: majority vote of the `k` nearest
    /// training samples, ties broken toward the nearer neighbour's class.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let train = self.train.as_ref().expect("predict on an unfitted kNN");
        let k = self.config.k.min(train.len());

        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = (0..train.len())
            .map(|i| (squared_distance(train.row(i), row), train.y[i]))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let neighbours = &mut dists[..k];
        neighbours.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));

        let mut votes = vec![0usize; train.n_classes];
        for &(_, c) in neighbours.iter() {
            votes[c] += 1;
        }
        let best_count = *votes.iter().max().expect("at least one class");
        // Nearest-first tie break.
        neighbours
            .iter()
            .map(|&(_, c)| c)
            .find(|&c| votes[c] == best_count)
            .expect("k >= 1")
    }

    /// Per-class vote fractions of the `k` nearest neighbours.
    ///
    /// # Panics
    /// Panics on an unfitted classifier.
    pub fn vote_fractions_row(&self, row: &[f64]) -> Vec<f64> {
        let train = self.train.as_ref().expect("predict on an unfitted kNN");
        let k = self.config.k.min(train.len());
        let mut dists: Vec<(f64, usize)> = (0..train.len())
            .map(|i| (squared_distance(train.row(i), row), train.y[i]))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let mut votes = vec![0.0; train.n_classes];
        for &(_, c) in &dists[..k] {
            votes[c] += 1.0;
        }
        votes.iter_mut().for_each(|v| *v /= k as f64);
        votes
    }

    /// Predicted classes of a dataset — a thin wrapper over the shared
    /// batch API ([`crate::compiled::BatchPredictor`]).
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        Dataset::from_rows(&rows, y, 2, vec![0; 10], vec![])
    }

    #[test]
    fn one_nn_memorises_training_data() {
        let data = line_data();
        let mut knn = Knn::new(KnnConfig { k: 1 });
        knn.fit(&data);
        assert_eq!(knn.predict(&data), data.y);
    }

    #[test]
    fn five_nn_majority_vote() {
        let data = line_data();
        let mut knn = Knn::new(KnnConfig { k: 5 });
        knn.fit(&data);
        assert_eq!(knn.predict_row(&[0.0]), 0);
        assert_eq!(knn.predict_row(&[9.0]), 1);
        assert_eq!(knn.predict_row(&[100.0]), 1);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let data = line_data();
        let mut knn = Knn::new(KnnConfig { k: 100 });
        knn.fit(&data);
        // All 10 points vote: 5 vs 5 tie broken toward the nearer class.
        assert_eq!(knn.predict_row(&[0.0]), 0);
        assert_eq!(knn.predict_row(&[9.0]), 1);
    }

    #[test]
    fn tie_breaks_toward_nearest_neighbour() {
        let rows = vec![vec![0.0], vec![2.0]];
        let data = Dataset::from_rows(&rows, vec![0, 1], 2, vec![0; 2], vec![]);
        let mut knn = Knn::new(KnnConfig { k: 2 });
        knn.fit(&data);
        assert_eq!(knn.predict_row(&[0.5]), 0, "closer to class 0");
        assert_eq!(knn.predict_row(&[1.5]), 1, "closer to class 1");
    }

    #[test]
    #[should_panic(expected = "unfitted kNN")]
    fn predict_unfitted_panics() {
        let knn = Knn::new(KnnConfig::default());
        let _ = knn.predict_row(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = line_data();
        let mut knn = Knn::new(KnnConfig { k: 0 });
        knn.fit(&data);
    }
}
