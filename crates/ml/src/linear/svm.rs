//! Linear support-vector machine trained with Pegasos, one-vs-rest for
//! multi-class — the paper's "SVM" comparison classifier (its worst
//! performer, §4.1/§5; trajectory features are not linearly separable, so
//! a margin-based linear model trails the tree ensembles).
//!
//! Pegasos (Shalev-Shwartz et al., 2011) minimises the regularised hinge
//! loss `λ/2‖w‖² + mean(max(0, 1 − y·(w·x + b)))` by stochastic
//! sub-gradient steps with learning rate `1/(λt)`.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Regularisation strength λ.
    pub lambda: f64,
    /// Passes over the training data.
    pub epochs: usize,
    /// Seed of the per-epoch shuffling.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 30,
            seed: 0,
        }
    }
}

/// One-vs-rest linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    config: SvmConfig,
    /// `weights[c]` is the weight vector of the class-`c`-vs-rest machine.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    n_classes: usize,
}

impl LinearSvm {
    /// Creates an unfitted SVM.
    pub fn new(config: SvmConfig) -> Self {
        LinearSvm {
            config,
            weights: Vec::new(),
            biases: Vec::new(),
            n_classes: 0,
        }
    }

    /// Fits one Pegasos machine per class.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit an SVM on zero samples");
        let n = data.len();
        let d = data.n_features();
        self.n_classes = data.n_classes;
        self.weights = vec![vec![0.0; d]; self.n_classes];
        self.biases = vec![0.0; self.n_classes];

        let lambda = self.config.lambda;
        for c in 0..self.n_classes {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(c as u64));
            let mut order: Vec<usize> = (0..n).collect();
            let w = &mut self.weights[c];
            let b = &mut self.biases[c];
            let mut t = 0usize;
            for _epoch in 0..self.config.epochs {
                order.shuffle(&mut rng);
                for &i in &order {
                    t += 1;
                    let eta = 1.0 / (lambda * t as f64);
                    let row = data.row(i);
                    let y = if data.y[i] == c { 1.0 } else { -1.0 };
                    let margin = y * (dot(w, row) + *b);
                    // w ← (1 − ηλ) w (+ ηyx when the margin is violated).
                    let shrink = 1.0 - eta * lambda;
                    w.iter_mut().for_each(|wj| *wj *= shrink);
                    if margin < 1.0 {
                        for (wj, &xj) in w.iter_mut().zip(row) {
                            *wj += eta * y * xj;
                        }
                        *b += eta * y;
                    }
                    // Optional Pegasos projection onto the ball
                    // ‖w‖ ≤ 1/√λ (Shalev-Shwartz et al., 2011, fig. 1);
                    // bounds the iterates against the large early steps
                    // of the 1/(λt) schedule.
                    let norm = dot(w, w).sqrt();
                    let radius = 1.0 / lambda.sqrt();
                    if norm > radius {
                        let scale = radius / norm;
                        w.iter_mut().for_each(|wj| *wj *= scale);
                    }
                }
            }
        }
    }

    /// `true` once the machines have been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// One-vs-rest decision values of one row.
    pub fn decision_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "predict on an unfitted SVM");
        (0..self.n_classes)
            .map(|c| dot(&self.weights[c], row) + self.biases[c])
            .collect()
    }

    /// Predicted class of one row (largest decision value).
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let scores = self.decision_row(row);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicted classes of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn separable_blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..3usize {
            let angle = class as f64 * 2.0 * std::f64::consts::PI / 3.0;
            let (cx, cy) = (3.0 * angle.cos(), 3.0 * angle.sin());
            for _ in 0..n_per_class {
                rows.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 3, vec![0; n], vec![])
    }

    #[test]
    fn separates_linear_blobs() {
        let data = separable_blobs(40, 31);
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &svm.predict(&data));
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn binary_margin_signs_are_correct() {
        let rows = vec![
            vec![-2.0],
            vec![-1.5],
            vec![-1.0],
            vec![1.0],
            vec![1.5],
            vec![2.0],
        ];
        let data = Dataset::from_rows(&rows, vec![0, 0, 0, 1, 1, 1], 2, vec![0; 6], vec![]);
        let mut svm = LinearSvm::new(SvmConfig {
            epochs: 100,
            ..Default::default()
        });
        svm.fit(&data);
        assert_eq!(svm.predict_row(&[-3.0]), 0);
        assert_eq!(svm.predict_row(&[3.0]), 1);
        let d = svm.decision_row(&[3.0]);
        assert!(d[1] > d[0]);
    }

    #[test]
    fn fails_on_xor_as_a_linear_model_must() {
        // The paper's SVM is worst; linearly inseparable structure is why.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (cx, cy, label) in [
            (0.0, 0.0, 0usize),
            (1.0, 1.0, 0),
            (0.0, 1.0, 1),
            (1.0, 0.0, 1),
        ] {
            for k in 0..10 {
                rows.push(vec![cx + k as f64 * 0.001, cy]);
                y.push(label);
            }
        }
        let n = rows.len();
        let data = Dataset::from_rows(&rows, y, 2, vec![0; n], vec![]);
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &svm.predict(&data));
        assert!(acc < 0.8, "XOR cannot be separated linearly: {acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separable_blobs(20, 32);
        let fit = |seed| {
            let mut svm = LinearSvm::new(SvmConfig {
                seed,
                ..Default::default()
            });
            svm.fit(&data);
            svm.decision_row(data.row(0))
        };
        assert_eq!(fit(5), fit(5));
    }

    #[test]
    fn stronger_regularisation_shrinks_weights() {
        let data = separable_blobs(20, 33);
        let norm_at = |lambda| {
            let mut svm = LinearSvm::new(SvmConfig {
                lambda,
                epochs: 20,
                seed: 1,
            });
            svm.fit(&data);
            svm.weights
                .iter()
                .flat_map(|w| w.iter().map(|&v| v * v))
                .sum::<f64>()
                .sqrt()
        };
        assert!(norm_at(1.0) < norm_at(1e-5));
    }

    #[test]
    #[should_panic(expected = "unfitted SVM")]
    fn predict_unfitted_panics() {
        let svm = LinearSvm::new(SvmConfig::default());
        let _ = svm.predict_row(&[0.0]);
    }
}
