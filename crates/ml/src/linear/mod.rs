//! Linear models: the SVM of the paper's classifier comparison.

pub mod svm;

pub use svm::{LinearSvm, SvmConfig};
