//! # traj-ml
//!
//! A self-contained machine-learning stack implemented from scratch for the
//! reproduction of Etemad et al., *"On Feature Selection and Evaluation of
//! Transportation Mode Prediction Strategies"* (EDBT 2019). No external ML
//! framework is used — every classifier, metric, cross-validation scheme
//! and statistical test the paper relies on is implemented here:
//!
//! * [`dataset`] — dense row-major feature matrices with labels and group
//!   (user) ids.
//! * [`binned`] — per-feature quantile binning (≤ 256 `u8` bins) feeding
//!   the histogram split search; quantize once, train everywhere.
//! * [`tree`] — CART decision trees (gini/entropy), with exact sort-based
//!   and histogram split search behind [`binned::SplitAlgo`].
//! * [`forest`] — random forests with bootstrap sampling, feature
//!   subsampling, parallel training and impurity-based feature importances
//!   (the paper's "information theoretical" ranking source).
//! * [`boosting`] — second-order gradient-boosted trees (the paper's
//!   "XGBoost") and AdaBoost·SAMME.
//! * [`linear`] — a linear SVM trained with the Pegasos sub-gradient
//!   method, one-vs-rest for multi-class.
//! * [`neural`] — a multilayer perceptron (ReLU, softmax, momentum SGD).
//! * [`knn`] — k-nearest-neighbours, an extra baseline.
//! * [`erased`] — a serialisable type-erased model enum over the whole
//!   roster, the unit of model persistence and serving.
//! * [`metrics`] — accuracy, precision/recall/F1 (per-class, macro,
//!   weighted), confusion matrices.
//! * [`cv`] — random K-fold, stratified K-fold, user-oriented group
//!   K-fold and group shuffle splits; the paper's §4.4 contrast between
//!   *random* and *user-oriented* cross-validation maps to
//!   [`cv::KFold`] vs [`cv::GroupKFold`]. Splitters yield lazy
//!   [`cv::Folds`] iterators of owned [`cv::Fold`]s, degenerate
//!   configurations surface as [`cv::SplitError`], and
//!   [`cv::cross_validate`] scores folds in parallel on the shared
//!   `traj-runtime` pool with bit-identical results for any thread
//!   count.
//! * [`stats_tests`] — Wilcoxon signed-rank tests (paired and one-sample,
//!   exact for small samples, normal approximation otherwise), plus the
//!   Friedman omnibus and Nemenyi post-hoc tests for multi-classifier
//!   comparisons.
//! * [`tuning`] — exhaustive grid search over classifier
//!   hyper-parameters under any cross-validation scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binned;
pub mod boosting;
pub mod classifier;
pub mod compiled;
pub mod cv;
pub mod dataset;
pub mod erased;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod neural;
pub mod stats_tests;
pub mod tree;
pub mod tuning;

pub use binned::{BinnedDataset, SplitAlgo};
pub use classifier::{Classifier, ClassifierKind};
pub use compiled::{BatchPredictor, CompiledModel, PredictError, Predictions, RowMatrix};
pub use cv::{
    cross_validate, cross_validate_prebinned, Fold, FoldScore, Folds, GroupKFold,
    GroupShuffleSplit, KFold, SplitError, Splitter,
};
pub use dataset::Dataset;
pub use erased::ErasedModel;
pub use forest::RandomForest;
pub use metrics::{accuracy, confusion_matrix, f1_macro, f1_weighted, ClassificationReport};
pub use stats_tests::{wilcoxon_one_sample, wilcoxon_signed_rank, Alternative, WilcoxonResult};
