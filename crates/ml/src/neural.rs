//! A multilayer perceptron — the paper's "neural network" comparison
//! classifier.
//!
//! Architecture and training mirror scikit-learn's `MLPClassifier`
//! defaults scaled to this problem: one hidden layer of ReLU units, a
//! softmax output with cross-entropy loss, and mini-batch SGD with
//! classical momentum. He-uniform weight initialisation keeps ReLU
//! activations healthy; all randomness is seeded for reproducibility.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden-layer widths, e.g. `vec![64]` for one hidden layer.
    pub hidden: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Classical momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Seed of initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![64],
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 60,
            batch_size: 32,
            weight_decay: 1e-4,
            seed: 0,
        }
    }
}

/// One dense layer: `weights` is `out × in` row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    weights: Vec<f64>,
    biases: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Momentum buffers.
    vw: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // He-uniform: U(−√(6/n_in), √(6/n_in)).
        let limit = (6.0 / n_in as f64).sqrt();
        let weights = (0..n_in * n_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Layer {
            weights,
            biases: vec![0.0; n_out],
            n_in,
            n_out,
            vw: vec![0.0; n_in * n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        for o in 0..self.n_out {
            let w = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 =
                w.iter().zip(input).map(|(&wj, &xj)| wj * xj).sum::<f64>() + self.biases[o];
            output.push(z);
        }
    }
}

/// A feed-forward ReLU network with softmax output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
    n_classes: usize,
}

impl Mlp {
    /// Creates an unfitted network.
    pub fn new(config: MlpConfig) -> Self {
        Mlp {
            config,
            layers: Vec::new(),
            n_classes: 0,
        }
    }

    /// Fits the network with mini-batch momentum SGD on cross-entropy.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit an MLP on zero samples");
        let d = data.n_features();
        self.n_classes = data.n_classes;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Build layer sizes: input → hidden… → classes.
        let mut sizes = vec![d];
        sizes.extend(&self.config.hidden);
        sizes.push(self.n_classes);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        let batch = self.config.batch_size.max(1);

        // Per-layer activation buffers (post-ReLU, except the last layer's
        // raw logits) and gradient accumulators.
        let n_layers = self.layers.len();
        let mut grads_w: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grads_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();

        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                for g in &mut grads_w {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for g in &mut grads_b {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for &i in chunk {
                    self.accumulate_gradients(data.row(i), data.y[i], &mut grads_w, &mut grads_b);
                }
                let scale = 1.0 / chunk.len() as f64;
                let lr = self.config.learning_rate;
                let mu = self.config.momentum;
                let decay = self.config.weight_decay;
                for l in 0..n_layers {
                    let layer = &mut self.layers[l];
                    for (j, w) in layer.weights.iter_mut().enumerate() {
                        let g = grads_w[l][j] * scale + decay * *w;
                        layer.vw[j] = mu * layer.vw[j] - lr * g;
                        *w += layer.vw[j];
                    }
                    for (j, b) in layer.biases.iter_mut().enumerate() {
                        let g = grads_b[l][j] * scale;
                        layer.vb[j] = mu * layer.vb[j] - lr * g;
                        *b += layer.vb[j];
                    }
                }
            }
        }
    }

    /// Forward pass returning every layer's activation (ReLU applied to
    /// hidden layers, raw logits for the output layer).
    fn forward_all(&self, row: &[f64]) -> Vec<Vec<f64>> {
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(row.to_vec());
        let mut buf = Vec::new();
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(activations.last().expect("input present"), &mut buf);
            if l + 1 < self.layers.len() {
                for v in &mut buf {
                    *v = v.max(0.0); // ReLU
                }
            }
            activations.push(buf.clone());
        }
        activations
    }

    fn accumulate_gradients(
        &self,
        row: &[f64],
        label: usize,
        grads_w: &mut [Vec<f64>],
        grads_b: &mut [Vec<f64>],
    ) {
        let activations = self.forward_all(row);
        let logits = activations.last().expect("output present");
        let probs = softmax(logits);

        // delta of the output layer: p − one-hot(y).
        let mut delta: Vec<f64> = probs;
        delta[label] -= 1.0;

        for l in (0..self.layers.len()).rev() {
            let input = &activations[l];
            let layer = &self.layers[l];
            for o in 0..layer.n_out {
                grads_b[l][o] += delta[o];
                let g_row = &mut grads_w[l][o * layer.n_in..(o + 1) * layer.n_in];
                for (gj, &xj) in g_row.iter_mut().zip(input) {
                    *gj += delta[o] * xj;
                }
            }
            if l > 0 {
                // Back-propagate through the layer and the previous ReLU.
                let mut prev = vec![0.0; layer.n_in];
                for (o, &d) in delta.iter().enumerate().take(layer.n_out) {
                    let w_row = &layer.weights[o * layer.n_in..(o + 1) * layer.n_in];
                    for (p, &wj) in prev.iter_mut().zip(w_row) {
                        *p += d * wj;
                    }
                }
                for (p, &a) in prev.iter_mut().zip(&activations[l]) {
                    if a <= 0.0 {
                        *p = 0.0; // ReLU derivative
                    }
                }
                delta = prev;
            }
        }
    }

    /// `true` once the network has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.layers.is_empty()
    }

    /// Softmax probabilities of one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.layers.is_empty(), "predict on an unfitted MLP");
        let activations = self.forward_all(row);
        softmax(activations.last().expect("output present"))
    }

    /// Predicted class of one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let p = self.predict_proba_row(row);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicted classes of a dataset — a thin wrapper over the shared
    /// batch API ([`crate::compiled::BatchPredictor`]).
    pub fn predict(&self, data: &Dataset) -> Vec<usize> {
        crate::classifier::Classifier::predict(self, data)
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..3usize {
            let angle = class as f64 * 2.0 * std::f64::consts::PI / 3.0;
            for _ in 0..n_per_class {
                rows.push(vec![
                    angle.cos() + rng.gen_range(-0.3..0.3),
                    angle.sin() + rng.gen_range(-0.3..0.3),
                ]);
                y.push(class);
            }
        }
        let n = rows.len();
        Dataset::from_rows(&rows, y, 3, vec![0; n], vec![])
    }

    #[test]
    fn learns_blobs() {
        let data = blob_data(40, 41);
        let mut mlp = Mlp::new(MlpConfig {
            epochs: 80,
            ..Default::default()
        });
        mlp.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &mlp.predict(&data));
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (cx, cy, label) in [
            (0.0, 0.0, 0usize),
            (1.0, 1.0, 0),
            (0.0, 1.0, 1),
            (1.0, 0.0, 1),
        ] {
            for k in 0..10 {
                rows.push(vec![cx + k as f64 * 0.01, cy + k as f64 * 0.01]);
                y.push(label);
            }
        }
        let n = rows.len();
        let data = Dataset::from_rows(&rows, y, 2, vec![0; n], vec![]);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![16],
            epochs: 300,
            learning_rate: 0.1,
            weight_decay: 0.0,
            ..Default::default()
        });
        mlp.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &mlp.predict(&data));
        assert!(acc > 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let data = blob_data(10, 42);
        let mut mlp = Mlp::new(MlpConfig {
            epochs: 5,
            ..Default::default()
        });
        mlp.fit(&data);
        let p = mlp.predict_proba_row(data.row(0));
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blob_data(15, 43);
        let fit = |seed| {
            let mut mlp = Mlp::new(MlpConfig {
                epochs: 5,
                seed,
                ..Default::default()
            });
            mlp.fit(&data);
            mlp.predict_proba_row(data.row(0))
        };
        assert_eq!(fit(9), fit(9));
        assert_ne!(fit(9), fit(10));
    }

    #[test]
    fn deeper_networks_construct_correctly() {
        let data = blob_data(15, 44);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![8, 8],
            epochs: 10,
            ..Default::default()
        });
        mlp.fit(&data);
        let _ = mlp.predict(&data);
        assert_eq!(mlp.layers.len(), 3);
    }

    #[test]
    fn no_hidden_layer_reduces_to_softmax_regression() {
        let data = blob_data(30, 45);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![],
            epochs: 100,
            ..Default::default()
        });
        mlp.fit(&data);
        let acc = crate::metrics::accuracy(&data.y, &mlp.predict(&data));
        assert!(
            acc > 0.85,
            "linear blobs solvable by softmax regression: {acc}"
        );
    }

    #[test]
    #[should_panic(expected = "unfitted MLP")]
    fn predict_unfitted_panics() {
        let mlp = Mlp::new(MlpConfig::default());
        let _ = mlp.predict_row(&[0.0]);
    }
}
