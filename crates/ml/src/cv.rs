//! Cross-validation: the evaluation machinery the paper's §4.4 is about.
//!
//! The paper contrasts two schemes:
//!
//! * **random cross-validation** ([`KFold`] with shuffling, or
//!   [`StratifiedKFold`]) — samples are split regardless of which user
//!   produced them, the convention of [Dabiri & Heaslip], [Liu & Lee] and
//!   [Xiao];
//! * **user-oriented cross-validation** ([`GroupKFold`]) — every user's
//!   segments fall entirely in the training *or* the test side of each
//!   fold, the convention of [Endo et al.].
//!
//! Because GPS trajectories are auto-correlated within a user, the random
//! scheme leaks user identity across the split and reports optimistic
//! scores — the paper's Figure 4 finding, which [`cross_validate`] lets
//! you reproduce with any classifier.

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use crate::metrics::ClassificationReport;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A cross-validation splitter: yields `(train_indices, test_indices)`
/// pairs over a dataset.
pub trait Splitter {
    /// The folds of `data`. Implementations must return disjoint
    /// train/test pairs whose test sides cover every usable sample once.
    fn split(&self, data: &Dataset) -> Vec<(Vec<usize>, Vec<usize>)>;
}

/// Random K-fold: shuffle sample indices, cut into `k` contiguous folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KFold {
    /// Number of folds.
    pub n_splits: usize,
    /// Shuffle before folding (the paper's "random cross-validation").
    pub shuffle: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// A shuffled K-fold with the given seed.
    pub fn new(n_splits: usize, seed: u64) -> Self {
        KFold {
            n_splits,
            shuffle: true,
            seed,
        }
    }
}

impl Splitter for KFold {
    fn split(&self, data: &Dataset) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.n_splits >= 2, "need at least two folds");
        assert!(
            data.len() >= self.n_splits,
            "fewer samples than folds ({} < {})",
            data.len(),
            self.n_splits
        );
        let mut indices: Vec<usize> = (0..data.len()).collect();
        if self.shuffle {
            let mut rng = StdRng::seed_from_u64(self.seed);
            indices.shuffle(&mut rng);
        }
        contiguous_folds(&indices, self.n_splits)
    }
}

/// Stratified K-fold: class proportions are preserved per fold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratifiedKFold {
    /// Number of folds.
    pub n_splits: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Splitter for StratifiedKFold {
    fn split(&self, data: &Dataset) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.n_splits >= 2, "need at least two folds");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut fold_of = vec![0usize; data.len()];
        for class in 0..data.n_classes {
            let mut members: Vec<usize> = (0..data.len()).filter(|&i| data.y[i] == class).collect();
            members.shuffle(&mut rng);
            for (pos, &i) in members.iter().enumerate() {
                fold_of[i] = pos % self.n_splits;
            }
        }
        folds_from_assignment(&fold_of, self.n_splits)
    }
}

/// User-oriented (group) K-fold: whole groups are assigned to folds,
/// larger groups first onto the currently smallest fold, so every user
/// appears in exactly one test fold — the paper's "cross-validation by
/// dividing users".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupKFold {
    /// Number of folds; must not exceed the number of distinct groups.
    pub n_splits: usize,
}

impl Splitter for GroupKFold {
    fn split(&self, data: &Dataset) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.n_splits >= 2, "need at least two folds");
        let groups = data.distinct_groups();
        assert!(
            groups.len() >= self.n_splits,
            "fewer groups than folds ({} < {})",
            groups.len(),
            self.n_splits
        );
        // Count samples per group.
        let mut sizes: Vec<(u32, usize)> = groups
            .iter()
            .map(|&g| (g, data.groups.iter().filter(|&&x| x == g).count()))
            .collect();
        // Largest group first onto the lightest fold (greedy balancing,
        // the scikit-learn GroupKFold strategy).
        sizes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut fold_sizes = vec![0usize; self.n_splits];
        let mut fold_of_group = std::collections::HashMap::new();
        for (g, size) in sizes {
            let lightest = (0..self.n_splits)
                .min_by_key(|&f| fold_sizes[f])
                .expect("non-zero folds");
            fold_sizes[lightest] += size;
            fold_of_group.insert(g, lightest);
        }
        let fold_of: Vec<usize> = data.groups.iter().map(|g| fold_of_group[g]).collect();
        folds_from_assignment(&fold_of, self.n_splits)
    }
}

/// Repeated random group-aware train/test splits: each split holds out a
/// random subset of groups whose samples total roughly `test_fraction` of
/// the data — the paper's §4.3 "80 % training / 20 % test, each user in
/// only one side" protocol, repeated for significance testing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupShuffleSplit {
    /// Number of independent splits.
    pub n_splits: usize,
    /// Target fraction of samples in the test side.
    pub test_fraction: f64,
    /// Seed of the group shuffling.
    pub seed: u64,
}

impl Splitter for GroupShuffleSplit {
    fn split(&self, data: &Dataset) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.n_splits >= 1, "need at least one split");
        assert!(
            (0.0..1.0).contains(&self.test_fraction) && self.test_fraction > 0.0,
            "test fraction must be in (0, 1)"
        );
        let groups = data.distinct_groups();
        assert!(groups.len() >= 2, "need at least two groups");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let target = (data.len() as f64 * self.test_fraction).round() as usize;

        (0..self.n_splits)
            .map(|_| {
                let mut order = groups.clone();
                order.shuffle(&mut rng);
                let mut test_groups = std::collections::HashSet::new();
                let mut test_size = 0usize;
                for &g in &order {
                    if test_size >= target {
                        break;
                    }
                    let size = data.groups.iter().filter(|&&x| x == g).count();
                    test_groups.insert(g);
                    test_size += size;
                }
                // Never consume every group: keep at least one for training.
                if test_groups.len() == groups.len() {
                    let dropped = *order.last().expect("non-empty groups");
                    test_groups.remove(&dropped);
                }
                let mut train = Vec::new();
                let mut test = Vec::new();
                for (i, g) in data.groups.iter().enumerate() {
                    if test_groups.contains(g) {
                        test.push(i);
                    } else {
                        train.push(i);
                    }
                }
                (train, test)
            })
            .collect()
    }
}

/// Repeated random K-fold: `n_repeats` independent shufflings of a
/// [`KFold`], yielding `n_repeats × n_splits` folds. Used where a single
/// K-fold gives a significance test too few samples (e.g. a one-sample
/// Wilcoxon over five folds can never reach p < 0.03).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeatedKFold {
    /// Folds per repetition.
    pub n_splits: usize,
    /// Number of independent repetitions.
    pub n_repeats: usize,
    /// Base seed; repetition `r` shuffles with `seed + r`.
    pub seed: u64,
}

impl Splitter for RepeatedKFold {
    fn split(&self, data: &Dataset) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.n_repeats >= 1, "need at least one repeat");
        (0..self.n_repeats)
            .flat_map(|r| KFold::new(self.n_splits, self.seed.wrapping_add(r as u64)).split(data))
            .collect()
    }
}

/// One random train/test split: shuffles samples and holds out
/// `test_fraction` of them. Returns `(train_indices, test_indices)`.
///
/// # Panics
/// Panics unless `test_fraction ∈ (0, 1)` produces non-empty sides.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_test = ((data.len() as f64 * test_fraction).round() as usize).clamp(1, data.len() - 1);
    let test = indices.split_off(data.len() - n_test);
    (indices, test)
}

fn contiguous_folds(indices: &[usize], k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let n = indices.len();
    let mut out = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = indices[start..start + size].to_vec();
        let train: Vec<usize> = indices[..start]
            .iter()
            .chain(&indices[start + size..])
            .copied()
            .collect();
        out.push((train, test));
        start += size;
    }
    out
}

fn folds_from_assignment(fold_of: &[usize], k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    (0..k)
        .map(|f| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &fi) in fold_of.iter().enumerate() {
                if fi == f {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, test)
        })
        .collect()
}

/// Scores of one cross-validation fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldScore {
    /// Test accuracy.
    pub accuracy: f64,
    /// Unweighted mean F1 over supported classes.
    pub f1_macro: f64,
    /// Support-weighted mean F1.
    pub f1_weighted: f64,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
}

/// Runs cross-validation: for each fold a fresh classifier is built by
/// `factory` (receiving a per-fold seed derived from `base_seed`), fitted
/// on the training side, and scored on the test side. Folds whose test
/// side is empty are skipped.
///
/// ```
/// use traj_ml::{cross_validate, ClassifierKind, Dataset, KFold};
/// let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
/// let y: Vec<usize> = (0..30).map(|i| usize::from(i >= 15)).collect();
/// let data = Dataset::from_rows(&rows, y, 2, vec![0; 30], vec![]);
///
/// let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
/// let scores = cross_validate(&factory, &data, &KFold::new(3, 1), 0);
/// assert_eq!(scores.len(), 3);
/// assert!(traj_ml::cv::mean_accuracy(&scores) > 0.8);
/// ```
pub fn cross_validate(
    factory: &dyn Fn(u64) -> Box<dyn Classifier>,
    data: &Dataset,
    splitter: &dyn Splitter,
    base_seed: u64,
) -> Vec<FoldScore> {
    let folds = splitter.split(data);
    let mut scores = Vec::with_capacity(folds.len());
    for (fold_idx, (train_idx, test_idx)) in folds.into_iter().enumerate() {
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let mut model = factory(base_seed.wrapping_add(fold_idx as u64));
        model.fit(&train);
        let pred = model.predict(&test);
        let report = ClassificationReport::compute(&test.y, &pred, data.n_classes);
        scores.push(FoldScore {
            accuracy: report.accuracy,
            f1_macro: report.f1_macro(),
            f1_weighted: report.f1_weighted(),
            train_size: train_idx.len(),
            test_size: test_idx.len(),
        });
    }
    scores
}

/// Mean accuracy over folds.
pub fn mean_accuracy(scores: &[FoldScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.accuracy).sum::<f64>() / scores.len() as f64
}

/// Mean weighted F1 over folds.
pub fn mean_f1_weighted(scores: &[FoldScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.f1_weighted).sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use rand::Rng;

    /// Dataset with group structure: each of `n_groups` users has
    /// `per_group` samples, labels alternate by class.
    fn grouped_data(n_groups: u32, per_group: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..n_groups {
            for s in 0..per_group {
                let class = s % 2;
                rows.push(vec![
                    class as f64 * 3.0 + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
                groups.push(g);
            }
        }
        Dataset::from_rows(&rows, y, 2, groups, vec![])
    }

    fn assert_is_partition(folds: &[(Vec<usize>, Vec<usize>)], n: usize) {
        let mut covered = vec![false; n];
        for (train, test) in folds {
            for &i in test {
                assert!(!covered[i], "sample {i} in two test folds");
                covered[i] = true;
            }
            let train_set: std::collections::HashSet<_> = train.iter().collect();
            assert!(test.iter().all(|i| !train_set.contains(i)), "overlap");
            assert_eq!(train.len() + test.len(), n, "fold covers all samples");
        }
        assert!(covered.iter().all(|&b| b), "every sample tested once");
    }

    #[test]
    fn kfold_partitions_cleanly() {
        let data = grouped_data(5, 7, 1);
        let folds = KFold::new(5, 3).split(&data);
        assert_eq!(folds.len(), 5);
        assert_is_partition(&folds, data.len());
    }

    #[test]
    fn kfold_is_deterministic_per_seed() {
        let data = grouped_data(4, 5, 2);
        assert_eq!(KFold::new(4, 9).split(&data), KFold::new(4, 9).split(&data));
        assert_ne!(
            KFold::new(4, 9).split(&data),
            KFold::new(4, 10).split(&data)
        );
    }

    #[test]
    fn unshuffled_kfold_is_contiguous() {
        let data = grouped_data(2, 6, 3);
        let folds = KFold {
            n_splits: 3,
            shuffle: false,
            seed: 0,
        }
        .split(&data);
        assert_eq!(folds[0].1, vec![0, 1, 2, 3]);
        assert_eq!(folds[2].1, vec![8, 9, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "fewer samples than folds")]
    fn kfold_rejects_more_folds_than_samples() {
        let data = grouped_data(1, 3, 4);
        let _ = KFold::new(5, 0).split(&data);
    }

    #[test]
    fn stratified_kfold_preserves_class_balance() {
        let data = grouped_data(10, 10, 5); // 50/50 classes
        let folds = StratifiedKFold {
            n_splits: 5,
            seed: 1,
        }
        .split(&data);
        assert_is_partition(&folds, data.len());
        for (_, test) in &folds {
            let ones = test.iter().filter(|&&i| data.y[i] == 1).count();
            let ratio = ones as f64 / test.len() as f64;
            assert!((ratio - 0.5).abs() < 0.11, "fold class ratio {ratio}");
        }
    }

    #[test]
    fn group_kfold_keeps_users_whole() {
        let data = grouped_data(9, 6, 6);
        let folds = GroupKFold { n_splits: 3 }.split(&data);
        assert_is_partition(&folds, data.len());
        for (train, test) in &folds {
            let test_groups: std::collections::HashSet<u32> =
                test.iter().map(|&i| data.groups[i]).collect();
            let train_groups: std::collections::HashSet<u32> =
                train.iter().map(|&i| data.groups[i]).collect();
            assert!(
                test_groups.is_disjoint(&train_groups),
                "user leaked across a fold"
            );
        }
    }

    #[test]
    fn group_kfold_balances_unequal_groups() {
        // Group sizes 10, 1, 1, 1, 1, 10 into 2 folds → 12/12 split.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for (g, size) in [(0u32, 10usize), (1, 1), (2, 1), (3, 1), (4, 1), (5, 10)] {
            for s in 0..size {
                rows.push(vec![s as f64]);
                y.push(0usize);
                groups.push(g);
            }
        }
        let data = Dataset::from_rows(&rows, y, 1, groups, vec![]);
        let folds = GroupKFold { n_splits: 2 }.split(&data);
        for (_, test) in &folds {
            assert_eq!(test.len(), 12, "greedy balancing equalises folds");
        }
    }

    #[test]
    #[should_panic(expected = "fewer groups than folds")]
    fn group_kfold_rejects_too_few_groups() {
        let data = grouped_data(2, 4, 7);
        let _ = GroupKFold { n_splits: 3 }.split(&data);
    }

    #[test]
    fn group_shuffle_split_respects_fraction_and_purity() {
        let data = grouped_data(20, 5, 8);
        let splits = GroupShuffleSplit {
            n_splits: 10,
            test_fraction: 0.2,
            seed: 4,
        }
        .split(&data);
        assert_eq!(splits.len(), 10);
        for (train, test) in &splits {
            assert_eq!(train.len() + test.len(), data.len());
            let frac = test.len() as f64 / data.len() as f64;
            assert!((0.1..0.4).contains(&frac), "test fraction {frac}");
            let test_groups: std::collections::HashSet<u32> =
                test.iter().map(|&i| data.groups[i]).collect();
            assert!(train
                .iter()
                .all(|&i| !test_groups.contains(&data.groups[i])));
        }
    }

    #[test]
    fn cross_validate_scores_are_sane() {
        let data = grouped_data(8, 12, 9);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let scores = cross_validate(&factory, &data, &KFold::new(4, 1), 0);
        assert_eq!(scores.len(), 4);
        for s in &scores {
            assert!((0.0..=1.0).contains(&s.accuracy));
            assert!((0.0..=1.0).contains(&s.f1_macro));
            assert!((0.0..=1.0).contains(&s.f1_weighted));
            assert_eq!(s.train_size + s.test_size, data.len());
        }
        // Blobs are easy — the tree should do well.
        assert!(mean_accuracy(&scores) > 0.85, "{}", mean_accuracy(&scores));
        assert!(mean_f1_weighted(&scores) > 0.8);
    }

    #[test]
    fn cross_validate_is_reproducible() {
        let data = grouped_data(6, 10, 10);
        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        let a = cross_validate(&factory, &data, &KFold::new(3, 2), 5);
        let b = cross_validate(&factory, &data, &KFold::new(3, 2), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_helpers_handle_empty() {
        assert_eq!(mean_accuracy(&[]), 0.0);
        assert_eq!(mean_f1_weighted(&[]), 0.0);
    }

    #[test]
    fn repeated_kfold_yields_n_repeats_partitions() {
        let data = grouped_data(4, 6, 11);
        let folds = RepeatedKFold {
            n_splits: 3,
            n_repeats: 4,
            seed: 2,
        }
        .split(&data);
        assert_eq!(folds.len(), 12);
        // Each repetition is itself a partition.
        for rep in folds.chunks(3) {
            assert_is_partition(rep, data.len());
        }
        // Repetitions differ (different shuffles).
        assert_ne!(folds[0].1, folds[3].1);
    }

    #[test]
    fn train_test_split_is_disjoint_and_sized() {
        let data = grouped_data(5, 8, 12);
        let (train, test) = train_test_split(&data, 0.25, 3);
        assert_eq!(train.len() + test.len(), data.len());
        assert_eq!(test.len(), 10, "25% of 40");
        let train_set: std::collections::HashSet<_> = train.iter().collect();
        assert!(test.iter().all(|i| !train_set.contains(i)));
        // Deterministic per seed.
        assert_eq!(train_test_split(&data, 0.25, 3), (train, test));
    }

    #[test]
    fn train_test_split_never_empties_a_side() {
        let data = grouped_data(1, 3, 13);
        let (train, test) = train_test_split(&data, 0.01, 0);
        assert!(!test.is_empty());
        assert!(!train.is_empty());
        let (train, test) = train_test_split(&data, 0.99, 0);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn train_test_split_rejects_bad_fraction() {
        let data = grouped_data(1, 3, 14);
        let _ = train_test_split(&data, 1.5, 0);
    }
}
