//! Cross-validation: the evaluation machinery the paper's §4.4 is about.
//!
//! The paper contrasts two schemes:
//!
//! * **random cross-validation** ([`KFold`] with shuffling, or
//!   [`StratifiedKFold`]) — samples are split regardless of which user
//!   produced them, the convention of [Dabiri & Heaslip], [Liu & Lee] and
//!   [Xiao];
//! * **user-oriented cross-validation** ([`GroupKFold`]) — every user's
//!   segments fall entirely in the training *or* the test side of each
//!   fold, the convention of [Endo et al.].
//!
//! Because GPS trajectories are auto-correlated within a user, the random
//! scheme leaks user identity across the split and reports optimistic
//! scores — the paper's Figure 4 finding, which [`cross_validate`] lets
//! you reproduce with any classifier.
//!
//! ## API shape
//!
//! [`Splitter::split`] returns `Result<Folds, SplitError>`: a lazy
//! iterator of owned [`Fold`] structs instead of an eager
//! `Vec<(Vec<usize>, Vec<usize>)>`, and degenerate configurations (fewer
//! samples than folds, fewer groups than folds…) surface as a
//! [`SplitError`] value rather than aborting the process.
//!
//! [`cross_validate`] fits and scores the folds **in parallel** on the
//! shared [`traj_runtime`] pool, one task per fold. Per-fold classifier
//! seeds derive from the fold *index*, so the scores are bit-identical
//! for any thread count (`TRAJ_NUM_THREADS=1` included) — pinned by the
//! `parallel_parity` integration tests.

use crate::binned::BinnedDataset;
use crate::classifier::Classifier;
use crate::dataset::Dataset;
use crate::metrics::ClassificationReport;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One cross-validation fold: owned row indices of each side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training-side row indices.
    pub train: Vec<usize>,
    /// Test-side row indices.
    pub test: Vec<usize>,
}

/// Why a splitter could not produce folds for a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitError {
    /// The requested fold count is below the scheme's minimum.
    TooFewFolds {
        /// Requested fold count.
        n_splits: usize,
        /// The scheme's minimum.
        minimum: usize,
    },
    /// More folds than samples.
    TooFewSamples {
        /// Samples in the dataset.
        samples: usize,
        /// Requested fold count.
        folds: usize,
    },
    /// More folds than distinct groups (users).
    TooFewGroups {
        /// Distinct groups in the dataset.
        groups: usize,
        /// Groups the configuration needs.
        required: usize,
    },
    /// A repeated scheme with zero repetitions.
    TooFewRepeats {
        /// Requested repetition count.
        n_repeats: usize,
    },
    /// The held-out fraction is outside `(0, 1)`.
    BadTestFraction {
        /// The offending fraction.
        fraction: f64,
    },
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitError::TooFewFolds { n_splits, minimum } => {
                write!(f, "need at least {minimum} folds (got {n_splits})")
            }
            SplitError::TooFewSamples { samples, folds } => {
                write!(f, "fewer samples than folds ({samples} < {folds})")
            }
            SplitError::TooFewGroups { groups, required } => {
                write!(f, "fewer groups than folds ({groups} < {required})")
            }
            SplitError::TooFewRepeats { n_repeats } => {
                write!(f, "need at least one repeat (got {n_repeats})")
            }
            SplitError::BadTestFraction { fraction } => {
                write!(f, "test fraction must be in (0, 1), got {fraction}")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// A cross-validation splitter: yields the [`Fold`]s of a dataset.
pub trait Splitter {
    /// The folds of `data`, as a lazy iterator of owned [`Fold`]s.
    /// Implementations must return disjoint train/test pairs whose test
    /// sides cover every usable sample once, and must report degenerate
    /// configurations as a [`SplitError`] instead of panicking.
    fn split(&self, data: &Dataset) -> Result<Folds, SplitError>;
}

/// Lazy iterator of owned [`Fold`]s returned by [`Splitter::split`].
///
/// Each `next()` materialises one fold, so K-fold over n samples holds
/// `O(n)` state rather than the `O(n·k)` of the former eager
/// `Vec<(train, test)>` shape.
#[derive(Debug)]
pub struct Folds {
    inner: FoldsInner,
}

#[derive(Debug)]
enum FoldsInner {
    /// Test folds are contiguous runs of `indices` (K-fold shape).
    Contiguous {
        indices: Vec<usize>,
        k: usize,
        next: usize,
    },
    /// Sample `i` belongs to test fold `fold_of[i]` (stratified/group
    /// shape).
    Assigned {
        fold_of: Vec<usize>,
        k: usize,
        next: usize,
    },
    /// Pre-materialised folds (shuffle-split and repeated schemes).
    Explicit(std::vec::IntoIter<Fold>),
}

impl Folds {
    fn contiguous(indices: Vec<usize>, k: usize) -> Folds {
        Folds {
            inner: FoldsInner::Contiguous {
                indices,
                k,
                next: 0,
            },
        }
    }

    fn from_assignment(fold_of: Vec<usize>, k: usize) -> Folds {
        Folds {
            inner: FoldsInner::Assigned {
                fold_of,
                k,
                next: 0,
            },
        }
    }

    fn explicit(folds: Vec<Fold>) -> Folds {
        Folds {
            inner: FoldsInner::Explicit(folds.into_iter()),
        }
    }
}

impl Iterator for Folds {
    type Item = Fold;

    fn next(&mut self) -> Option<Fold> {
        match &mut self.inner {
            FoldsInner::Contiguous { indices, k, next } => {
                if *next >= *k {
                    return None;
                }
                let f = *next;
                *next += 1;
                let n = indices.len();
                let base = n / *k;
                let extra = n % *k;
                let start = f * base + f.min(extra);
                let size = base + usize::from(f < extra);
                let test = indices[start..start + size].to_vec();
                let train = indices[..start]
                    .iter()
                    .chain(&indices[start + size..])
                    .copied()
                    .collect();
                Some(Fold { train, test })
            }
            FoldsInner::Assigned { fold_of, k, next } => {
                if *next >= *k {
                    return None;
                }
                let f = *next;
                *next += 1;
                let mut train = Vec::new();
                let mut test = Vec::new();
                for (i, &fi) in fold_of.iter().enumerate() {
                    if fi == f {
                        test.push(i);
                    } else {
                        train.push(i);
                    }
                }
                Some(Fold { train, test })
            }
            FoldsInner::Explicit(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.inner {
            FoldsInner::Contiguous { k, next, .. } | FoldsInner::Assigned { k, next, .. } => {
                k - next
            }
            FoldsInner::Explicit(iter) => iter.len(),
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Folds {}

/// Random K-fold: shuffle sample indices, cut into `k` contiguous folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KFold {
    /// Number of folds.
    pub n_splits: usize,
    /// Shuffle before folding (the paper's "random cross-validation").
    pub shuffle: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// A shuffled K-fold with the given seed.
    pub fn new(n_splits: usize, seed: u64) -> Self {
        KFold {
            n_splits,
            shuffle: true,
            seed,
        }
    }
}

impl Splitter for KFold {
    fn split(&self, data: &Dataset) -> Result<Folds, SplitError> {
        if self.n_splits < 2 {
            return Err(SplitError::TooFewFolds {
                n_splits: self.n_splits,
                minimum: 2,
            });
        }
        if data.len() < self.n_splits {
            return Err(SplitError::TooFewSamples {
                samples: data.len(),
                folds: self.n_splits,
            });
        }
        let mut indices: Vec<usize> = (0..data.len()).collect();
        if self.shuffle {
            let mut rng = StdRng::seed_from_u64(self.seed);
            indices.shuffle(&mut rng);
        }
        Ok(Folds::contiguous(indices, self.n_splits))
    }
}

/// Stratified K-fold: class proportions are preserved per fold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratifiedKFold {
    /// Number of folds.
    pub n_splits: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Splitter for StratifiedKFold {
    fn split(&self, data: &Dataset) -> Result<Folds, SplitError> {
        if self.n_splits < 2 {
            return Err(SplitError::TooFewFolds {
                n_splits: self.n_splits,
                minimum: 2,
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut fold_of = vec![0usize; data.len()];
        for class in 0..data.n_classes {
            let mut members: Vec<usize> = (0..data.len()).filter(|&i| data.y[i] == class).collect();
            members.shuffle(&mut rng);
            for (pos, &i) in members.iter().enumerate() {
                fold_of[i] = pos % self.n_splits;
            }
        }
        Ok(Folds::from_assignment(fold_of, self.n_splits))
    }
}

/// User-oriented (group) K-fold: whole groups are assigned to folds,
/// larger groups first onto the currently smallest fold, so every user
/// appears in exactly one test fold — the paper's "cross-validation by
/// dividing users".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupKFold {
    /// Number of folds; must not exceed the number of distinct groups.
    pub n_splits: usize,
}

impl Splitter for GroupKFold {
    fn split(&self, data: &Dataset) -> Result<Folds, SplitError> {
        if self.n_splits < 2 {
            return Err(SplitError::TooFewFolds {
                n_splits: self.n_splits,
                minimum: 2,
            });
        }
        let groups = data.distinct_groups();
        if groups.len() < self.n_splits {
            return Err(SplitError::TooFewGroups {
                groups: groups.len(),
                required: self.n_splits,
            });
        }
        // Count samples per group.
        let mut sizes: Vec<(u32, usize)> = groups
            .iter()
            .map(|&g| (g, data.groups.iter().filter(|&&x| x == g).count()))
            .collect();
        // Largest group first onto the lightest fold (greedy balancing,
        // the scikit-learn GroupKFold strategy).
        sizes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut fold_sizes = vec![0usize; self.n_splits];
        let mut fold_of_group = std::collections::HashMap::new();
        for (g, size) in sizes {
            let lightest = (0..self.n_splits)
                .min_by_key(|&f| fold_sizes[f])
                .expect("non-zero folds");
            fold_sizes[lightest] += size;
            fold_of_group.insert(g, lightest);
        }
        let fold_of: Vec<usize> = data.groups.iter().map(|g| fold_of_group[g]).collect();
        Ok(Folds::from_assignment(fold_of, self.n_splits))
    }
}

/// Repeated random group-aware train/test splits: each split holds out a
/// random subset of groups whose samples total roughly `test_fraction` of
/// the data — the paper's §4.3 "80 % training / 20 % test, each user in
/// only one side" protocol, repeated for significance testing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupShuffleSplit {
    /// Number of independent splits.
    pub n_splits: usize,
    /// Target fraction of samples in the test side.
    pub test_fraction: f64,
    /// Seed of the group shuffling.
    pub seed: u64,
}

impl Splitter for GroupShuffleSplit {
    fn split(&self, data: &Dataset) -> Result<Folds, SplitError> {
        if self.n_splits < 1 {
            return Err(SplitError::TooFewFolds {
                n_splits: self.n_splits,
                minimum: 1,
            });
        }
        if !(self.test_fraction > 0.0 && self.test_fraction < 1.0) {
            return Err(SplitError::BadTestFraction {
                fraction: self.test_fraction,
            });
        }
        let groups = data.distinct_groups();
        if groups.len() < 2 {
            return Err(SplitError::TooFewGroups {
                groups: groups.len(),
                required: 2,
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let target = (data.len() as f64 * self.test_fraction).round() as usize;

        let folds = (0..self.n_splits)
            .map(|_| {
                let mut order = groups.clone();
                order.shuffle(&mut rng);
                let mut test_groups = std::collections::HashSet::new();
                let mut test_size = 0usize;
                for &g in &order {
                    if test_size >= target {
                        break;
                    }
                    let size = data.groups.iter().filter(|&&x| x == g).count();
                    test_groups.insert(g);
                    test_size += size;
                }
                // Never consume every group: keep at least one for training.
                if test_groups.len() == groups.len() {
                    let dropped = *order.last().expect("non-empty groups");
                    test_groups.remove(&dropped);
                }
                let mut train = Vec::new();
                let mut test = Vec::new();
                for (i, g) in data.groups.iter().enumerate() {
                    if test_groups.contains(g) {
                        test.push(i);
                    } else {
                        train.push(i);
                    }
                }
                Fold { train, test }
            })
            .collect();
        Ok(Folds::explicit(folds))
    }
}

/// Repeated random K-fold: `n_repeats` independent shufflings of a
/// [`KFold`], yielding `n_repeats × n_splits` folds. Used where a single
/// K-fold gives a significance test too few samples (e.g. a one-sample
/// Wilcoxon over five folds can never reach p < 0.03).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeatedKFold {
    /// Folds per repetition.
    pub n_splits: usize,
    /// Number of independent repetitions.
    pub n_repeats: usize,
    /// Base seed; repetition `r` shuffles with `seed + r`.
    pub seed: u64,
}

impl Splitter for RepeatedKFold {
    fn split(&self, data: &Dataset) -> Result<Folds, SplitError> {
        if self.n_repeats < 1 {
            return Err(SplitError::TooFewRepeats {
                n_repeats: self.n_repeats,
            });
        }
        let mut folds = Vec::with_capacity(self.n_repeats * self.n_splits);
        for r in 0..self.n_repeats {
            let repeat = KFold::new(self.n_splits, self.seed.wrapping_add(r as u64)).split(data)?;
            folds.extend(repeat);
        }
        Ok(Folds::explicit(folds))
    }
}

/// One random train/test split: shuffles samples and holds out
/// `test_fraction` of them. Returns `(train_indices, test_indices)`.
///
/// # Panics
/// Panics unless `test_fraction ∈ (0, 1)` produces non-empty sides.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_test = ((data.len() as f64 * test_fraction).round() as usize).clamp(1, data.len() - 1);
    let test = indices.split_off(data.len() - n_test);
    (indices, test)
}

/// Scores of one cross-validation fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldScore {
    /// Test accuracy.
    pub accuracy: f64,
    /// Unweighted mean F1 over supported classes.
    pub f1_macro: f64,
    /// Support-weighted mean F1.
    pub f1_weighted: f64,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
}

/// Runs cross-validation: for each fold a fresh classifier is built by
/// `factory` (receiving a per-fold seed derived from `base_seed`), fitted
/// on the training side, and scored on the test side. Folds whose test
/// (or train) side is empty are skipped.
///
/// Folds run **in parallel**, one [`traj_runtime`] task each. Per-fold
/// seeds derive from the fold index, so the returned scores are
/// bit-identical for any thread count.
///
/// When the factory's classifier reports
/// [`Classifier::benefits_from_binning`], the dataset is quantized **once**
/// here and every fold's training run indexes into the shared
/// [`BinnedDataset`] instead of re-binning.
///
/// ```
/// use traj_ml::{cross_validate, ClassifierKind, Dataset, KFold};
/// let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
/// let y: Vec<usize> = (0..30).map(|i| usize::from(i >= 15)).collect();
/// let data = Dataset::from_rows(&rows, y, 2, vec![0; 30], vec![]);
///
/// let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
/// let scores = cross_validate(&factory, &data, &KFold::new(3, 1), 0).unwrap();
/// assert_eq!(scores.len(), 3);
/// assert!(traj_ml::cv::mean_accuracy(&scores) > 0.8);
/// ```
pub fn cross_validate<F, S>(
    factory: &F,
    data: &Dataset,
    splitter: &S,
    base_seed: u64,
) -> Result<Vec<FoldScore>, SplitError>
where
    F: Fn(u64) -> Box<dyn Classifier> + Sync + ?Sized,
    S: Splitter + ?Sized,
{
    let binned = factory(base_seed)
        .benefits_from_binning(data.len())
        .then(|| BinnedDataset::from_dataset(data));
    cross_validate_prebinned(factory, data, binned.as_ref(), splitter, base_seed)
}

/// [`cross_validate`] against a caller-supplied binned matrix covering
/// `data` (or `None` to skip histogram training). Feature-selection layers
/// use this to quantize the full feature space once and re-slice it per
/// candidate subset instead of re-binning on every CV run.
pub fn cross_validate_prebinned<F, S>(
    factory: &F,
    data: &Dataset,
    binned: Option<&BinnedDataset>,
    splitter: &S,
    base_seed: u64,
) -> Result<Vec<FoldScore>, SplitError>
where
    F: Fn(u64) -> Box<dyn Classifier> + Sync + ?Sized,
    S: Splitter + ?Sized,
{
    let folds: Vec<Fold> = splitter.split(data)?.collect();
    let scores = traj_runtime::parallel_map(&folds, |fold_idx, fold| {
        if fold.test.is_empty() || fold.train.is_empty() {
            return None;
        }
        let mut model = factory(base_seed.wrapping_add(fold_idx as u64));
        model.fit_subset(data, &fold.train, binned);
        // Batch scoring through the compiled path: tree ensembles are
        // lowered once per fold and traverse all test rows level by level
        // (reusing `binned` codes where the thresholds are bin edges).
        let mut out = crate::compiled::Predictions::default();
        model
            .predict_rows_into(data, binned, &fold.test, &mut out)
            .expect("model was fitted above");
        let test_y: Vec<usize> = fold.test.iter().map(|&i| data.y[i]).collect();
        let report = ClassificationReport::compute(&test_y, out.classes(), data.n_classes);
        Some(FoldScore {
            accuracy: report.accuracy,
            f1_macro: report.f1_macro(),
            f1_weighted: report.f1_weighted(),
            train_size: fold.train.len(),
            test_size: fold.test.len(),
        })
    });
    Ok(scores.into_iter().flatten().collect())
}

/// Mean accuracy over folds.
pub fn mean_accuracy(scores: &[FoldScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.accuracy).sum::<f64>() / scores.len() as f64
}

/// Mean weighted F1 over folds.
pub fn mean_f1_weighted(scores: &[FoldScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.f1_weighted).sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use rand::Rng;

    fn folds_of<S: Splitter>(splitter: &S, data: &Dataset) -> Vec<Fold> {
        splitter.split(data).expect("valid split").collect()
    }

    /// Dataset with group structure: each of `n_groups` users has
    /// `per_group` samples, labels alternate by class.
    fn grouped_data(n_groups: u32, per_group: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..n_groups {
            for s in 0..per_group {
                let class = s % 2;
                rows.push(vec![
                    class as f64 * 3.0 + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
                groups.push(g);
            }
        }
        Dataset::from_rows(&rows, y, 2, groups, vec![])
    }

    fn assert_is_partition(folds: &[Fold], n: usize) {
        let mut covered = vec![false; n];
        for fold in folds {
            for &i in &fold.test {
                assert!(!covered[i], "sample {i} in two test folds");
                covered[i] = true;
            }
            let train_set: std::collections::HashSet<_> = fold.train.iter().collect();
            assert!(fold.test.iter().all(|i| !train_set.contains(i)), "overlap");
            assert_eq!(
                fold.train.len() + fold.test.len(),
                n,
                "fold covers all samples"
            );
        }
        assert!(covered.iter().all(|&b| b), "every sample tested once");
    }

    #[test]
    fn kfold_partitions_cleanly() {
        let data = grouped_data(5, 7, 1);
        let folds = folds_of(&KFold::new(5, 3), &data);
        assert_eq!(folds.len(), 5);
        assert_is_partition(&folds, data.len());
    }

    #[test]
    fn folds_iterator_is_lazy_and_exact_size() {
        let data = grouped_data(4, 6, 1);
        let mut folds = KFold::new(4, 3).split(&data).unwrap();
        assert_eq!(folds.len(), 4);
        let first = folds.next().expect("first fold");
        assert_eq!(first.train.len() + first.test.len(), data.len());
        assert_eq!(folds.len(), 3, "ExactSizeIterator tracks consumption");
        assert_eq!(folds.count(), 3);
    }

    #[test]
    fn kfold_is_deterministic_per_seed() {
        let data = grouped_data(4, 5, 2);
        assert_eq!(
            folds_of(&KFold::new(4, 9), &data),
            folds_of(&KFold::new(4, 9), &data)
        );
        assert_ne!(
            folds_of(&KFold::new(4, 9), &data),
            folds_of(&KFold::new(4, 10), &data)
        );
    }

    #[test]
    fn unshuffled_kfold_is_contiguous() {
        let data = grouped_data(2, 6, 3);
        let folds = folds_of(
            &KFold {
                n_splits: 3,
                shuffle: false,
                seed: 0,
            },
            &data,
        );
        assert_eq!(folds[0].test, vec![0, 1, 2, 3]);
        assert_eq!(folds[2].test, vec![8, 9, 10, 11]);
    }

    #[test]
    fn kfold_rejects_more_folds_than_samples() {
        let data = grouped_data(1, 3, 4);
        let err = KFold::new(5, 0).split(&data).expect_err("must reject");
        assert_eq!(
            err,
            SplitError::TooFewSamples {
                samples: 3,
                folds: 5
            }
        );
        assert!(err.to_string().contains("fewer samples than folds"));
    }

    #[test]
    fn kfold_rejects_single_fold() {
        let data = grouped_data(2, 5, 4);
        assert_eq!(
            KFold::new(1, 0).split(&data).expect_err("must reject"),
            SplitError::TooFewFolds {
                n_splits: 1,
                minimum: 2
            }
        );
    }

    #[test]
    fn stratified_kfold_preserves_class_balance() {
        let data = grouped_data(10, 10, 5); // 50/50 classes
        let folds = folds_of(
            &StratifiedKFold {
                n_splits: 5,
                seed: 1,
            },
            &data,
        );
        assert_is_partition(&folds, data.len());
        for fold in &folds {
            let ones = fold.test.iter().filter(|&&i| data.y[i] == 1).count();
            let ratio = ones as f64 / fold.test.len() as f64;
            assert!((ratio - 0.5).abs() < 0.11, "fold class ratio {ratio}");
        }
    }

    #[test]
    fn group_kfold_keeps_users_whole() {
        let data = grouped_data(9, 6, 6);
        let folds = folds_of(&GroupKFold { n_splits: 3 }, &data);
        assert_is_partition(&folds, data.len());
        for fold in &folds {
            let test_groups: std::collections::HashSet<u32> =
                fold.test.iter().map(|&i| data.groups[i]).collect();
            let train_groups: std::collections::HashSet<u32> =
                fold.train.iter().map(|&i| data.groups[i]).collect();
            assert!(
                test_groups.is_disjoint(&train_groups),
                "user leaked across a fold"
            );
        }
    }

    #[test]
    fn group_kfold_balances_unequal_groups() {
        // Group sizes 10, 1, 1, 1, 1, 10 into 2 folds → 12/12 split.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for (g, size) in [(0u32, 10usize), (1, 1), (2, 1), (3, 1), (4, 1), (5, 10)] {
            for s in 0..size {
                rows.push(vec![s as f64]);
                y.push(0usize);
                groups.push(g);
            }
        }
        let data = Dataset::from_rows(&rows, y, 1, groups, vec![]);
        let folds = folds_of(&GroupKFold { n_splits: 2 }, &data);
        for fold in &folds {
            assert_eq!(fold.test.len(), 12, "greedy balancing equalises folds");
        }
    }

    #[test]
    fn group_kfold_rejects_too_few_groups() {
        let data = grouped_data(2, 4, 7);
        let err = GroupKFold { n_splits: 3 }
            .split(&data)
            .expect_err("must reject");
        assert_eq!(
            err,
            SplitError::TooFewGroups {
                groups: 2,
                required: 3
            }
        );
        assert!(err.to_string().contains("fewer groups than folds"));
    }

    #[test]
    fn group_shuffle_split_respects_fraction_and_purity() {
        let data = grouped_data(20, 5, 8);
        let splits = folds_of(
            &GroupShuffleSplit {
                n_splits: 10,
                test_fraction: 0.2,
                seed: 4,
            },
            &data,
        );
        assert_eq!(splits.len(), 10);
        for fold in &splits {
            assert_eq!(fold.train.len() + fold.test.len(), data.len());
            let frac = fold.test.len() as f64 / data.len() as f64;
            assert!((0.1..0.4).contains(&frac), "test fraction {frac}");
            let test_groups: std::collections::HashSet<u32> =
                fold.test.iter().map(|&i| data.groups[i]).collect();
            assert!(fold
                .train
                .iter()
                .all(|&i| !test_groups.contains(&data.groups[i])));
        }
    }

    #[test]
    fn group_shuffle_split_rejects_bad_fraction() {
        let data = grouped_data(4, 5, 8);
        let err = GroupShuffleSplit {
            n_splits: 1,
            test_fraction: 1.5,
            seed: 0,
        }
        .split(&data)
        .expect_err("must reject");
        assert_eq!(err, SplitError::BadTestFraction { fraction: 1.5 });
    }

    #[test]
    fn cross_validate_scores_are_sane() {
        let data = grouped_data(8, 12, 9);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let scores = cross_validate(&factory, &data, &KFold::new(4, 1), 0).unwrap();
        assert_eq!(scores.len(), 4);
        for s in &scores {
            assert!((0.0..=1.0).contains(&s.accuracy));
            assert!((0.0..=1.0).contains(&s.f1_macro));
            assert!((0.0..=1.0).contains(&s.f1_weighted));
            assert_eq!(s.train_size + s.test_size, data.len());
        }
        // Blobs are easy — the tree should do well.
        assert!(mean_accuracy(&scores) > 0.85, "{}", mean_accuracy(&scores));
        assert!(mean_f1_weighted(&scores) > 0.8);
    }

    #[test]
    fn cross_validate_is_reproducible() {
        let data = grouped_data(6, 10, 10);
        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        let a = cross_validate(&factory, &data, &KFold::new(3, 2), 5).unwrap();
        let b = cross_validate(&factory, &data, &KFold::new(3, 2), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cross_validate_surfaces_split_errors() {
        let data = grouped_data(1, 3, 10);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let err = cross_validate(&factory, &data, &KFold::new(5, 2), 5).expect_err("bad split");
        assert_eq!(
            err,
            SplitError::TooFewSamples {
                samples: 3,
                folds: 5
            }
        );
    }

    #[test]
    fn cross_validate_accepts_dyn_splitters() {
        let data = grouped_data(6, 8, 11);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter: &dyn Splitter = &KFold::new(3, 1);
        let scores = cross_validate(&factory, &data, splitter, 0).unwrap();
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn mean_helpers_handle_empty() {
        assert_eq!(mean_accuracy(&[]), 0.0);
        assert_eq!(mean_f1_weighted(&[]), 0.0);
    }

    #[test]
    fn repeated_kfold_yields_n_repeats_partitions() {
        let data = grouped_data(4, 6, 11);
        let folds = folds_of(
            &RepeatedKFold {
                n_splits: 3,
                n_repeats: 4,
                seed: 2,
            },
            &data,
        );
        assert_eq!(folds.len(), 12);
        // Each repetition is itself a partition.
        for rep in folds.chunks(3) {
            assert_is_partition(rep, data.len());
        }
        // Repetitions differ (different shuffles).
        assert_ne!(folds[0].test, folds[3].test);
    }

    #[test]
    fn repeated_kfold_rejects_zero_repeats() {
        let data = grouped_data(4, 6, 11);
        assert_eq!(
            RepeatedKFold {
                n_splits: 3,
                n_repeats: 0,
                seed: 2,
            }
            .split(&data)
            .expect_err("must reject"),
            SplitError::TooFewRepeats { n_repeats: 0 }
        );
    }

    #[test]
    fn train_test_split_is_disjoint_and_sized() {
        let data = grouped_data(5, 8, 12);
        let (train, test) = train_test_split(&data, 0.25, 3);
        assert_eq!(train.len() + test.len(), data.len());
        assert_eq!(test.len(), 10, "25% of 40");
        let train_set: std::collections::HashSet<_> = train.iter().collect();
        assert!(test.iter().all(|i| !train_set.contains(i)));
        // Deterministic per seed.
        assert_eq!(train_test_split(&data, 0.25, 3), (train, test));
    }

    #[test]
    fn train_test_split_never_empties_a_side() {
        let data = grouped_data(1, 3, 13);
        let (train, test) = train_test_split(&data, 0.01, 0);
        assert!(!test.is_empty());
        assert!(!train.is_empty());
        let (train, test) = train_test_split(&data, 0.99, 0);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn train_test_split_rejects_bad_fraction() {
        let data = grouped_data(1, 3, 14);
        let _ = train_test_split(&data, 1.5, 0);
    }
}
