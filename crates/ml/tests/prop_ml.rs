//! Property-based tests over the ML stack: classifiers stay sane for
//! arbitrary well-formed data, metrics respect their bounds, and the
//! statistical tests return lawful p-values.

use proptest::prelude::*;
use traj_ml::boosting::{GbdtConfig, GradientBoosting};
use traj_ml::cv::{train_test_split, KFold, Splitter};
use traj_ml::forest::ForestConfig;
use traj_ml::metrics::{cohen_kappa, ClassificationReport};
use traj_ml::stats_tests::{
    chi_square_sf, friedman_test, normal_cdf, wilcoxon_signed_rank, Alternative,
};
use traj_ml::tree::{DecisionTree, TreeConfig};
use traj_ml::{Classifier, Dataset, RandomForest};

/// Arbitrary small classification dataset: 2–4 classes, 2–4 features,
/// 12–60 samples, values in a modest range.
fn arbitrary_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..5, 2usize..5, 12usize..60, any::<u64>()).prop_flat_map(
        |(n_classes, n_features, n, seed)| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(-100.0..100.0f64, n_features),
                    n,
                ),
                proptest::collection::vec(0..n_classes, n),
                Just(seed),
                Just(n_classes),
            )
                .prop_map(move |(rows, y, _seed, n_classes)| {
                    let groups: Vec<u32> = (0..rows.len() as u32).map(|i| i % 5).collect();
                    Dataset::from_rows(&rows, y, n_classes, groups, vec![])
                })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_predictions_are_valid_classes(data in arbitrary_dataset()) {
        let mut tree = DecisionTree::new(TreeConfig::default());
        Classifier::fit(&mut tree, &data);
        for p in Classifier::predict(&tree, &data) {
            prop_assert!(p < data.n_classes);
        }
    }

    #[test]
    fn forest_predictions_are_valid_classes(data in arbitrary_dataset()) {
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 5,
            ..ForestConfig::default()
        });
        Classifier::fit(&mut forest, &data);
        for p in Classifier::predict(&forest, &data) {
            prop_assert!(p < data.n_classes);
        }
        let imp = forest.feature_importances();
        prop_assert_eq!(imp.len(), data.n_features());
        let sum: f64 = imp.iter().sum();
        prop_assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn gbdt_probabilities_are_distributions(data in arbitrary_dataset()) {
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 2,
            ..GbdtConfig::default()
        });
        Classifier::fit(&mut gbdt, &data);
        for i in 0..data.len().min(10) {
            let p = gbdt.predict_proba_row(data.row(i));
            prop_assert_eq!(p.len(), data.n_classes);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn report_metrics_are_bounded(data in arbitrary_dataset()) {
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: Some(3),
            ..TreeConfig::default()
        });
        Classifier::fit(&mut tree, &data);
        let pred = Classifier::predict(&tree, &data);
        let report = ClassificationReport::compute(&data.y, &pred, data.n_classes);
        prop_assert!((0.0..=1.0).contains(&report.accuracy));
        prop_assert!((0.0..=1.0).contains(&report.f1_macro()));
        prop_assert!((0.0..=1.0).contains(&report.f1_weighted()));
        for c in 0..data.n_classes {
            prop_assert!((0.0..=1.0).contains(&report.precision[c]));
            prop_assert!((0.0..=1.0).contains(&report.recall[c]));
            prop_assert!((0.0..=1.0).contains(&report.f1[c]));
        }
        let kappa = cohen_kappa(&data.y, &pred, data.n_classes);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&kappa), "kappa {}", kappa);
        // F1-weighted never exceeds... no fixed relation with accuracy;
        // but support sums to n.
        let support: usize = report.support.iter().sum();
        prop_assert_eq!(support, data.len());
    }

    #[test]
    fn kfold_and_split_partition(data in arbitrary_dataset(), folds in 2usize..5) {
        prop_assume!(data.len() >= folds);
        let splits: Vec<_> = KFold::new(folds, 7).split(&data).unwrap().collect();
        let mut seen = vec![false; data.len()];
        for fold in &splits {
            prop_assert_eq!(fold.train.len() + fold.test.len(), data.len());
            for &i in &fold.test {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));

        let (train, test) = train_test_split(&data, 0.3, 7);
        prop_assert_eq!(train.len() + test.len(), data.len());
    }
}

proptest! {
    #[test]
    fn wilcoxon_p_values_are_lawful(
        diffs in proptest::collection::vec(-10.0..10.0f64, 3..40)
    ) {
        prop_assume!(diffs.iter().any(|&d| d != 0.0));
        let zeros = vec![0.0; diffs.len()];
        for alt in [Alternative::TwoSided, Alternative::Greater, Alternative::Less] {
            let r = wilcoxon_signed_rank(&diffs, &zeros, alt);
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            prop_assert!(r.w_plus >= 0.0 && r.w_minus >= 0.0);
            let total = r.n_effective as f64 * (r.n_effective as f64 + 1.0) / 2.0;
            prop_assert!((r.w_plus + r.w_minus - total).abs() < 1e-9);
        }
        // Greater and Less are complementary up to the point mass at W+.
        let g = wilcoxon_signed_rank(&diffs, &zeros, Alternative::Greater);
        let l = wilcoxon_signed_rank(&diffs, &zeros, Alternative::Less);
        prop_assert!(g.p_value + l.p_value >= 1.0 - 1e-9);
    }

    #[test]
    fn friedman_p_is_lawful(
        blocks in 2usize..12,
        treatments in 2usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m: Vec<Vec<f64>> = (0..treatments)
            .map(|_| (0..blocks).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let r = friedman_test(&m);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.statistic >= 0.0);
        prop_assert_eq!(r.df, treatments - 1);
        let rank_sum: f64 = r.mean_ranks.iter().sum();
        let expected = treatments as f64 * (treatments as f64 + 1.0) / 2.0;
        prop_assert!((rank_sum - expected).abs() < 1e-9);
    }

    #[test]
    fn chi_square_sf_is_monotone(df in 1usize..10, x1 in 0.0..30.0f64, x2 in 0.0..30.0f64) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(chi_square_sf(lo, df) >= chi_square_sf(hi, df) - 1e-9);
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric(z in -6.0..6.0f64) {
        prop_assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
        prop_assert!(normal_cdf(z) <= normal_cdf(z + 0.1) + 1e-12);
    }
}

#[test]
fn classifiers_survive_constant_features() {
    // Every feature identical: no split exists anywhere; all models must
    // still fit and predict the majority class.
    let rows: Vec<Vec<f64>> = (0..30).map(|_| vec![5.0, 5.0]).collect();
    let mut y = vec![0usize; 20];
    y.extend(vec![1usize; 10]);
    let data = Dataset::from_rows(&rows, y, 2, vec![0; 30], vec![]);
    for kind in traj_ml::ClassifierKind::PAPER_SIX {
        let mut model = kind.build(1);
        model.fit(&data);
        let pred = model.predict(&data);
        assert_eq!(pred.len(), 30, "{kind}");
        assert!(pred.iter().all(|&p| p < 2), "{kind}");
    }
}

#[test]
fn classifiers_survive_single_class_data() {
    let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
    let data = Dataset::from_rows(&rows, vec![1; 20], 3, vec![0; 20], vec![]);
    for kind in traj_ml::ClassifierKind::PAPER_SIX {
        let mut model = kind.build(1);
        model.fit(&data);
        let pred = model.predict(&data);
        // A single-class training set must be predicted perfectly.
        assert!(pred.iter().all(|&p| p == 1), "{kind}: {pred:?}");
    }
}

#[test]
fn classifiers_survive_duplicate_rows() {
    let rows: Vec<Vec<f64>> = (0..24).map(|i| vec![(i % 2) as f64]).collect();
    let y: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let data = Dataset::from_rows(&rows, y.clone(), 2, vec![0; 24], vec![]);
    for kind in traj_ml::ClassifierKind::PAPER_SIX {
        let mut model = kind.build(1);
        model.fit(&data);
        let acc = traj_ml::accuracy(&y, &model.predict(&data));
        assert!(acc > 0.9, "{kind}: {acc}");
    }
}
