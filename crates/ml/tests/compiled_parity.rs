//! Bit-parity contract of the compiled batch path: lowering a fitted
//! ensemble to flat SoA arrays and traversing it level-by-level must
//! reproduce the interpreted per-row walkers *exactly* — same classes,
//! same scores to the last bit — for every model kind, split algorithm
//! and input, including NaN and out-of-bin-range rows the training data
//! never contained.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_ml::boosting::{GbdtConfig, GradientBoosting};
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::tree::{DecisionTree, TreeConfig};
use traj_ml::{
    BatchPredictor, BinnedDataset, Classifier, ClassifierKind, CompiledModel, Dataset, ErasedModel,
    PredictError, Predictions, RowMatrix, SplitAlgo,
};

/// Overlapping blobs: big enough that a forced-`Hist` fit mixes
/// histogram nodes with the exact-fallback nodes (< 256 rows) whose
/// midpoint thresholds are not bin boundaries.
fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for class in 0..4usize {
        let center = class as f64 * 1.5;
        for s in 0..n_per_class {
            rows.push(vec![
                center + rng.gen_range(-1.2..1.2),
                -center + rng.gen_range(-1.2..1.2),
                (s % 7) as f64 + rng.gen_range(-0.3..0.3),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(class);
        }
    }
    let n = rows.len();
    Dataset::from_rows(&rows, y, 4, vec![0; n], vec![])
}

fn assert_bit_equal_scores(compiled: &[f64], interpreted: &[f64], what: &str) {
    assert_eq!(compiled.len(), interpreted.len(), "{what}: score width");
    for (i, (c, r)) in compiled.iter().zip(interpreted).enumerate() {
        assert_eq!(
            c.to_bits(),
            r.to_bits(),
            "{what}: score {i} differs ({c} vs {r})"
        );
    }
}

/// Compiled predictions of `model` on `rows`, classes + per-row scores.
fn compiled_predict(model: &CompiledModel, rows: &RowMatrix) -> Predictions {
    let mut out = Predictions::new();
    model.predict_into(rows, &mut out).expect("fitted model");
    out
}

#[test]
fn forest_compiled_matches_interpreted_bit_for_bit() {
    for algo in [SplitAlgo::Exact, SplitAlgo::Hist] {
        let data = blob_data(160, 11);
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 15,
            seed: 3,
            split_algo: algo,
            ..ForestConfig::default()
        });
        forest.fit(&data);

        let compiled = CompiledModel::from_forest(&forest, None).expect("fitted");
        let rows = RowMatrix::from_dataset(&data);
        let out = compiled_predict(&compiled, &rows);
        for i in 0..data.len() {
            assert_eq!(out.class(i), forest.predict_row(data.row(i)), "{algo:?}");
            assert_bit_equal_scores(
                out.scores(i).expect("forest scores"),
                &forest.predict_proba_row(data.row(i)),
                &format!("forest {algo:?} row {i}"),
            );
        }
    }
}

#[test]
fn tree_compiled_matches_interpreted_bit_for_bit() {
    for algo in [SplitAlgo::Exact, SplitAlgo::Hist] {
        let data = blob_data(160, 12);
        let mut tree = DecisionTree::new(TreeConfig {
            split_algo: algo,
            ..TreeConfig::default()
        });
        tree.fit(&data);

        let compiled = CompiledModel::from_tree(&tree, None).expect("fitted");
        let out = compiled_predict(&compiled, &RowMatrix::from_dataset(&data));
        for i in 0..data.len() {
            assert_eq!(out.class(i), tree.predict_row(data.row(i)), "{algo:?}");
            assert_bit_equal_scores(
                out.scores(i).expect("leaf distribution"),
                &tree.predict_proba_row(data.row(i)),
                &format!("tree {algo:?} row {i}"),
            );
        }
    }
}

#[test]
fn gbdt_compiled_matches_interpreted_bit_for_bit() {
    for algo in [SplitAlgo::Exact, SplitAlgo::Hist] {
        let data = blob_data(160, 13);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 8,
            max_depth: 4,
            split_algo: algo,
            ..GbdtConfig::default()
        });
        gbdt.fit(&data);

        let compiled = CompiledModel::from_gbdt(&gbdt, None).expect("fitted");
        let out = compiled_predict(&compiled, &RowMatrix::from_dataset(&data));
        for i in 0..data.len() {
            assert_eq!(out.class(i), gbdt.predict_row(data.row(i)), "{algo:?}");
            assert_bit_equal_scores(
                out.scores(i).expect("softmax scores"),
                &gbdt.predict_proba_row(data.row(i)),
                &format!("gbdt {algo:?} row {i}"),
            );
        }
    }
}

#[test]
fn binned_traversal_matches_raw_traversal() {
    // The quantize-once path: predict through u8 bin codes where the
    // thresholds are bin edges, raw f64 everywhere else. Must agree with
    // both the raw compiled path and the interpreted walkers.
    let data = blob_data(160, 14);
    let binned = BinnedDataset::from_dataset(&data);
    let ids: Vec<usize> = (0..data.len()).collect();

    for kind in [
        ClassifierKind::RandomForest,
        ClassifierKind::DecisionTree,
        ClassifierKind::XgBoost,
    ] {
        let mut model = kind.build(4);
        model.fit_subset(&data, &ids, Some(&binned));

        let mut with_bins = Predictions::new();
        model
            .predict_rows_into(&data, Some(&binned), &ids, &mut with_bins)
            .expect("fitted");
        let mut without = Predictions::new();
        model
            .predict_rows_into(&data, None, &ids, &mut without)
            .expect("fitted");

        assert_eq!(with_bins.classes(), without.classes(), "{kind}");
        for i in 0..ids.len() {
            assert_eq!(with_bins.class(i), model.predict_row(data.row(i)), "{kind}");
            if let (Some(a), Some(b)) = (with_bins.scores(i), without.scores(i)) {
                assert_bit_equal_scores(a, b, &format!("{kind} row {i}"));
            }
        }
    }
}

#[test]
fn erased_models_agree_with_per_row_walkers() {
    let data = blob_data(60, 15);
    let rows = RowMatrix::from_dataset(&data);
    let kinds = [
        ClassifierKind::XgBoost,
        ClassifierKind::Svm,
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::NeuralNetwork,
        ClassifierKind::AdaBoost,
        ClassifierKind::Knn,
    ];
    for kind in kinds {
        let mut model = ErasedModel::new(kind, 9);
        Classifier::fit(&mut model, &data);
        let out = model.try_predict(&rows).expect("fitted");
        assert_eq!(out.len(), data.len());
        for i in 0..data.len() {
            assert_eq!(
                out.class(i),
                Classifier::predict_row(&model, data.row(i)),
                "{kind}"
            );
            assert_bit_equal_scores(
                out.scores(i).expect("scores for every kind"),
                &model.predict_scores_row(data.row(i)),
                &format!("{kind} row {i}"),
            );
        }
    }
}

#[test]
fn unfitted_models_return_not_fitted_instead_of_panicking() {
    let rows = RowMatrix::from_row(&[0.0, 0.0, 0.0, 0.0]);
    let kinds = [
        ClassifierKind::XgBoost,
        ClassifierKind::Svm,
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::NeuralNetwork,
        ClassifierKind::AdaBoost,
        ClassifierKind::Knn,
    ];
    for kind in kinds {
        let model = ErasedModel::new(kind, 0);
        let mut out = Predictions::new();
        assert_eq!(
            model.predict_into(&rows, &mut out),
            Err(PredictError::NotFitted),
            "{kind}"
        );
    }
}

#[test]
fn narrow_rows_return_wrong_width() {
    let data = blob_data(30, 16);
    let mut forest = RandomForest::with_estimators(3, 0);
    forest.fit(&data);
    let compiled = CompiledModel::from_forest(&forest, None).expect("fitted");
    let mut out = Predictions::new();
    assert_eq!(
        compiled.predict_into(&RowMatrix::from_row(&[1.0, 2.0]), &mut out),
        Err(PredictError::WrongWidth {
            expected: 4,
            got: 2
        })
    );
    // Wider rows are accepted, matching the per-row walkers (which only
    // index the features the trees reference).
    assert!(compiled
        .predict_into(&RowMatrix::from_row(&[0.0; 10]), &mut out)
        .is_ok());
}

#[test]
fn single_leaf_tree_predicts_everything_including_nan() {
    // A pure training set fits to one leaf; the compiled form is a
    // single self-looping node that must answer any row, NaN included.
    let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
    let data = Dataset::from_rows(&rows, vec![2, 2, 2], 3, vec![0; 3], vec![]);
    let mut tree = DecisionTree::new(TreeConfig::default());
    tree.fit(&data);

    let compiled = CompiledModel::from_tree(&tree, None).expect("fitted");
    assert_eq!(compiled.n_nodes(), 1);
    let mut batch = RowMatrix::with_width(2);
    batch.push_row(&[f64::NAN, f64::NAN]);
    batch.push_row(&[f64::INFINITY, f64::NEG_INFINITY]);
    batch.push_row(&[0.0, 0.0]);
    let out = compiled_predict(&compiled, &batch);
    assert_eq!(out.classes(), &[2, 2, 2]);
}

#[test]
fn max_depth_trees_traverse_to_the_bottom() {
    // An alternating one-feature staircase forces splits all the way
    // down; the level-synchronous traversal must walk every level.
    let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
    let y: Vec<usize> = (0..64).map(|i| i % 2).collect();
    let data = Dataset::from_rows(&rows, y, 2, vec![0; 64], vec![]);
    let mut tree = DecisionTree::new(TreeConfig {
        max_depth: None,
        ..TreeConfig::default()
    });
    tree.fit(&data);

    let compiled = CompiledModel::from_tree(&tree, None).expect("fitted");
    let out = compiled_predict(&compiled, &RowMatrix::from_dataset(&data));
    for i in 0..data.len() {
        assert_eq!(out.class(i), tree.predict_row(data.row(i)), "row {i}");
        assert_eq!(out.class(i), i % 2, "memorised the staircase");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rows with arbitrary values — NaN, infinities, magnitudes far
    /// outside every bin range — route identically through the compiled
    /// and interpreted walkers for all three tree-model kinds.
    #[test]
    fn hostile_rows_agree_with_interpreted(
        base in proptest::collection::vec(
            proptest::collection::vec(-1e6..1e6f64, 4),
            12,
        ),
        special_cells in proptest::collection::vec(0..48usize, 6),
        seed in 0u64..100,
    ) {
        const SPECIALS: [f64; 3] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut rows = base;
        for (k, &cell) in special_cells.iter().enumerate() {
            rows[cell / 4][cell % 4] = SPECIALS[k % SPECIALS.len()];
        }
        let data = blob_data(40, seed);
        let batch = RowMatrix::from_rows(&rows);

        let mut forest = RandomForest::with_estimators(5, seed);
        forest.fit(&data);
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&data);
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 3,
            max_depth: 3,
            seed,
            ..GbdtConfig::default()
        });
        gbdt.fit(&data);

        let cf = CompiledModel::from_forest(&forest, None).expect("fitted");
        let ct = CompiledModel::from_tree(&tree, None).expect("fitted");
        let cg = CompiledModel::from_gbdt(&gbdt, None).expect("fitted");
        let (of, ot, og) = (
            compiled_predict(&cf, &batch),
            compiled_predict(&ct, &batch),
            compiled_predict(&cg, &batch),
        );
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(of.class(i), forest.predict_row(row));
            prop_assert_eq!(ot.class(i), tree.predict_row(row));
            prop_assert_eq!(og.class(i), gbdt.predict_row(row));
            assert_bit_equal_scores(
                of.scores(i).expect("forest"),
                &forest.predict_proba_row(row),
                "proptest forest",
            );
            assert_bit_equal_scores(
                og.scores(i).expect("gbdt"),
                &gbdt.predict_proba_row(row),
                "proptest gbdt",
            );
        }
    }
}
