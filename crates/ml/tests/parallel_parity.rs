//! Determinism contract of the parallel paths: every result must be
//! bit-identical whether the shared pool runs one worker or many.
//!
//! These tests pin the contract in-process with [`traj_runtime::Runtime::install`]
//! (a thread-local pool override), which is exactly what the
//! `TRAJ_NUM_THREADS=1` CI leg checks at the process level.

use traj_ml::boosting::{GbdtConfig, GradientBoosting};
use traj_ml::cv::{cross_validate, KFold};
use traj_ml::dataset::Dataset;
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::tuning::forest_grid;
use traj_ml::{Classifier, ClassifierKind, SplitAlgo};
use traj_runtime::Runtime;

fn blob_data(n_per_class: usize, seed: u64) -> Dataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    let mut groups = Vec::new();
    for class in 0..3usize {
        for s in 0..n_per_class {
            rows.push(vec![
                class as f64 * 2.5 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                (s % 5) as f64,
            ]);
            y.push(class);
            groups.push((s % 4) as u32);
        }
    }
    Dataset::from_rows(&rows, y, 3, groups, vec![])
}

/// Runs `f` on a single-worker pool and on a four-worker pool and
/// asserts the two results are equal.
fn assert_parity<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let serial = Runtime::new(1).install(&f);
    let parallel = Runtime::new(4).install(&f);
    assert_eq!(serial, parallel, "parallel result differs from serial");
}

#[test]
fn forest_fit_is_thread_count_invariant() {
    let data = blob_data(40, 1);
    assert_parity(|| {
        let mut forest = RandomForest::with_estimators(20, 9);
        forest.fit(&data);
        (
            forest.predict(&data),
            forest.feature_importances(),
            forest.oob_score(),
        )
    });
}

#[test]
fn cross_validate_is_thread_count_invariant() {
    let data = blob_data(30, 2);
    assert_parity(|| {
        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        cross_validate(&factory, &data, &KFold::new(5, 3), 11).unwrap()
    });
}

#[test]
fn grid_search_is_thread_count_invariant() {
    let data = blob_data(25, 3);
    assert_parity(|| forest_grid(&data, &[3, 6], &[Some(3), None], &KFold::new(3, 1), 7).unwrap());
}

#[test]
fn hist_forest_fit_is_thread_count_invariant() {
    // Forcing SplitAlgo::Hist exercises parallel column binning plus the
    // per-tree histogram fits on the shared pool.
    let data = blob_data(40, 5);
    assert_parity(|| {
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 12,
            seed: 3,
            split_algo: SplitAlgo::Hist,
            ..ForestConfig::default()
        });
        forest.fit(&data);
        (
            forest.predict(&data),
            forest.feature_importances(),
            forest.oob_score(),
        )
    });
}

#[test]
fn hist_cross_validate_is_thread_count_invariant() {
    // The quantize-once CV path: bins are built in parallel once, folds
    // fan out and index into them.
    let data = blob_data(30, 6);
    assert_parity(|| {
        let factory = |seed: u64| -> Box<dyn Classifier> {
            Box::new(RandomForest::new(ForestConfig {
                n_estimators: 8,
                seed,
                split_algo: SplitAlgo::Hist,
                ..ForestConfig::default()
            }))
        };
        cross_validate(&factory, &data, &KFold::new(4, 1), 2).unwrap()
    });
}

#[test]
fn hist_gbdt_fit_is_thread_count_invariant() {
    let data = blob_data(30, 7);
    assert_parity(|| {
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 4,
            max_depth: 3,
            split_algo: SplitAlgo::Hist,
            ..GbdtConfig::default()
        });
        gbdt.fit(&data);
        (gbdt.predict(&data), gbdt.feature_importances())
    });
}

#[test]
fn nested_fit_inside_cv_is_thread_count_invariant() {
    // cross_validate fans out per fold; each fold's forest fans out per
    // tree on the same pool — the nesting the cooperative wait exists for.
    let data = blob_data(30, 4);
    assert_parity(|| {
        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        let a = cross_validate(&factory, &data, &KFold::new(4, 2), 0).unwrap();
        let mut forest = RandomForest::with_estimators(10, 5);
        forest.fit(&data);
        (a, forest.predict(&data))
    });
}
