//! Exact-vs-histogram split-search parity suite.
//!
//! The contract pinned here:
//!
//! * **Lossless quantization** — when every feature has ≤ 256 distinct
//!   values, each distinct value gets its own bin, so with unit sample
//!   weights the histogram path considers exactly the candidate set of
//!   the exact sort-based search and class-weight sums are integer-valued
//!   `f64`s. Training-set predictions and impurity-decrease importances
//!   are then **bit-identical** between `SplitAlgo::Exact` and
//!   `SplitAlgo::Hist`.
//! * **Lossy quantization** — on continuous features (> 256 distinct
//!   values) the two paths may choose slightly different splits, but
//!   model quality must agree to well under one accuracy point.
//! * Importances are normalised identically in both paths, so the
//!   *ranking* they induce is stable across algorithms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_ml::boosting::{AdaBoost, AdaBoostConfig, GbdtConfig, GradientBoosting};
use traj_ml::cv::{cross_validate, mean_accuracy, KFold};
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::metrics::accuracy;
use traj_ml::tree::{Criterion, DecisionTree, TreeConfig};
use traj_ml::{Classifier, Dataset, SplitAlgo};

/// A dataset whose feature values all lie on a grid of `n_distinct`
/// integers, so quantile binning is lossless. The first half of the
/// features are informative (non-overlapping value ranges per class);
/// the rest are uniform noise.
fn gridded_data(
    n: usize,
    n_features: usize,
    n_distinct: usize,
    n_classes: usize,
    seed: u64,
) -> Dataset {
    assert!(n_distinct <= 256, "grid must stay losslessly binnable");
    let mut rng = StdRng::seed_from_u64(seed);
    let spread = n_distinct / n_classes;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % n_classes;
        let row: Vec<f64> = (0..n_features)
            .map(|f| {
                if f < n_features / 2 {
                    (class * spread + rng.gen_range(0..spread)) as f64
                } else {
                    rng.gen_range(0..n_distinct) as f64
                }
            })
            .collect();
        rows.push(row);
        y.push(class);
    }
    Dataset::from_rows(&rows, y, n_classes, vec![0; n], vec![])
}

/// Continuous (lossy-binned) dataset with graded feature strengths:
/// feature `j` carries the class signal scaled by `strengths[j]` plus
/// unit noise, so the importance ranking is unambiguous.
fn graded_data(n: usize, strengths: &[f64], n_classes: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % n_classes;
        let row: Vec<f64> = strengths
            .iter()
            .map(|&s| class as f64 * s + rng.gen_range(-1.0..1.0))
            .collect();
        rows.push(row);
        y.push(class);
    }
    Dataset::from_rows(&rows, y, n_classes, vec![0; n], vec![])
}

fn tree_config(algo: SplitAlgo) -> TreeConfig {
    TreeConfig {
        criterion: Criterion::Gini,
        max_depth: Some(8),
        min_samples_split: 2,
        min_samples_leaf: 1,
        max_features: None,
        seed: 3,
        split_algo: algo,
    }
}

#[test]
fn tree_hist_is_bit_identical_to_exact_on_lossless_bins() {
    // 1500 rows: the root and upper nodes exceed the small-node exact
    // fallback cutoff, so the histogram sweep genuinely runs.
    let data = gridded_data(1500, 6, 50, 3, 41);
    let mut exact = DecisionTree::new(tree_config(SplitAlgo::Exact));
    let mut hist = DecisionTree::new(tree_config(SplitAlgo::Hist));
    exact.fit(&data);
    hist.fit(&data);

    let pe: Vec<usize> = (0..data.len())
        .map(|i| exact.predict_row(data.row(i)))
        .collect();
    let ph: Vec<usize> = (0..data.len())
        .map(|i| hist.predict_row(data.row(i)))
        .collect();
    assert_eq!(pe, ph, "training-set predictions must match bit-for-bit");
    assert_eq!(
        exact.raw_importances(),
        hist.raw_importances(),
        "impurity decreases are integer-weighted sums, exact in f64"
    );
}

#[test]
fn forest_hist_is_bit_identical_to_exact_on_lossless_bins() {
    let data = gridded_data(1500, 6, 40, 3, 42);
    let config = |algo| ForestConfig {
        n_estimators: 8,
        max_depth: Some(10),
        seed: 7,
        split_algo: algo,
        ..ForestConfig::default()
    };
    let mut exact = RandomForest::new(config(SplitAlgo::Exact));
    let mut hist = RandomForest::new(config(SplitAlgo::Hist));
    exact.fit(&data);
    hist.fit(&data);

    assert_eq!(exact.predict(&data), hist.predict(&data));
    assert_eq!(
        exact.oob_score(),
        hist.oob_score(),
        "OOB votes are cast on training rows, so they must agree exactly"
    );
    assert_eq!(
        exact.feature_importances(),
        hist.feature_importances(),
        "importances are normalised identically in both paths"
    );
}

#[test]
fn forest_importance_top5_ranking_matches_exact_on_continuous_data() {
    // Lossy bins (continuous values): split thresholds may differ, but
    // the induced importance ranking of the clearly-graded top features
    // must be stable across algorithms.
    let strengths = [5.0, 4.0, 3.0, 2.0, 1.2, 0.4, 0.2, 0.1, 0.0, 0.0];
    let data = graded_data(2000, &strengths, 2, 43);
    let config = |algo| ForestConfig {
        n_estimators: 10,
        max_depth: Some(8),
        seed: 5,
        split_algo: algo,
        ..ForestConfig::default()
    };
    let mut exact = RandomForest::new(config(SplitAlgo::Exact));
    let mut hist = RandomForest::new(config(SplitAlgo::Hist));
    exact.fit(&data);
    hist.fit(&data);

    let top5 = |imp: &[f64]| -> Vec<usize> {
        let mut order: Vec<usize> = (0..imp.len()).collect();
        order.sort_by(|&a, &b| imp[b].total_cmp(&imp[a]).then(a.cmp(&b)));
        order.truncate(5);
        order
    };
    let ie = exact.feature_importances();
    let ih = hist.feature_importances();
    assert!((ie.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!((ih.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert_eq!(
        top5(&ie),
        top5(&ih),
        "top-5 importance ranking drifted: exact {ie:?} vs hist {ih:?}"
    );
}

#[test]
fn gbdt_hist_tracks_exact_within_one_accuracy_point() {
    // Gradients/hessians are continuous, so per-side sums differ in the
    // last ulp between accumulation orders; near-tied splits may flip.
    let data = gridded_data(1200, 6, 60, 3, 44);
    let config = |algo| GbdtConfig {
        n_rounds: 5,
        max_depth: 4,
        seed: 2,
        split_algo: algo,
        ..GbdtConfig::default()
    };
    let mut exact = GradientBoosting::new(config(SplitAlgo::Exact));
    let mut hist = GradientBoosting::new(config(SplitAlgo::Hist));
    exact.fit(&data);
    hist.fit(&data);
    let ae = accuracy(&data.y, &exact.predict(&data));
    let ah = accuracy(&data.y, &hist.predict(&data));
    assert!((ae - ah).abs() < 0.01, "exact {ae} vs hist {ah}");
}

#[test]
fn adaboost_hist_tracks_exact_within_one_accuracy_point() {
    // Boosting weights are non-integer, so bit-parity is not guaranteed;
    // quality must still agree.
    let data = gridded_data(1000, 4, 30, 2, 45);
    let config = |algo| AdaBoostConfig {
        n_estimators: 10,
        max_depth: 2,
        split_algo: algo,
        ..AdaBoostConfig::default()
    };
    let mut exact = AdaBoost::new(config(SplitAlgo::Exact));
    let mut hist = AdaBoost::new(config(SplitAlgo::Hist));
    exact.fit(&data);
    hist.fit(&data);
    let ae = accuracy(&data.y, &exact.predict(&data));
    let ah = accuracy(&data.y, &hist.predict(&data));
    assert!((ae - ah).abs() < 0.01, "exact {ae} vs hist {ah}");
}

#[test]
fn cross_validate_hist_tracks_exact_within_one_accuracy_point() {
    // End-to-end through the quantize-once CV path (bins built once,
    // folds index into them via `fit_subset`).
    let data = graded_data(900, &[4.0, 2.0, 0.5, 0.0], 3, 46);
    let cv_with = |algo| {
        let factory = move |seed: u64| -> Box<dyn Classifier> {
            Box::new(RandomForest::new(ForestConfig {
                n_estimators: 5,
                max_depth: Some(8),
                seed,
                split_algo: algo,
                ..ForestConfig::default()
            }))
        };
        let scores = cross_validate(&factory, &data, &KFold::new(3, 1), 0).unwrap();
        mean_accuracy(&scores)
    };
    let ae = cv_with(SplitAlgo::Exact);
    let ah = cv_with(SplitAlgo::Hist);
    assert!((ae - ah).abs() < 0.01, "exact {ae} vs hist {ah}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On arbitrary blob-shaped data — below 256 rows bins are lossless,
    /// above they are lossy — the forest trained with histograms stays
    /// within one accuracy point of the exact-trained forest.
    #[test]
    fn forest_hist_accuracy_delta_below_one_percent(
        n in 180usize..420,
        n_classes in 2usize..4,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % n_classes;
            rows.push(vec![
                class as f64 * 3.0 + rng.gen_range(-1.0..1.0),
                class as f64 * 1.5 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(class);
        }
        let data = Dataset::from_rows(&rows, y, n_classes, vec![0; n], vec![]);
        let config = |algo| ForestConfig {
            n_estimators: 5,
            max_depth: Some(8),
            seed: 11,
            split_algo: algo,
            ..ForestConfig::default()
        };
        let mut exact = RandomForest::new(config(SplitAlgo::Exact));
        let mut hist = RandomForest::new(config(SplitAlgo::Hist));
        exact.fit(&data);
        hist.fit(&data);
        let ae = accuracy(&data.y, &exact.predict(&data));
        let ah = accuracy(&data.y, &hist.predict(&data));
        prop_assert!((ae - ah).abs() < 0.01, "exact {} vs hist {}", ae, ah);
    }
}
