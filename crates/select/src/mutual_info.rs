//! Mutual-information filter ranking.
//!
//! The classical information-theoretic criterion (the family of [Peng et
//! al. 2005] the paper's related work cites): estimate `I(X_j; Y)` for
//! every feature by quantile-binning `X_j` and ranking features by the
//! estimate. A *filter* — no classifier in the loop — included for the
//! selection-method ablation alongside the paper's wrapper and
//! RF-importance engines.

use traj_ml::dataset::Dataset;

/// Estimates the mutual information (in bits) between feature `feature`
/// and the class label, discretising the feature into `n_bins` quantile
/// bins.
///
/// # Panics
/// Panics on an empty dataset or `n_bins < 2`.
pub fn mutual_information(data: &Dataset, feature: usize, n_bins: usize) -> f64 {
    assert!(!data.is_empty(), "mutual information of zero samples");
    assert!(n_bins >= 2, "need at least two bins");
    let n = data.len();
    let bins = quantile_bins(data, feature, n_bins);

    // Joint histogram bin × class.
    let k = data.n_classes;
    let mut joint = vec![0usize; n_bins * k];
    let mut bin_counts = vec![0usize; n_bins];
    let mut class_counts = vec![0usize; k];
    for (&b, &c) in bins.iter().zip(&data.y) {
        joint[b * k + c] += 1;
        bin_counts[b] += 1;
        class_counts[c] += 1;
    }

    let nf = n as f64;
    let mut mi = 0.0;
    for b in 0..n_bins {
        for c in 0..k {
            let pxy = joint[b * k + c] as f64 / nf;
            if pxy == 0.0 {
                continue;
            }
            let px = bin_counts[b] as f64 / nf;
            let py = class_counts[c] as f64 / nf;
            mi += pxy * (pxy / (px * py)).log2();
        }
    }
    mi.max(0.0)
}

/// Ranks every feature by estimated mutual information with the label,
/// descending. Returns `(feature_index, mi_bits)` pairs.
pub fn mi_ranking(data: &Dataset, n_bins: usize) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = (0..data.n_features())
        .map(|j| (j, mutual_information(data, j, n_bins)))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite MI")
            .then(a.0.cmp(&b.0))
    });
    ranked
}

/// Assigns each sample's `feature` value to one of `n_bins` quantile bins.
fn quantile_bins(data: &Dataset, feature: usize, n_bins: usize) -> Vec<usize> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| data.value(a, feature).total_cmp(&data.value(b, feature)));
    let mut bins = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        bins[i] = (rank * n_bins / n).min(n_bins - 1);
    }
    // Equal values must share a bin (otherwise the estimator invents
    // information); merge runs of equal values into the first one's bin.
    for w in 1..n {
        let (prev, here) = (order[w - 1], order[w]);
        if data.value(here, feature) == data.value(prev, feature) {
            bins[here] = bins[prev];
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn labeled_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            rows.push(vec![
                class as f64 * 10.0 + rng.gen_range(-1.0..1.0), // strong
                rng.gen_range(-1.0..1.0),                       // noise
                class as f64,                                   // perfectly informative
            ]);
            y.push(class);
        }
        Dataset::from_rows(&rows, y, 2, vec![0; n], vec![])
    }

    #[test]
    fn perfect_feature_has_one_bit() {
        let data = labeled_data(400, 81);
        let mi = mutual_information(&data, 2, 4);
        assert!((mi - 1.0).abs() < 0.05, "mi = {mi}");
    }

    #[test]
    fn noise_feature_has_near_zero_information() {
        let data = labeled_data(400, 82);
        let mi = mutual_information(&data, 1, 4);
        assert!(mi < 0.05, "mi = {mi}");
    }

    #[test]
    fn ranking_orders_signal_over_noise() {
        let data = labeled_data(400, 83);
        let ranked = mi_ranking(&data, 4);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[2].0, 1, "noise last: {ranked:?}");
        assert!(ranked[0].1 >= ranked[1].1);
    }

    #[test]
    fn mi_is_nonnegative_and_bounded_by_label_entropy() {
        let data = labeled_data(200, 84);
        for j in 0..3 {
            let mi = mutual_information(&data, j, 8);
            assert!(mi >= 0.0);
            assert!(mi <= 1.0 + 0.1, "binary labels bound MI by 1 bit: {mi}");
        }
    }

    #[test]
    fn constant_feature_has_zero_information() {
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![7.0]).collect();
        let y: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let data = Dataset::from_rows(&rows, y, 2, vec![0; 100], vec![]);
        assert_eq!(mutual_information(&data, 0, 4), 0.0);
    }

    #[test]
    fn more_bins_never_lose_the_strong_signal() {
        let data = labeled_data(300, 85);
        for bins in [2, 4, 8, 16] {
            let mi = mutual_information(&data, 0, bins);
            assert!(mi > 0.8, "bins={bins} mi={mi}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn one_bin_panics() {
        let data = labeled_data(10, 86);
        let _ = mutual_information(&data, 0, 1);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_data_panics() {
        let data = Dataset::from_rows(&[], vec![], 2, vec![], vec![]);
        let _ = mutual_information(&data, 0, 4);
    }
}
