//! Sequential-forward wrapper feature selection (§4.2, Fig. 3b).
//!
//! "Using this approach, we first defined an empty set for selected
//! features. Then, we searched all the trajectory features one by one to
//! find the best feature to append to the selected feature set. The
//! maximum accuracy score was the metric for selecting the best feature
//! to append […] After, we removed the selected feature from the set of
//! features and repeated the search for union of selected features and
//! next candidate feature."
//!
//! Candidate evaluation is embarrassingly parallel; each step fans the
//! remaining candidates out as one [`traj_runtime`] task per candidate,
//! and each candidate's cross-validation fans out one task per fold on
//! the same pool.

use crate::importance::feature_name;
use crate::{SelectionCurve, SelectionStep};
use traj_ml::classifier::Classifier;
use traj_ml::cv::{
    cross_validate_prebinned, mean_accuracy, mean_f1_weighted, SplitError, Splitter,
};
use traj_ml::dataset::Dataset;
use traj_ml::BinnedDataset;

/// Configuration of [`forward_select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardSelectionConfig {
    /// Stop after selecting this many features (the paper explores all 70
    /// but settles on 20; searches are quadratic, so cap what you need).
    pub max_features: usize,
    /// Base seed forwarded to per-fold classifier construction.
    pub seed: u64,
    /// Stop early when accuracy has not improved for this many
    /// consecutive steps (`None` disables early stopping).
    pub patience: Option<usize>,
}

impl Default for ForwardSelectionConfig {
    fn default() -> Self {
        ForwardSelectionConfig {
            max_features: 20,
            seed: 0,
            patience: None,
        }
    }
}

/// Greedy forward selection maximising cross-validated accuracy of the
/// classifier built by `factory`. Returns the selection curve (one step
/// per added feature), or the [`SplitError`] of the first candidate
/// evaluation whose split failed.
///
/// Every round evaluates all remaining candidates in parallel (one pool
/// task each); the winner is chosen by score and index, never by task
/// completion order, so the curve is bit-identical for any thread count.
///
/// Candidate scoring inherits the compiled batch-inference path: each
/// fold's model is lowered to flat SoA arrays once and scores its test
/// rows level by level (`traj_ml::compiled`, via
/// [`cross_validate_prebinned`]'s `predict_rows_into`), reusing the
/// quantize-once bin codes for thresholds that are bin edges.
pub fn forward_select<F, S>(
    data: &Dataset,
    factory: &F,
    splitter: &S,
    config: &ForwardSelectionConfig,
) -> Result<SelectionCurve, SplitError>
where
    F: Fn(u64) -> Box<dyn Classifier> + Sync + ?Sized,
    S: Splitter + Sync + ?Sized,
{
    let d = data.n_features();
    let budget = config.max_features.min(d);
    let mut selected: Vec<usize> = Vec::with_capacity(budget);
    let mut remaining: Vec<usize> = (0..d).collect();
    let mut steps: Vec<SelectionStep> = Vec::with_capacity(budget);
    let mut best_so_far = f64::NEG_INFINITY;
    let mut stale_steps = 0usize;

    // Quantize the full feature space once; every candidate evaluation
    // (a column mask) re-slices the shared bin codes instead of
    // re-binning — the dominant cost of the O(d²) wrapper search.
    let full_binned = factory(config.seed)
        .benefits_from_binning(data.len())
        .then(|| BinnedDataset::from_dataset(data));

    while selected.len() < budget && !remaining.is_empty() {
        // Evaluate every candidate in parallel, one task each.
        let scored: Vec<Result<(usize, f64, f64), SplitError>> =
            traj_runtime::parallel_map(&remaining, |_, &candidate| {
                let mut trial: Vec<usize> = Vec::with_capacity(selected.len() + 1);
                trial.extend_from_slice(&selected);
                trial.push(candidate);
                let subset = data.select_features(&trial);
                let trial_binned = full_binned.as_ref().map(|b| b.select_features(&trial));
                let scores = cross_validate_prebinned(
                    factory,
                    &subset,
                    trial_binned.as_ref(),
                    splitter,
                    config.seed,
                )?;
                Ok((candidate, mean_accuracy(&scores), mean_f1_weighted(&scores)))
            });
        let mut results: Vec<(usize, f64, f64)> = scored.into_iter().collect::<Result<_, _>>()?;
        // Deterministic winner: highest accuracy, lowest index on ties.
        results.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite accuracies")
                .then(a.0.cmp(&b.0))
        });
        let (winner, accuracy, f1_weighted) = results[0];

        selected.push(winner);
        remaining.retain(|&f| f != winner);
        steps.push(SelectionStep {
            feature: winner,
            feature_name: feature_name(data, winner),
            accuracy,
            f1_weighted,
        });

        if accuracy > best_so_far + 1e-12 {
            best_so_far = accuracy;
            stale_steps = 0;
        } else {
            stale_steps += 1;
            if config.patience.is_some_and(|p| stale_steps >= p) {
                break;
            }
        }
    }
    Ok(SelectionCurve { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use traj_ml::classifier::ClassifierKind;
    use traj_ml::cv::KFold;

    /// f0 and f1 are each half of an XOR (useful only together); f2 is a
    /// weak single signal; f3 is pure noise.
    fn xor_plus_weak(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            let class = usize::from(a ^ b);
            rows.push(vec![
                f64::from(a as u8) + rng.gen_range(-0.2..0.2),
                f64::from(b as u8) + rng.gen_range(-0.2..0.2),
                class as f64 * 0.6 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(class);
        }
        Dataset::from_rows(
            &rows,
            y,
            2,
            vec![0; n],
            vec![
                "xor_a".into(),
                "xor_b".into(),
                "weak".into(),
                "noise".into(),
            ],
        )
    }

    #[test]
    fn finds_the_interacting_pair() {
        let data = xor_plus_weak(240, 71);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        let curve = forward_select(
            &data,
            &factory,
            &splitter,
            &ForwardSelectionConfig {
                max_features: 3,
                seed: 0,
                patience: None,
            },
        )
        .unwrap();
        assert_eq!(curve.steps.len(), 3);
        let top2: Vec<usize> = curve.prefix(2);
        // Wrapper search must discover that xor_a + xor_b together beat
        // any other pair; at least both XOR halves appear in the top 3.
        let top3 = curve.prefix(3);
        assert!(
            top3.contains(&0) && top3.contains(&1),
            "{top2:?} / {top3:?}"
        );
        // Accuracy once the pair is on board beats any single feature
        // (the weak feature alone tops out near 0.66).
        assert!(
            curve.steps.iter().any(|s| s.accuracy > 0.75),
            "{:?}",
            curve.accuracies()
        );
    }

    #[test]
    fn respects_max_features_budget() {
        let data = xor_plus_weak(120, 72);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        let curve = forward_select(
            &data,
            &factory,
            &splitter,
            &ForwardSelectionConfig {
                max_features: 2,
                seed: 0,
                patience: None,
            },
        )
        .unwrap();
        assert_eq!(curve.steps.len(), 2);
    }

    #[test]
    fn patience_stops_early() {
        let data = xor_plus_weak(120, 73);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        let curve = forward_select(
            &data,
            &factory,
            &splitter,
            &ForwardSelectionConfig {
                max_features: 4,
                seed: 0,
                patience: Some(1),
            },
        )
        .unwrap();
        assert!(curve.steps.len() <= 4);
    }

    #[test]
    fn selection_is_deterministic() {
        let data = xor_plus_weak(120, 74);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        let config = ForwardSelectionConfig {
            max_features: 3,
            seed: 2,
            patience: None,
        };
        let a = forward_select(&data, &factory, &splitter, &config).unwrap();
        let b = forward_select(&data, &factory, &splitter, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_larger_than_dimensionality_selects_all() {
        let data = xor_plus_weak(100, 75);
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        let curve = forward_select(
            &data,
            &factory,
            &splitter,
            &ForwardSelectionConfig {
                max_features: 99,
                seed: 0,
                patience: None,
            },
        )
        .unwrap();
        assert_eq!(curve.steps.len(), 4);
        let mut features = curve.prefix(4);
        features.sort_unstable();
        assert_eq!(features, vec![0, 1, 2, 3]);
    }
}
