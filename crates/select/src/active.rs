//! Pool-based active learning for trajectory labeling.
//!
//! The paper's introduction lists active learning among the open
//! trajectory-mining topics (its citation [24] is the authors' own
//! ANALYTIC system for actively labeling trajectories). Annotating GPS
//! segments is exactly the setting active learning targets: unlabeled
//! trajectories are abundant (GeoLife has 182 users, only 69 annotated),
//! labels are expensive (humans reconstruct their day after the fact).
//!
//! This module implements the standard pool-based loop with a random
//! forest committee:
//!
//! 1. fit on the current labeled set;
//! 2. score every pool sample's uncertainty — entropy of the forest's
//!    soft vote, or the margin between its top two classes;
//! 3. move the `batch_size` most uncertain samples into the labeled set
//!    (simulated oracle: the hidden labels);
//! 4. repeat, recording the held-out accuracy after every round.
//!
//! A random-query baseline quantifies the strategy's advantage.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use traj_ml::dataset::Dataset;
use traj_ml::forest::{ForestConfig, RandomForest};

/// Query strategy of the active learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryStrategy {
    /// Highest Shannon entropy of the predicted class distribution.
    Entropy,
    /// Smallest margin between the top-two class probabilities.
    Margin,
    /// Uniformly random (the passive baseline).
    Random,
}

/// Configuration of [`active_learning_curve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveLearningConfig {
    /// Size of the random initial labeled set.
    pub initial_labeled: usize,
    /// Samples queried per round.
    pub batch_size: usize,
    /// Number of query rounds.
    pub rounds: usize,
    /// Trees of the committee forest.
    pub n_estimators: usize,
    /// Query strategy.
    pub strategy: QueryStrategy,
    /// Seed (initial set, tie shuffling, forest).
    pub seed: u64,
}

impl Default for ActiveLearningConfig {
    fn default() -> Self {
        ActiveLearningConfig {
            initial_labeled: 20,
            batch_size: 10,
            rounds: 10,
            n_estimators: 25,
            strategy: QueryStrategy::Entropy,
            seed: 0,
        }
    }
}

/// One round of the learning curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveLearningRound {
    /// Labeled-set size when the round's model was fitted.
    pub n_labeled: usize,
    /// Accuracy on the held-out test set.
    pub test_accuracy: f64,
}

/// Runs the pool-based loop: `train_pool` provides the pool (its labels
/// play the oracle), `test` is never queried. Returns one entry per
/// fitted model (initial fit + one per round).
///
/// # Panics
/// Panics when the pool is smaller than the initial labeled set.
pub fn active_learning_curve(
    train_pool: &Dataset,
    test: &Dataset,
    config: &ActiveLearningConfig,
) -> Vec<ActiveLearningRound> {
    assert!(
        train_pool.len() >= config.initial_labeled && config.initial_labeled > 0,
        "pool smaller than the initial labeled set"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..train_pool.len()).collect();
    order.shuffle(&mut rng);
    let mut labeled: Vec<usize> = order[..config.initial_labeled].to_vec();
    let mut pool: Vec<usize> = order[config.initial_labeled..].to_vec();

    let mut curve = Vec::with_capacity(config.rounds + 1);
    for round in 0..=config.rounds {
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: config.n_estimators,
            seed: config.seed.wrapping_add(round as u64),
            ..ForestConfig::default()
        });
        let train = train_pool.subset(&labeled);
        forest.fit(&train);
        let accuracy = traj_ml::metrics::accuracy(&test.y, &forest.predict(test));
        curve.push(ActiveLearningRound {
            n_labeled: labeled.len(),
            test_accuracy: accuracy,
        });

        if round == config.rounds || pool.is_empty() {
            break;
        }

        // Score the pool and take the most informative batch.
        let take = config.batch_size.min(pool.len());
        match config.strategy {
            QueryStrategy::Random => {
                pool.shuffle(&mut rng);
            }
            QueryStrategy::Entropy => {
                pool.sort_by(|&a, &b| {
                    let ea = entropy(&forest.predict_proba_row(train_pool.row(a)));
                    let eb = entropy(&forest.predict_proba_row(train_pool.row(b)));
                    eb.partial_cmp(&ea)
                        .expect("finite entropies")
                        .then(a.cmp(&b))
                });
            }
            QueryStrategy::Margin => {
                pool.sort_by(|&a, &b| {
                    let ma = margin(&forest.predict_proba_row(train_pool.row(a)));
                    let mb = margin(&forest.predict_proba_row(train_pool.row(b)));
                    ma.partial_cmp(&mb).expect("finite margins").then(a.cmp(&b))
                });
            }
        }
        labeled.extend(pool.drain(..take));
    }
    curve
}

/// Shannon entropy (nats) of a probability vector.
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Margin between the two largest probabilities (small = uncertain).
pub fn margin(probs: &[f64]) -> f64 {
    let (mut top1, mut top2) = (0.0f64, 0.0f64);
    for &p in probs {
        if p > top1 {
            top2 = top1;
            top1 = p;
        } else if p > top2 {
            top2 = p;
        }
    }
    top1 - top2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Blobs with a noisy boundary region where queries are informative.
    fn pool_and_test(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut make = |n: usize| {
            let mut rows = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let class = rng.gen_range(0..2usize);
                let center = class as f64 * 2.0;
                rows.push(vec![
                    center + rng.gen_range(-1.2..1.2),
                    center + rng.gen_range(-1.2..1.2),
                ]);
                y.push(class);
            }
            let len = rows.len();
            Dataset::from_rows(&rows, y, 2, vec![0; len], vec![])
        };
        (make(300), make(150))
    }

    #[test]
    fn entropy_and_margin_basics() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        assert!((entropy(&[0.5, 0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(entropy(&[0.5, 0.5]) > entropy(&[0.9, 0.1]));
        assert!((margin(&[0.7, 0.3]) - 0.4).abs() < 1e-12);
        assert_eq!(margin(&[1.0, 0.0]), 1.0);
        assert!(margin(&[0.5, 0.5]) < 1e-12);
    }

    #[test]
    fn curve_has_expected_shape() {
        let (pool, test) = pool_and_test(1);
        let curve = active_learning_curve(
            &pool,
            &test,
            &ActiveLearningConfig {
                rounds: 4,
                ..ActiveLearningConfig::default()
            },
        );
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0].n_labeled, 20);
        assert_eq!(curve[4].n_labeled, 60);
        for r in &curve {
            assert!((0.0..=1.0).contains(&r.test_accuracy));
        }
        // Learning happens: the final model beats the initial one.
        assert!(
            curve[4].test_accuracy >= curve[0].test_accuracy - 0.02,
            "{curve:?}"
        );
    }

    #[test]
    fn uncertainty_sampling_is_competitive_with_random() {
        // With an informative strategy the area under the learning curve
        // should match or beat random querying on boundary-heavy data.
        let (pool, test) = pool_and_test(2);
        let auc = |strategy: QueryStrategy| {
            let curve = active_learning_curve(
                &pool,
                &test,
                &ActiveLearningConfig {
                    strategy,
                    rounds: 6,
                    seed: 3,
                    ..ActiveLearningConfig::default()
                },
            );
            curve.iter().map(|r| r.test_accuracy).sum::<f64>() / curve.len() as f64
        };
        let active = auc(QueryStrategy::Entropy);
        let passive = auc(QueryStrategy::Random);
        assert!(
            active > passive - 0.03,
            "entropy {active} vs random {passive}"
        );
    }

    #[test]
    fn pool_exhaustion_stops_gracefully() {
        let (pool, test) = pool_and_test(4);
        let small_pool = pool.subset(&(0..30).collect::<Vec<_>>());
        let curve = active_learning_curve(
            &small_pool,
            &test,
            &ActiveLearningConfig {
                initial_labeled: 20,
                batch_size: 10,
                rounds: 10,
                ..ActiveLearningConfig::default()
            },
        );
        // One round consumes the remaining 10; the loop then stops.
        assert!(curve.len() <= 3, "{}", curve.len());
        assert_eq!(curve.last().unwrap().n_labeled, 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let (pool, test) = pool_and_test(5);
        let config = ActiveLearningConfig {
            rounds: 3,
            ..ActiveLearningConfig::default()
        };
        assert_eq!(
            active_learning_curve(&pool, &test, &config),
            active_learning_curve(&pool, &test, &config)
        );
    }

    #[test]
    #[should_panic(expected = "pool smaller")]
    fn tiny_pool_panics() {
        let (pool, test) = pool_and_test(6);
        let tiny = pool.subset(&[0, 1, 2]);
        let _ = active_learning_curve(&tiny, &test, &ActiveLearningConfig::default());
    }
}
