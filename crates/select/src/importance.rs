//! Random-forest feature-importance ranking with incremental appending —
//! the paper's "information theoretical" selection method (§4.2,
//! Fig. 3a).
//!
//! "Random Forest is a classifier that has embedded feature selection
//! using information theoretical metrics. We calculated the feature
//! importance using Random Forest. Then, each feature is appended to the
//! selected feature set and calculating the accuracy score for random
//! forest classifier."

use crate::{SelectionCurve, SelectionStep};
use traj_ml::classifier::Classifier;
use traj_ml::cv::{cross_validate_prebinned, SplitError, Splitter};
use traj_ml::dataset::Dataset;
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::BinnedDataset;

/// Ranks every feature by random-forest impurity importance, descending.
/// Returns `(feature_index, importance)` pairs.
pub fn rf_importance_ranking(data: &Dataset, n_estimators: usize, seed: u64) -> Vec<(usize, f64)> {
    let mut forest = RandomForest::new(ForestConfig {
        n_estimators,
        seed,
        ..ForestConfig::default()
    });
    forest.fit(data);
    let mut ranked: Vec<(usize, f64)> = forest
        .feature_importances()
        .into_iter()
        .enumerate()
        .collect();
    // Descending importance; index ascending as a deterministic tiebreak.
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite importances")
            .then(a.0.cmp(&b.0))
    });
    ranked
}

/// Appends features in `ranking` order, cross-validating the growing set
/// after each append (the Fig. 3a curve). Each prefix is scored by a
/// parallel [`traj_ml::cross_validate`]; the prefixes themselves stay
/// sequential because prefix *k* is a strict superset of prefix *k−1*.
/// The full feature space is quantized at most once up front; every
/// prefix re-slices the shared bin codes.
pub fn incremental_curve<F, S>(
    data: &Dataset,
    ranking: &[usize],
    factory: &F,
    splitter: &S,
    base_seed: u64,
) -> Result<SelectionCurve, SplitError>
where
    F: Fn(u64) -> Box<dyn Classifier> + Sync + ?Sized,
    S: Splitter + Sync + ?Sized,
{
    let full_binned = factory(base_seed)
        .benefits_from_binning(data.len())
        .then(|| BinnedDataset::from_dataset(data));
    let mut selected: Vec<usize> = Vec::with_capacity(ranking.len());
    let mut steps = Vec::with_capacity(ranking.len());
    for &feature in ranking {
        selected.push(feature);
        let subset = data.select_features(&selected);
        let prefix_binned = full_binned.as_ref().map(|b| b.select_features(&selected));
        let scores = cross_validate_prebinned(
            factory,
            &subset,
            prefix_binned.as_ref(),
            splitter,
            base_seed,
        )?;
        let accuracy = traj_ml::cv::mean_accuracy(&scores);
        let f1_weighted = traj_ml::cv::mean_f1_weighted(&scores);
        steps.push(SelectionStep {
            feature,
            feature_name: feature_name(data, feature),
            accuracy,
            f1_weighted,
        });
    }
    Ok(SelectionCurve { steps })
}

pub(crate) fn feature_name(data: &Dataset, feature: usize) -> String {
    data.feature_names.get(feature).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use traj_ml::classifier::ClassifierKind;
    use traj_ml::cv::KFold;

    /// Three features: f0 = strong signal, f1 = weak signal, f2 = noise.
    pub(crate) fn signal_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            rows.push(vec![
                class as f64 * 4.0 + rng.gen_range(-1.0..1.0),
                class as f64 * 1.0 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(class);
        }
        Dataset::from_rows(
            &rows,
            y,
            2,
            vec![0; n],
            vec!["strong".into(), "weak".into(), "noise".into()],
        )
    }

    #[test]
    fn ranking_orders_by_signal_strength() {
        let data = signal_data(200, 61);
        let ranked = rf_importance_ranking(&data, 20, 1);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, 0, "strong feature first: {ranked:?}");
        assert_eq!(ranked[2].0, 2, "noise feature last: {ranked:?}");
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
        let total: f64 = ranked.iter().map(|r| r.1).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_curve_rises_then_plateaus() {
        let data = signal_data(200, 62);
        let ranked = rf_importance_ranking(&data, 20, 1);
        let order: Vec<usize> = ranked.iter().map(|r| r.0).collect();
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let curve = incremental_curve(&data, &order, &factory, &KFold::new(3, 1), 0).unwrap();
        assert_eq!(curve.steps.len(), 3);
        assert_eq!(curve.steps[0].feature_name, "strong");
        // One strong feature is almost enough; adding noise cannot help
        // much.
        assert!(curve.steps[0].accuracy > 0.9, "{:?}", curve.accuracies());
        let best = curve.best_prefix();
        assert!(!best.is_empty() && best[0] == 0);
    }

    #[test]
    fn ranking_is_deterministic() {
        let data = signal_data(100, 63);
        assert_eq!(
            rf_importance_ranking(&data, 10, 5),
            rf_importance_ranking(&data, 10, 5)
        );
    }
}
