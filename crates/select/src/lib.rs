//! # traj-select
//!
//! Feature-selection engines for the paper's §4.2 experiment:
//!
//! * [`wrapper`] — sequential-forward **wrapper** search: grow the
//!   selected set one feature at a time, always adding the feature that
//!   maximises cross-validated accuracy of the chosen classifier
//!   (Fig. 3b; the paper finds the top-20 subset plateaus).
//! * [`importance`] — the **information theoretical** method: rank all
//!   features by random-forest impurity importance, then append them in
//!   rank order measuring cross-validated accuracy after each append
//!   (Fig. 3a).
//! * [`mutual_info`] — a filter-style mutual-information ranking
//!   (quantile-binned), the classical information-theoretic criterion the
//!   related-work section discusses; included for the selection-method
//!   ablation.
//! * [`active`] — pool-based active learning (uncertainty sampling with a
//!   random-forest committee), the open trajectory-mining topic the
//!   paper's introduction cites ([Soares Júnior et al., ANALYTIC]).
//!
//! All engines operate on [`traj_ml::Dataset`] and are generic over the
//! classifier (via the same factory closures the cross-validation module
//! uses), exactly as a wrapper method must be.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod importance;
pub mod mutual_info;
pub mod wrapper;

pub use active::{active_learning_curve, ActiveLearningConfig, QueryStrategy};
pub use importance::{incremental_curve, rf_importance_ranking};
pub use mutual_info::{mi_ranking, mutual_information};
pub use wrapper::{forward_select, ForwardSelectionConfig};

use serde::{Deserialize, Serialize};

/// One step of a selection curve: the feature added at this step and the
/// cross-validated scores of the selected set *after* adding it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionStep {
    /// Column index of the feature added at this step.
    pub feature: usize,
    /// Name of the feature (empty when the dataset is unnamed).
    pub feature_name: String,
    /// Mean cross-validated accuracy of the selected set.
    pub accuracy: f64,
    /// Mean cross-validated weighted F1 of the selected set.
    pub f1_weighted: f64,
}

/// A selection trajectory: `steps[k]` describes the `(k+1)`-feature set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SelectionCurve {
    /// The steps, in selection order.
    pub steps: Vec<SelectionStep>,
}

impl SelectionCurve {
    /// Feature indices of the best-scoring prefix (the paper's "top-k
    /// subset"): the first `k` features where `k` maximises accuracy.
    pub fn best_prefix(&self) -> Vec<usize> {
        let best_k = self
            .steps
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.accuracy
                    .partial_cmp(&b.1.accuracy)
                    .expect("finite accuracies")
            })
            .map(|(k, _)| k + 1)
            .unwrap_or(0);
        self.steps[..best_k].iter().map(|s| s.feature).collect()
    }

    /// The first `k` selected features (or all when `k` exceeds the
    /// curve).
    pub fn prefix(&self, k: usize) -> Vec<usize> {
        self.steps.iter().take(k).map(|s| s.feature).collect()
    }

    /// Accuracy after each step, for plotting.
    pub fn accuracies(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.accuracy).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(feature: usize, accuracy: f64) -> SelectionStep {
        SelectionStep {
            feature,
            feature_name: format!("f{feature}"),
            accuracy,
            f1_weighted: accuracy,
        }
    }

    #[test]
    fn best_prefix_maximises_accuracy() {
        let curve = SelectionCurve {
            steps: vec![step(4, 0.6), step(1, 0.8), step(9, 0.75), step(2, 0.79)],
        };
        assert_eq!(curve.best_prefix(), vec![4, 1]);
        assert_eq!(curve.prefix(3), vec![4, 1, 9]);
        assert_eq!(curve.prefix(99).len(), 4);
        assert_eq!(curve.accuracies(), vec![0.6, 0.8, 0.75, 0.79]);
    }

    #[test]
    fn empty_curve_is_harmless() {
        let curve = SelectionCurve::default();
        assert!(curve.best_prefix().is_empty());
        assert!(curve.prefix(5).is_empty());
        assert!(curve.accuracies().is_empty());
    }
}
