//! Arrival processes: how simulated requests enter the system.
//!
//! Open-loop processes (Poisson, MMPP bursts, diurnal ramp) offer load
//! regardless of how the server keeps up — the regime where overload
//! control matters. The closed-loop process models `loadgen`: a fixed
//! set of clients that each wait for their response (plus an optional
//! think time) before issuing the next request, which is what the
//! sim-vs-real agreement check replays.

use crate::rng::SimRng;

/// Nanoseconds per second — the simulator's clock unit.
pub const NS_PER_S: u64 = 1_000_000_000;

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless open-loop arrivals at `rate` requests/second.
    Poisson {
        /// Offered load, requests per second.
        rate: f64,
    },
    /// Markov-modulated Poisson: alternates between a `base` and a
    /// `burst` rate with exponentially distributed dwell times — the
    /// classic bursty-traffic model.
    Mmpp {
        /// Rate while in the base state, requests per second.
        base_rate: f64,
        /// Rate while in the burst state, requests per second.
        burst_rate: f64,
        /// Mean dwell time in the base state, seconds.
        mean_base_s: f64,
        /// Mean dwell time in the burst state, seconds.
        mean_burst_s: f64,
    },
    /// Sinusoidal rate ramp between `low_rate` and `high_rate` over
    /// `period_s` — a compressed diurnal cycle.
    Diurnal {
        /// Trough rate, requests per second.
        low_rate: f64,
        /// Peak rate, requests per second.
        high_rate: f64,
        /// Full cycle length, seconds.
        period_s: f64,
    },
    /// Closed loop: `clients` concurrent requesters, each issuing its
    /// next request `think_us` after receiving the previous response.
    /// Mirrors `loadgen --connections N`.
    ClosedLoop {
        /// Concurrent requesters.
        clients: usize,
        /// Pause between response and next request, microseconds.
        think_us: u64,
    },
}

/// Stateful sampler of an open-loop [`ArrivalProcess`].
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    /// MMPP only: `true` while in the burst state.
    in_burst: bool,
    /// MMPP only: absolute time of the next state switch, ns.
    next_switch_ns: u64,
}

impl ArrivalGen {
    /// A sampler drawing from its own seeded stream.
    pub fn new(process: ArrivalProcess, seed: u64) -> ArrivalGen {
        let mut rng = SimRng::new(seed);
        let (in_burst, next_switch_ns) = match process {
            ArrivalProcess::Mmpp { mean_base_s, .. } => (
                false,
                (rng.next_exp(1.0 / mean_base_s) * NS_PER_S as f64) as u64,
            ),
            _ => (false, u64::MAX),
        };
        ArrivalGen {
            process,
            rng,
            in_burst,
            next_switch_ns,
        }
    }

    /// Absolute time (ns) of the next arrival after `now_ns`, or `None`
    /// for closed-loop processes (the engine drives those off responses).
    pub fn next_arrival_ns(&mut self, now_ns: u64) -> Option<u64> {
        match self.process {
            ArrivalProcess::ClosedLoop { .. } => None,
            ArrivalProcess::Poisson { rate } => {
                Some(now_ns + (self.rng.next_exp(rate) * NS_PER_S as f64) as u64)
            }
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_base_s,
                mean_burst_s,
            } => {
                // Walk state switches until a draw lands inside the
                // current dwell interval.
                let mut t = now_ns;
                loop {
                    let rate = if self.in_burst { burst_rate } else { base_rate };
                    let gap = (self.rng.next_exp(rate) * NS_PER_S as f64) as u64;
                    if t + gap <= self.next_switch_ns {
                        return Some(t + gap);
                    }
                    t = self.next_switch_ns;
                    self.in_burst = !self.in_burst;
                    let mean_s = if self.in_burst {
                        mean_burst_s
                    } else {
                        mean_base_s
                    };
                    self.next_switch_ns =
                        t + (self.rng.next_exp(1.0 / mean_s) * NS_PER_S as f64) as u64;
                }
            }
            ArrivalProcess::Diurnal {
                low_rate,
                high_rate,
                period_s,
            } => {
                // Thinning against the peak rate: accept a candidate
                // arrival with probability rate(t)/high_rate.
                let mut t = now_ns;
                loop {
                    t += (self.rng.next_exp(high_rate) * NS_PER_S as f64) as u64;
                    let phase = (t as f64 / NS_PER_S as f64) / period_s;
                    let rate = low_rate
                        + (high_rate - low_rate)
                            * 0.5
                            * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                    if self.rng.next_f64() * high_rate <= rate {
                        return Some(t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(process: ArrivalProcess, horizon_s: f64) -> f64 {
        let mut gen = ArrivalGen::new(process, 11);
        let horizon = (horizon_s * NS_PER_S as f64) as u64;
        let mut t = 0u64;
        let mut n = 0u64;
        while let Some(next) = gen.next_arrival_ns(t) {
            if next > horizon {
                break;
            }
            t = next;
            n += 1;
        }
        n as f64 / horizon_s
    }

    #[test]
    fn poisson_rate_is_respected() {
        let rate = mean_rate(ArrivalProcess::Poisson { rate: 2_000.0 }, 20.0);
        assert!((rate - 2_000.0).abs() < 100.0, "measured {rate}");
    }

    #[test]
    fn mmpp_rate_lies_between_states() {
        let rate = mean_rate(
            ArrivalProcess::Mmpp {
                base_rate: 500.0,
                burst_rate: 5_000.0,
                mean_base_s: 0.5,
                mean_burst_s: 0.5,
            },
            40.0,
        );
        // Equal dwell times → long-run mean near the midpoint.
        assert!((1_000.0..4_500.0).contains(&rate), "measured {rate}");
    }

    #[test]
    fn diurnal_rate_averages_the_ramp() {
        let rate = mean_rate(
            ArrivalProcess::Diurnal {
                low_rate: 100.0,
                high_rate: 1_900.0,
                period_s: 5.0,
            },
            20.0,
        );
        // Sinusoid midpoint = (low + high) / 2 over whole periods.
        assert!((rate - 1_000.0).abs() < 120.0, "measured {rate}");
    }

    #[test]
    fn closed_loop_yields_no_open_arrivals() {
        let mut gen = ArrivalGen::new(
            ArrivalProcess::ClosedLoop {
                clients: 4,
                think_us: 0,
            },
            3,
        );
        assert_eq!(gen.next_arrival_ns(0), None);
    }
}
