//! Simulation outcomes: per-class latency/queue-wait percentiles,
//! throughput and goodput, shed and deadline-miss counts, plus an
//! optional chrome-trace dump (load `chrome://tracing` or Perfetto and
//! drop the JSON in to see every request as a horizontal bar).
//!
//! Everything here is dependency-free: the JSON emitters build strings
//! by hand, matching the repo's no-external-crates rule.

use crate::scheduler::Class;

/// Raw per-class accumulators filled by the engine.
#[derive(Debug, Default, Clone)]
pub struct ClassStats {
    /// Requests that entered the system.
    pub offered: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Completed requests that finished after their deadline.
    pub deadline_misses: u64,
    /// End-to-end latency of each completed request, µs.
    pub latencies_us: Vec<u64>,
    /// Batch-queue wait of each completed request, µs.
    pub queue_wait_us: Vec<u64>,
    /// Flush count (kept on the overall/interactive row only).
    pub flushes: u64,
    /// Total rows across all flushes (overall row only).
    pub batched_rows: u64,
}

/// One completed span for the chrome-trace dump.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// `"request"` or `"shed"`.
    pub name: &'static str,
    /// Priority class of the request.
    pub class: Class,
    /// Span start (request arrival), µs since sim start.
    pub start_us: u64,
    /// Span duration, µs (≥ 1 so trace viewers render it).
    pub dur_us: u64,
}

/// Digested statistics for one class (or the overall union).
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// Class name, or `"overall"`.
    pub name: &'static str,
    /// Requests that entered the system.
    pub offered: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Completed requests that finished after their deadline.
    pub deadline_misses: u64,
    /// Median end-to-end latency, µs.
    pub p50_us: u64,
    /// 95th-percentile latency, µs.
    pub p95_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Median batch-queue wait, µs.
    pub queue_wait_p50_us: u64,
    /// 99th-percentile batch-queue wait, µs.
    pub queue_wait_p99_us: u64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Requests completed *within their deadline* per second.
    pub goodput_rps: f64,
}

/// The full simulation result.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheduler under test (`"fixed"` / `"adaptive"`).
    pub scheduler: &'static str,
    /// The configured SLO, µs.
    pub slo_us: u64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Union of all classes.
    pub overall: ClassReport,
    /// Per-class digests, indexed by [`Class`] discriminant.
    pub classes: [ClassReport; 3],
    /// Number of executor flushes.
    pub flushes: u64,
    /// Mean rows per flush.
    pub mean_batch: f64,
    /// Chrome-trace spans (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

/// `p`-th percentile (0–100) of `values`, which are sorted in place.
/// Returns 0 for an empty slice.
pub fn percentile_us(values: &mut [u64], p: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    // Nearest-rank, matching loadgen's client-side percentile rule.
    let rank = ((p / 100.0 * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

fn digest(name: &'static str, stats: &mut ClassStats, duration_s: f64) -> ClassReport {
    let within = stats.completed - stats.deadline_misses;
    ClassReport {
        name,
        offered: stats.offered,
        completed: stats.completed,
        shed: stats.shed,
        deadline_misses: stats.deadline_misses,
        p50_us: percentile_us(&mut stats.latencies_us, 50.0),
        p95_us: percentile_us(&mut stats.latencies_us, 95.0),
        p99_us: percentile_us(&mut stats.latencies_us, 99.0),
        queue_wait_p50_us: percentile_us(&mut stats.queue_wait_us, 50.0),
        queue_wait_p99_us: percentile_us(&mut stats.queue_wait_us, 99.0),
        throughput_rps: stats.completed as f64 / duration_s.max(1e-9),
        goodput_rps: within as f64 / duration_s.max(1e-9),
    }
}

impl SimReport {
    /// Digests the engine's raw accumulators into a report.
    pub fn build(
        scheduler: &'static str,
        slo_us: u64,
        duration_s: f64,
        stats: [ClassStats; 3],
        trace: Vec<TraceEvent>,
    ) -> SimReport {
        let flushes = stats[0].flushes;
        let batched_rows = stats[0].batched_rows;
        let mut overall = ClassStats::default();
        for s in &stats {
            overall.offered += s.offered;
            overall.completed += s.completed;
            overall.shed += s.shed;
            overall.deadline_misses += s.deadline_misses;
            overall.latencies_us.extend_from_slice(&s.latencies_us);
            overall.queue_wait_us.extend_from_slice(&s.queue_wait_us);
        }
        let mut stats = stats;
        let classes = [
            digest("interactive", &mut stats[0], duration_s),
            digest("close", &mut stats[1], duration_s),
            digest("bulk", &mut stats[2], duration_s),
        ];
        SimReport {
            scheduler,
            slo_us,
            duration_s,
            overall: digest("overall", &mut overall, duration_s),
            classes,
            flushes,
            mean_batch: batched_rows as f64 / flushes.max(1) as f64,
            trace,
        }
    }

    /// The report as a JSON object string (hand-built; no serde).
    pub fn to_json(&self) -> String {
        fn class_json(c: &ClassReport) -> String {
            format!(
                concat!(
                    "{{\"offered\": {}, \"completed\": {}, \"shed\": {}, ",
                    "\"deadline_misses\": {}, \"p50_us\": {}, \"p95_us\": {}, ",
                    "\"p99_us\": {}, \"queue_wait_p50_us\": {}, ",
                    "\"queue_wait_p99_us\": {}, \"throughput_rps\": {:.1}, ",
                    "\"goodput_rps\": {:.1}}}"
                ),
                c.offered,
                c.completed,
                c.shed,
                c.deadline_misses,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.queue_wait_p50_us,
                c.queue_wait_p99_us,
                c.throughput_rps,
                c.goodput_rps,
            )
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"scheduler\": \"{}\",\n", self.scheduler));
        out.push_str(&format!("  \"slo_us\": {},\n", self.slo_us));
        out.push_str(&format!("  \"duration_s\": {:.3},\n", self.duration_s));
        out.push_str(&format!("  \"flushes\": {},\n", self.flushes));
        out.push_str(&format!("  \"mean_batch\": {:.2},\n", self.mean_batch));
        out.push_str(&format!("  \"overall\": {},\n", class_json(&self.overall)));
        out.push_str("  \"classes\": {\n");
        for (i, c) in self.classes.iter().enumerate() {
            let comma = if i + 1 < self.classes.len() { "," } else { "" };
            out.push_str(&format!("    \"{}\": {}{}\n", c.name, class_json(c), comma));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// The collected spans in chrome-trace ("traceEvents") format.
    pub fn trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, ev) in self.trace.iter().enumerate() {
            let comma = if i + 1 < self.trace.len() { "," } else { "" };
            out.push_str(&format!(
                concat!(
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", ",
                    "\"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}{}\n"
                ),
                ev.name,
                ev.class.as_str(),
                ev.start_us,
                ev.dur_us,
                ev.class as usize + 1,
                comma
            ));
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile_us(&mut [], 99.0), 0);
        assert_eq!(percentile_us(&mut [7], 50.0), 7);
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&mut v, 50.0), 50);
        assert_eq!(percentile_us(&mut v, 99.0), 99);
        assert_eq!(percentile_us(&mut v, 100.0), 100);
    }

    #[test]
    fn build_merges_classes_into_overall() {
        let a = ClassStats {
            offered: 10,
            completed: 9,
            shed: 1,
            latencies_us: vec![100; 9],
            queue_wait_us: vec![10; 9],
            flushes: 3,
            batched_rows: 9,
            ..ClassStats::default()
        };
        let b = ClassStats {
            offered: 5,
            completed: 5,
            deadline_misses: 2,
            latencies_us: vec![900; 5],
            queue_wait_us: vec![90; 5],
            ..ClassStats::default()
        };
        let report = SimReport::build(
            "adaptive",
            10_000,
            2.0,
            [a, ClassStats::default(), b],
            Vec::new(),
        );
        assert_eq!(report.overall.offered, 15);
        assert_eq!(report.overall.completed, 14);
        assert_eq!(report.overall.shed, 1);
        assert_eq!(report.overall.deadline_misses, 2);
        assert_eq!(report.overall.p50_us, 100);
        assert_eq!(report.overall.p99_us, 900);
        assert!((report.overall.throughput_rps - 7.0).abs() < 1e-9);
        assert!((report.overall.goodput_rps - 6.0).abs() < 1e-9);
        assert!((report.mean_batch - 3.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"scheduler\": \"adaptive\""));
        assert!(json.contains("\"bulk\""));
    }

    #[test]
    fn trace_json_is_chrome_shaped() {
        let report = SimReport::build(
            "fixed",
            10_000,
            1.0,
            [
                ClassStats::default(),
                ClassStats::default(),
                ClassStats::default(),
            ],
            vec![TraceEvent {
                name: "request",
                class: Class::Interactive,
                start_us: 5,
                dur_us: 120,
            }],
        );
        let json = report.trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ts\": 5"));
    }
}
