//! Deterministic pseudo-randomness for the simulator.
//!
//! The crate is dependency-free by design (simulation results must be
//! bit-reproducible across machines and toolchains), so this is a
//! self-contained SplitMix64 — the same generator the `rand` shim seeds
//! its `StdRng` with — plus the handful of distributions the arrival
//! processes need.

/// SplitMix64: tiny, fast, and passes BigCrush for the purposes of a
/// workload generator. One instance per simulated stream keeps draws
/// independent of event interleaving.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential draw with the given rate (events per unit time).
    /// Returns the inter-arrival gap in the same unit.
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential rate must be positive");
        // 1 - u avoids ln(0); u is in [0, 1).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Uniform integer in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at workload-generation fidelity.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn exponential_mean_tracks_rate() {
        let mut rng = SimRng::new(7);
        let rate = 250.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(rate)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.1 / rate,
            "mean gap {mean} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn uniform_is_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(rng.next_below(7) < 7);
        }
    }
}
