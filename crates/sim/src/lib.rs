//! `traj-sim`: a deterministic discrete-event simulator of the
//! `traj-serve` pipeline.
//!
//! Why simulate a server we can just run? Because scheduling policies
//! are cheap to evaluate in virtual time and expensive in wall time: a
//! sweep over arrival rates × schedulers × queue caps that would take
//! hours of load testing runs in seconds here, deterministically, with
//! no measurement noise. The policy that wins in the simulator — the
//! deadline-driven adaptive batcher — is the one `traj_serve::batch`
//! ships, and `bench_serve` closes the loop by checking the simulator's
//! latency predictions against the real server on the same hardware.
//!
//! The model (see [`engine`]) is deliberately small: an arrival process
//! feeds requests through a bounded worker pool (preprocessing), an
//! admission-controlled priority queue, a pluggable batching policy, and
//! an executor — all contending for a FIFO-granted pool of CPU cores,
//! which is what makes single-core containers behave like single-core
//! containers. Service times come from an affine model fitted to
//! measured per-batch timings ([`service::ServiceModel::fit`]).
//!
//! ```
//! use traj_sim::{ArrivalProcess, SchedulerKind, Sim, SimConfig};
//!
//! let report = Sim::new(SimConfig {
//!     arrival: ArrivalProcess::Poisson { rate: 4_000.0 },
//!     scheduler: SchedulerKind::Adaptive { max_batch: 128 },
//!     duration_s: 2.0,
//!     ..SimConfig::default()
//! })
//! .run();
//! assert!(report.overall.completed > 0);
//! println!("{}", report.to_json());
//! ```
//!
//! Everything is dependency-free and seed-deterministic: identical
//! configs produce byte-identical reports and traces.

pub mod arrival;
pub mod engine;
pub mod report;
pub mod rng;
pub mod scheduler;
pub mod service;

pub use arrival::{ArrivalProcess, NS_PER_S};
pub use engine::{Sim, SimConfig};
pub use report::{percentile_us, ClassReport, ClassStats, SimReport, TraceEvent};
pub use rng::SimRng;
pub use scheduler::{adaptive_batch_size, Class, Decision, QueueView, SchedulerKind};
pub use service::ServiceModel;
