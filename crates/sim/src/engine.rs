//! The discrete-event core: a deterministic replay of the `traj-serve`
//! pipeline — arrivals → request workers (preprocessing) → bounded
//! batch queue (admission control) → batching policy → executor.
//!
//! Two resource constraints shape the latency curves:
//!
//! * **Request workers** (`workers`): each in-flight request holds one
//!   worker thread through preprocessing, exactly like the server's
//!   connection pool.
//! * **CPU cores** (`cores`): every unit of work — per-request
//!   preprocessing *and* batch execution — runs on a FIFO-granted pool
//!   of `cores` processors. On the 1-core containers the benches run on,
//!   this shared constraint (not the batcher) bounds peak throughput,
//!   and modeling it is what makes the sim-vs-real p99 agreement check
//!   meaningful.
//!
//! Determinism: the event heap orders by `(time, sequence)`, every
//! random draw comes from seeded [`SimRng`](crate::rng::SimRng) streams,
//! and no wall-clock values enter the state — identical configs produce
//! identical traces.

use crate::arrival::{ArrivalGen, ArrivalProcess, NS_PER_S};
use crate::report::{ClassStats, SimReport, TraceEvent};
use crate::rng::SimRng;
use crate::scheduler::{Class, Decision, QueueView, SchedulerKind};
use crate::service::ServiceModel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Full simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How requests arrive.
    pub arrival: ArrivalProcess,
    /// The batching policy under test.
    pub scheduler: SchedulerKind,
    /// Measured service-time model of the pipeline.
    pub service: ServiceModel,
    /// Per-request scheduling deadline (queue wait + flush), µs.
    pub slo_us: u64,
    /// Batch-queue admission cap; 0 disables shedding.
    pub queue_cap: usize,
    /// Request-worker threads (the server's connection pool).
    pub workers: usize,
    /// CPU cores shared by preprocessing and batch execution.
    pub cores: usize,
    /// Traffic mix over [interactive, close, bulk]; normalized on use.
    pub class_mix: [f64; 3],
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Seed for every random stream.
    pub seed: u64,
    /// Closed-loop only: how long a shed client backs off before
    /// retrying, µs (models honoring `Retry-After`).
    pub shed_backoff_us: u64,
    /// Scale of the OS-scheduling jitter taxed onto every preprocessing
    /// task and timer wake, µs (0 = pristine machine): 98% of draws are
    /// exponential with this mean, 2% are lost timeslices ten times
    /// longer (overall mean 1.18× the scale). On a saturated host,
    /// threads are routinely preempted mid-request; without this tax the
    /// simulated tail is implausibly clean.
    pub sched_jitter_us: f64,
    /// Collect chrome-trace events (bounded; see [`Sim::TRACE_CAP`]).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            arrival: ArrivalProcess::Poisson { rate: 5_000.0 },
            scheduler: SchedulerKind::Adaptive { max_batch: 128 },
            service: ServiceModel {
                alpha_ns: 20_000.0,
                beta_ns: 2_600.0, // ~381k rows/s: BENCH_predict.json forest
                pre_ns: 60_000.0,
            },
            slo_us: 10_000,
            queue_cap: 256,
            workers: 4,
            cores: 1,
            class_mix: [1.0, 0.0, 0.0],
            duration_s: 10.0,
            seed: 42,
            shed_backoff_us: 1_000,
            sched_jitter_us: 0.0,
            trace: false,
        }
    }
}

/// One simulated request's lifecycle timestamps (ns).
#[derive(Debug, Clone)]
struct Request {
    class: Class,
    /// When the request entered the system (client send).
    arrival_ns: u64,
    /// When preprocessing finished and the job entered the batch queue.
    enqueue_ns: u64,
    /// Scheduling deadline: `enqueue + slo`.
    deadline_ns: u64,
    /// When the job was popped for a flush.
    flush_ns: u64,
    /// Closed-loop client that issued it, if any.
    client: Option<usize>,
}

/// Units of CPU work.
#[derive(Debug)]
enum CpuTask {
    /// Preprocessing of one request.
    Pre(usize),
    /// One flush of the listed requests.
    Exec(Vec<usize>),
}

/// Heap events; `seq` makes equal-time ordering deterministic.
#[derive(Debug)]
enum Ev {
    /// Open-loop arrival (class pre-drawn).
    Arrival(Class),
    /// Closed-loop client issues its next request.
    ClientIssue(usize),
    /// A CPU task completed.
    CpuDone(CpuTask),
    /// The batching policy asked to be re-polled.
    BatcherWake,
}

struct HeapEntry {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulator. Build with a [`SimConfig`], consume with [`Sim::run`].
pub struct Sim {
    config: SimConfig,
    clock_ns: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    requests: Vec<Request>,
    // Request-worker pool.
    workers_busy: usize,
    worker_wait: VecDeque<usize>,
    // CPU pool (FIFO grant).
    cpu_busy: usize,
    cpu_queue: VecDeque<(CpuTask, u64)>,
    /// `Some(t)`: at least one core has been free since `t`. `None`
    /// while the pool is saturated. The batcher thread needs a core to
    /// observe its queue, so policy timers cannot anchor earlier than
    /// this — on one core a preprocessing backlog delays the fixed
    /// policy's delay clock, exactly as it does in `traj-serve`.
    cpu_free_since_ns: Option<u64>,
    // Batch queue, one FIFO per class.
    queues: [VecDeque<usize>; 3],
    depth: usize,
    exec_busy: bool,
    exec_idle_since_ns: u64,
    /// Fixed policy only: the latched flush time. The real batcher arms
    /// its delay timer once per idle period and flushes whatever is
    /// queued when it fires — late jobs miss the round and wait out
    /// their own timer, they do not postpone the cohort.
    fixed_flush_at_ns: Option<u64>,
    // Outcome accumulators.
    stats: [ClassStats; 3],
    trace: Vec<TraceEvent>,
    class_rng: SimRng,
    jitter_rng: SimRng,
    horizon_ns: u64,
}

impl Sim {
    /// Trace events are capped so long simulations stay bounded.
    pub const TRACE_CAP: usize = 100_000;

    /// A simulator ready to run `config`.
    pub fn new(config: SimConfig) -> Sim {
        let horizon_ns = (config.duration_s * NS_PER_S as f64) as u64;
        let class_rng = SimRng::new(config.seed ^ 0x0c1a_55e5);
        let jitter_rng = SimRng::new(config.seed ^ 0x5c4e_d111);
        Sim {
            config,
            clock_ns: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            requests: Vec::new(),
            workers_busy: 0,
            worker_wait: VecDeque::new(),
            cpu_busy: 0,
            cpu_queue: VecDeque::new(),
            cpu_free_since_ns: Some(0),
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            depth: 0,
            exec_busy: false,
            exec_idle_since_ns: 0,
            fixed_flush_at_ns: None,
            stats: [
                ClassStats::default(),
                ClassStats::default(),
                ClassStats::default(),
            ],
            trace: Vec::new(),
            class_rng,
            jitter_rng,
            horizon_ns,
        }
    }

    /// One seeded scheduling-jitter draw, ns (0 when the model is
    /// disabled). A two-component mixture: 98% routine wake-to-run
    /// delays, exponential with mean `sched_jitter_us`; 2% lost
    /// timeslices, an order of magnitude longer. The heavy tail is what
    /// makes the fixed policy's round-misses reproducible — a purely
    /// exponential tax never produces the multi-millisecond preemptions
    /// real saturated hosts do.
    fn jitter_ns(&mut self) -> u64 {
        let m = self.config.sched_jitter_us;
        if m <= 0.0 {
            return 0;
        }
        let mean_ns = if self.jitter_rng.next_f64() < 0.02 {
            m * 10_000.0
        } else {
            m * 1_000.0
        };
        self.jitter_rng.next_exp(1.0 / mean_ns) as u64
    }

    /// Preprocessing cost of one request: the calibrated mean plus a
    /// scheduling-jitter draw.
    fn pre_duration_ns(&mut self) -> u64 {
        self.config.service.pre_ns as u64 + self.jitter_ns()
    }

    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn draw_class(&mut self) -> Class {
        let mix = self.config.class_mix;
        let total: f64 = mix.iter().sum();
        if total <= 0.0 {
            return Class::Interactive;
        }
        let u = self.class_rng.next_f64() * total;
        if u < mix[0] {
            Class::Interactive
        } else if u < mix[0] + mix[1] {
            Class::Close
        } else {
            Class::Bulk
        }
    }

    /// Runs to completion and produces the report.
    pub fn run(mut self) -> SimReport {
        // Seed the initial events.
        match self.config.arrival {
            ArrivalProcess::ClosedLoop { clients, .. } => {
                for c in 0..clients.max(1) {
                    self.push(0, Ev::ClientIssue(c));
                }
            }
            _ => {
                let mut gen = ArrivalGen::new(self.config.arrival, self.config.seed);
                // Pre-draw the whole open-loop arrival schedule: draws
                // are then independent of event interleaving.
                let mut t = 0u64;
                while let Some(next) = gen.next_arrival_ns(t) {
                    if next > self.horizon_ns {
                        break;
                    }
                    t = next;
                    let class = self.draw_class();
                    self.push(t, Ev::Arrival(class));
                }
            }
        }

        while let Some(Reverse(entry)) = self.heap.pop() {
            self.clock_ns = entry.at;
            match entry.ev {
                Ev::Arrival(class) => self.on_request(class, None),
                Ev::ClientIssue(client) => {
                    if self.clock_ns <= self.horizon_ns {
                        let class = self.draw_class();
                        self.on_request(class, Some(client));
                    }
                }
                Ev::CpuDone(task) => self.on_cpu_done(task),
                Ev::BatcherWake => self.try_flush(),
            }
        }

        self.finish()
    }

    /// A new request enters: record it and claim a worker.
    fn on_request(&mut self, class: Class, client: Option<usize>) {
        let id = self.requests.len();
        self.requests.push(Request {
            class,
            arrival_ns: self.clock_ns,
            enqueue_ns: 0,
            deadline_ns: 0,
            flush_ns: 0,
            client,
        });
        self.stats[class as usize].offered += 1;
        if self.workers_busy < self.config.workers.max(1) {
            self.workers_busy += 1;
            let dur = self.pre_duration_ns();
            self.submit_cpu(CpuTask::Pre(id), dur);
        } else {
            self.worker_wait.push_back(id);
        }
    }

    fn submit_cpu(&mut self, task: CpuTask, dur_ns: u64) {
        let cores = self.config.cores.max(1);
        if self.cpu_busy < cores {
            self.cpu_busy += 1;
            if self.cpu_busy == cores {
                self.cpu_free_since_ns = None;
            }
            self.push(self.clock_ns + dur_ns, Ev::CpuDone(task));
        } else {
            self.cpu_queue.push_back((task, dur_ns));
        }
    }

    fn on_cpu_done(&mut self, task: CpuTask) {
        // Free the core and grant it to the next queued task first, so
        // completion side effects below see a consistent pool.
        self.cpu_busy -= 1;
        if let Some((next, dur)) = self.cpu_queue.pop_front() {
            self.cpu_busy += 1;
            self.push(self.clock_ns + dur, Ev::CpuDone(next));
        }
        if self.cpu_busy < self.config.cores.max(1) && self.cpu_free_since_ns.is_none() {
            self.cpu_free_since_ns = Some(self.clock_ns);
        }
        match task {
            CpuTask::Pre(id) => self.on_pre_done(id),
            CpuTask::Exec(ids) => self.on_exec_done(&ids),
        }
    }

    /// Preprocessing finished: release the worker and run admission.
    fn on_pre_done(&mut self, id: usize) {
        self.workers_busy -= 1;
        if let Some(next) = self.worker_wait.pop_front() {
            self.workers_busy += 1;
            let dur = self.pre_duration_ns();
            self.submit_cpu(CpuTask::Pre(next), dur);
        }

        let class = self.requests[id].class;
        if self.shed(class) {
            self.stats[class as usize].shed += 1;
            let arrival = self.requests[id].arrival_ns;
            self.trace_event("shed", class, arrival, self.clock_ns - arrival);
            if let Some(client) = self.requests[id].client {
                // The client saw a 429: back off, then retry.
                if let ArrivalProcess::ClosedLoop { think_us, .. } = self.config.arrival {
                    let wait = (think_us + self.config.shed_backoff_us) * 1_000;
                    self.push(self.clock_ns + wait, Ev::ClientIssue(client));
                }
            }
            return;
        }

        let slo_ns = self.config.slo_us * 1_000;
        self.requests[id].enqueue_ns = self.clock_ns;
        self.requests[id].deadline_ns = self.clock_ns + slo_ns;
        self.queues[class as usize].push_back(id);
        self.depth += 1;
        self.try_flush();
    }

    /// Admission control, mirroring `traj_serve::batch`: bulk jobs are
    /// rejected at half the cap so interactive headroom survives a bulk
    /// flood; interactive jobs use the full cap; close-time jobs are
    /// never shed (the stream engine already consumed the segment).
    fn shed(&self, class: Class) -> bool {
        let cap = self.config.queue_cap;
        if cap == 0 {
            return false;
        }
        let limit = match class {
            Class::Bulk => (cap / 2).max(1),
            Class::Interactive => cap,
            Class::Close => return false,
        };
        self.depth >= limit
    }

    /// Polls the policy while the executor is idle and jobs are queued.
    fn try_flush(&mut self) {
        if self.depth == 0 {
            // A wake can fire after a size-triggered flush already
            // emptied the queue; the stale timer must not carry over to
            // the next cohort.
            self.fixed_flush_at_ns = None;
            return;
        }
        if self.exec_busy {
            return;
        }
        let (oldest_enqueue, oldest_deadline) = Class::ALL
            .iter()
            .filter_map(|&c| self.queues[c as usize].front())
            .map(|&id| (self.requests[id].enqueue_ns, self.requests[id].deadline_ns))
            .min()
            .expect("depth > 0");
        let view = QueueView {
            now_ns: self.clock_ns,
            depth: self.depth,
            oldest_enqueue_ns: oldest_enqueue,
            oldest_deadline_ns: oldest_deadline,
            // The batcher thread last got the floor when the executor
            // was idle AND a core was free to schedule it on.
            idle_since_ns: self
                .exec_idle_since_ns
                .max(self.cpu_free_since_ns.unwrap_or(self.clock_ns)),
            armed_flush_at_ns: self.fixed_flush_at_ns,
            model: &self.config.service,
        };
        let was_armed = self.fixed_flush_at_ns.is_some();
        match self.config.scheduler.poll(&view) {
            Decision::WaitUntil(at) => {
                if at > self.clock_ns {
                    if !was_armed {
                        // Latch the timer; jobs arriving before the wake
                        // join this round without restarting the clock.
                        self.fixed_flush_at_ns = Some(at);
                        // Timer wakes overshoot on a busy host: the
                        // batcher thread must win the core back first.
                        let wake = at + self.jitter_ns();
                        self.push(wake, Ev::BatcherWake);
                    }
                } else {
                    // A policy returning a past wake must flush instead;
                    // guard against a busy-loop.
                    self.fixed_flush_at_ns = None;
                    self.flush(self.depth);
                }
            }
            Decision::Flush(b) => {
                self.fixed_flush_at_ns = None;
                self.flush(b);
            }
        }
    }

    fn flush(&mut self, b: usize) {
        let b = b.min(self.depth).max(1);
        let mut ids = Vec::with_capacity(b);
        'outer: for class in Class::ALL {
            while let Some(id) = self.queues[class as usize].pop_front() {
                self.requests[id].flush_ns = self.clock_ns;
                ids.push(id);
                if ids.len() == b {
                    break 'outer;
                }
            }
        }
        self.depth -= ids.len();
        self.exec_busy = true;
        let dur = self.config.service.flush_ns(ids.len());
        self.submit_cpu(CpuTask::Exec(ids), dur);
    }

    /// A flush completed: answer every job, then re-poll the policy.
    fn on_exec_done(&mut self, ids: &[usize]) {
        for &id in ids {
            let req = self.requests[id].clone();
            let stats = &mut self.stats[req.class as usize];
            stats.completed += 1;
            stats
                .latencies_us
                .push((self.clock_ns - req.arrival_ns) / 1_000);
            stats
                .queue_wait_us
                .push((req.flush_ns - req.enqueue_ns) / 1_000);
            if self.clock_ns > req.deadline_ns {
                stats.deadline_misses += 1;
            }
            self.trace_event(
                "request",
                req.class,
                req.arrival_ns,
                self.clock_ns - req.arrival_ns,
            );
            if let Some(client) = req.client {
                if let ArrivalProcess::ClosedLoop { think_us, .. } = self.config.arrival {
                    self.push(self.clock_ns + think_us * 1_000, Ev::ClientIssue(client));
                }
            }
        }
        let batch = ids.len();
        self.stats[0].flushes += 1; // flush count kept on the overall row
        self.stats[0].batched_rows += batch as u64;
        self.exec_busy = false;
        self.exec_idle_since_ns = self.clock_ns;
        self.try_flush();
    }

    fn trace_event(&mut self, name: &'static str, class: Class, start_ns: u64, dur_ns: u64) {
        if self.config.trace && self.trace.len() < Sim::TRACE_CAP {
            self.trace.push(TraceEvent {
                name,
                class,
                start_us: start_ns / 1_000,
                dur_us: dur_ns.max(1) / 1_000,
            });
        }
    }

    fn finish(self) -> SimReport {
        SimReport::build(
            self.config.scheduler.as_str(),
            self.config.slo_us,
            self.config.duration_s,
            self.stats,
            self.trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SimConfig {
        SimConfig {
            arrival: ArrivalProcess::Poisson { rate: 3_000.0 },
            duration_s: 4.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn fixed_policy_pays_the_delay_floor() {
        // At moderate load the fixed batcher waits out its 2 ms timer on
        // nearly every batch: p50 latency must sit above the delay while
        // the adaptive policy stays well below it.
        let fixed = Sim::new(SimConfig {
            scheduler: SchedulerKind::Fixed {
                max_batch: 32,
                max_delay_us: 2_000,
            },
            ..base_config()
        })
        .run();
        let adaptive = Sim::new(SimConfig {
            scheduler: SchedulerKind::Adaptive { max_batch: 128 },
            ..base_config()
        })
        .run();
        // Jobs land uniformly inside the 2 ms window, so the fixed
        // policy's p50 sits near half the delay and its p99 near the
        // full delay; the adaptive policy never arms the timer at all.
        assert!(
            fixed.overall.p50_us >= 1_000,
            "fixed p50 {} must reflect the delay window",
            fixed.overall.p50_us
        );
        assert!(
            fixed.overall.p99_us >= 2_000,
            "fixed p99 {} must include the full 2 ms delay",
            fixed.overall.p99_us
        );
        assert!(
            adaptive.overall.p99_us < 1_000,
            "adaptive p99 {} must avoid the delay",
            adaptive.overall.p99_us
        );
        assert_eq!(fixed.overall.shed, 0);
        assert_eq!(adaptive.overall.shed, 0);
    }

    #[test]
    fn overload_sheds_instead_of_collapsing() {
        // Offered ~2× what one core sustains, with a worker pool wide
        // enough that the backlog lands on the batch queue (mirroring a
        // server whose HTTP threads outnumber the admission cap): sheds
        // must appear and queue wait must stay bounded by the cap.
        let report = Sim::new(SimConfig {
            arrival: ArrivalProcess::Poisson { rate: 80_000.0 },
            service: ServiceModel {
                alpha_ns: 20_000.0,
                beta_ns: 2_600.0,
                pre_ns: 20_000.0,
            },
            workers: 256,
            queue_cap: 64,
            duration_s: 3.0,
            ..SimConfig::default()
        })
        .run();
        assert!(report.overall.shed > 0, "overload must shed");
        // 64 queued × ~2.6 µs/row service plus one flush ahead: queue
        // wait stays in the low milliseconds instead of growing with the
        // 4× backlog (which would be seconds by the end of the run).
        assert!(
            report.overall.queue_wait_p99_us < 50_000,
            "queue wait p99 {} µs must stay bounded",
            report.overall.queue_wait_p99_us
        );
    }

    #[test]
    fn closed_loop_matches_client_count() {
        let report = Sim::new(SimConfig {
            arrival: ArrivalProcess::ClosedLoop {
                clients: 4,
                think_us: 0,
            },
            duration_s: 2.0,
            ..SimConfig::default()
        })
        .run();
        assert!(report.overall.completed > 1_000);
        assert_eq!(report.overall.shed, 0);
        // Closed loop: in-flight never exceeds the client count, so
        // latency ≈ clients × per-request work stays in the hundreds of µs.
        assert!(
            report.overall.p99_us < 5_000,
            "p99 {}",
            report.overall.p99_us
        );
    }

    #[test]
    fn bulk_floods_shed_before_interactive() {
        let report = Sim::new(SimConfig {
            arrival: ArrivalProcess::Poisson { rate: 80_000.0 },
            class_mix: [0.2, 0.0, 0.8],
            workers: 256,
            queue_cap: 64,
            service: ServiceModel {
                alpha_ns: 20_000.0,
                beta_ns: 2_600.0,
                pre_ns: 20_000.0,
            },
            duration_s: 3.0,
            ..SimConfig::default()
        })
        .run();
        let interactive = &report.classes[0];
        let bulk = &report.classes[2];
        assert!(bulk.shed > 0, "bulk must shed under a flood");
        let bulk_rate = bulk.shed as f64 / bulk.offered.max(1) as f64;
        let int_rate = interactive.shed as f64 / interactive.offered.max(1) as f64;
        assert!(
            bulk_rate > int_rate,
            "bulk shed rate {bulk_rate:.3} must exceed interactive {int_rate:.3}"
        );
    }
}
