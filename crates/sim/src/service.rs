//! The service-time model: what one flush of `b` rows costs.
//!
//! `traj-serve`'s flush cost is affine in the batch size to a very good
//! approximation — one fixed per-flush overhead (grouping, scratch
//! setup, reply fan-out) plus a per-row traversal cost — because the
//! compiled ensembles of `BENCH_predict.json` traverse level-
//! synchronously with near-constant per-row work. The model is therefore
//! `s(b) = alpha + beta·b`, fitted from measured `(batch, duration)`
//! pairs, or derived from a `rows_per_s` throughput figure.

/// Affine batch service-time model, nanosecond coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed cost per flush, ns.
    pub alpha_ns: f64,
    /// Marginal cost per batched row, ns.
    pub beta_ns: f64,
    /// Per-request preprocessing cost outside the batcher (HTTP framing,
    /// JSON parse, featurization, reply serialization), ns.
    pub pre_ns: f64,
}

impl ServiceModel {
    /// Service time of one flush of `batch` rows, ns.
    pub fn flush_ns(&self, batch: usize) -> u64 {
        (self.alpha_ns + self.beta_ns * batch as f64).max(0.0) as u64
    }

    /// Least-squares fit of `(batch_size, duration_ns)` observations.
    /// Degenerate inputs (fewer than two distinct sizes) fall back to a
    /// pure per-row model.
    pub fn fit(samples: &[(usize, f64)], pre_ns: f64) -> ServiceModel {
        let n = samples.len() as f64;
        let distinct = {
            let mut sizes: Vec<usize> = samples.iter().map(|&(b, _)| b).collect();
            sizes.sort_unstable();
            sizes.dedup();
            sizes.len()
        };
        if distinct < 2 {
            let mean_rate = samples
                .iter()
                .map(|&(b, d)| d / b.max(1) as f64)
                .sum::<f64>()
                / n.max(1.0);
            return ServiceModel {
                alpha_ns: 0.0,
                beta_ns: if mean_rate.is_finite() {
                    mean_rate
                } else {
                    0.0
                },
                pre_ns,
            };
        }
        let sx: f64 = samples.iter().map(|&(b, _)| b as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, d)| d).sum();
        let sxx: f64 = samples.iter().map(|&(b, _)| (b as f64) * (b as f64)).sum();
        let sxy: f64 = samples.iter().map(|&(b, d)| b as f64 * d).sum();
        let denom = n * sxx - sx * sx;
        let beta = (n * sxy - sx * sy) / denom;
        let alpha = (sy - beta * sx) / n;
        ServiceModel {
            // A negative intercept (noise at tiny batches) clamps to 0.
            alpha_ns: alpha.max(0.0),
            beta_ns: beta.max(0.0),
            pre_ns,
        }
    }

    /// Model derived from a steady-state row throughput (e.g. the
    /// `compiled_rows_per_s` figures of `results/BENCH_predict.json`),
    /// with an assumed fixed per-flush overhead.
    pub fn from_rows_per_s(rows_per_s: f64, alpha_us: f64, pre_us: f64) -> ServiceModel {
        ServiceModel {
            alpha_ns: alpha_us * 1_000.0,
            beta_ns: 1e9 / rows_per_s,
            pre_ns: pre_us * 1_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_affine_coefficients() {
        let samples: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&b| (b, 20_000.0 + 2_500.0 * b as f64))
            .collect();
        let m = ServiceModel::fit(&samples, 0.0);
        assert!((m.alpha_ns - 20_000.0).abs() < 1.0, "{m:?}");
        assert!((m.beta_ns - 2_500.0).abs() < 1.0, "{m:?}");
        assert_eq!(m.flush_ns(8), 40_000);
    }

    #[test]
    fn single_size_falls_back_to_per_row() {
        let m = ServiceModel::fit(&[(32, 64_000.0)], 0.0);
        assert_eq!(m.alpha_ns, 0.0);
        assert!((m.beta_ns - 2_000.0).abs() < 1.0);
    }

    #[test]
    fn rows_per_s_inverts_to_beta() {
        let m = ServiceModel::from_rows_per_s(400_000.0, 15.0, 50.0);
        assert!((m.beta_ns - 2_500.0).abs() < 1.0);
        assert_eq!(m.flush_ns(0), 15_000);
        assert_eq!(m.pre_ns, 50_000.0);
    }
}
