//! `simrun` — run one `traj-sim` scenario from the command line.
//!
//! ```text
//! simrun [--scheduler fixed|adaptive] [--arrival poisson|mmpp|diurnal|closed]
//!        [--rate RPS] [--clients N] [--think-us US] [--duration-s S]
//!        [--slo-ms MS] [--queue-cap N] [--max-batch N] [--max-delay-us US]
//!        [--workers N] [--cores N] [--seed S] [--bulk-frac F]
//!        [--trace PATH] [--json]
//! ```
//!
//! Prints a human summary (or the full JSON report with `--json`) and
//! optionally writes a chrome-trace file loadable in Perfetto.

use std::collections::HashMap;
use std::process::ExitCode;
use traj_sim::{ArrivalProcess, SchedulerKind, ServiceModel, Sim, SimConfig};

struct Args {
    config: SimConfig,
    trace_path: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut map = HashMap::new();
    let mut flags = Vec::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter().peekable();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {arg:?}"))?;
        if key == "json" {
            flags.push(key.to_owned());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    let num = |key: &str, default: f64| -> Result<f64, String> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} {v:?}")),
        }
    };

    let rate = num("rate", 5_000.0)?;
    let arrival = match map.get("arrival").map(String::as_str).unwrap_or("poisson") {
        "poisson" => ArrivalProcess::Poisson { rate },
        "mmpp" => ArrivalProcess::Mmpp {
            base_rate: rate,
            burst_rate: num("burst-rate", rate * 4.0)?,
            mean_base_s: num("mean-base-s", 1.0)?,
            mean_burst_s: num("mean-burst-s", 0.25)?,
        },
        "diurnal" => ArrivalProcess::Diurnal {
            low_rate: num("low-rate", rate * 0.1)?,
            high_rate: rate,
            period_s: num("period-s", 10.0)?,
        },
        "closed" => ArrivalProcess::ClosedLoop {
            clients: num("clients", 8.0)? as usize,
            think_us: num("think-us", 0.0)? as u64,
        },
        other => return Err(format!("unknown --arrival {other:?}")),
    };

    let max_batch = num("max-batch", 128.0)? as usize;
    let scheduler = match map
        .get("scheduler")
        .map(String::as_str)
        .unwrap_or("adaptive")
    {
        "adaptive" => SchedulerKind::Adaptive { max_batch },
        "fixed" => SchedulerKind::Fixed {
            max_batch: if map.contains_key("max-batch") {
                max_batch
            } else {
                32
            },
            max_delay_us: num("max-delay-us", 2_000.0)? as u64,
        },
        other => return Err(format!("unknown --scheduler {other:?}")),
    };

    let bulk_frac = num("bulk-frac", 0.0)?.clamp(0.0, 1.0);
    let config = SimConfig {
        arrival,
        scheduler,
        service: ServiceModel {
            alpha_ns: num("alpha-us", 20.0)? * 1_000.0,
            beta_ns: num("beta-us", 2.6)? * 1_000.0,
            pre_ns: num("pre-us", 60.0)? * 1_000.0,
        },
        slo_us: (num("slo-ms", 10.0)? * 1_000.0) as u64,
        queue_cap: num("queue-cap", 256.0)? as usize,
        workers: num("workers", 4.0)? as usize,
        cores: num("cores", 1.0)? as usize,
        class_mix: [1.0 - bulk_frac, 0.0, bulk_frac],
        duration_s: num("duration-s", 10.0)?,
        seed: num("seed", 42.0)? as u64,
        shed_backoff_us: num("shed-backoff-us", 1_000.0)? as u64,
        sched_jitter_us: num("jitter-us", 0.0)?,
        trace: map.contains_key("trace"),
    };
    Ok(Args {
        config,
        trace_path: map.get("trace").cloned(),
        json: flags.iter().any(|f| f == "json"),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: simrun [--scheduler fixed|adaptive] \
                 [--arrival poisson|mmpp|diurnal|closed] [--rate RPS] \
                 [--clients N] [--think-us US] [--duration-s S] [--slo-ms MS] \
                 [--queue-cap N] [--max-batch N] [--max-delay-us US] \
                 [--workers N] [--cores N] [--seed S] [--bulk-frac F] \
                 [--jitter-us US] [--trace PATH] [--json]"
            );
            return ExitCode::FAILURE;
        }
    };

    let report = Sim::new(args.config).run();

    if let Some(path) = &args.trace_path {
        if let Err(e) = std::fs::write(path, report.trace_json()) {
            eprintln!("error: writing trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace: {} events -> {path}", report.trace.len());
    }

    if args.json {
        print!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }

    println!(
        "simrun: scheduler={} slo={}ms duration={:.1}s",
        report.scheduler,
        report.slo_us / 1_000,
        report.duration_s
    );
    println!(
        "offered:     {:>9}    completed: {:>9}    shed: {:>7}",
        report.overall.offered, report.overall.completed, report.overall.shed
    );
    println!(
        "throughput:  {:>9.1} req/s    goodput: {:>9.1} req/s    deadline misses: {}",
        report.overall.throughput_rps, report.overall.goodput_rps, report.overall.deadline_misses
    );
    println!(
        "latency:     p50 {} µs   p95 {} µs   p99 {} µs",
        report.overall.p50_us, report.overall.p95_us, report.overall.p99_us
    );
    println!(
        "queue wait:  p50 {} µs   p99 {} µs    flushes: {} (mean batch {:.1})",
        report.overall.queue_wait_p50_us,
        report.overall.queue_wait_p99_us,
        report.flushes,
        report.mean_batch
    );
    for class in &report.classes {
        if class.offered == 0 {
            continue;
        }
        println!(
            "  {:<12} offered {:>8}  completed {:>8}  shed {:>6}  p99 {} µs",
            class.name, class.offered, class.completed, class.shed, class.p99_us
        );
    }
    ExitCode::SUCCESS
}
