//! Pluggable batching policies.
//!
//! The simulator's schedulers mirror the real ones in
//! `traj_serve::batch` — same decision rules, same constants — so a
//! policy proven here transfers directly. [`SchedulerKind::Fixed`]
//! reproduces the pre-SLO `max_batch`/`max_delay` micro-batcher
//! (including its timer anchor: the delay clock starts when the batcher
//! thread *sees* the head job, not when the job arrived), and
//! [`SchedulerKind::Adaptive`] is the Nexus-style deadline-driven
//! policy: never wait while the executor is idle, and cap the flush size
//! so the oldest queued job's predicted completion still meets its
//! deadline.

use crate::service::ServiceModel;

/// Request priority class, highest first. Mirrors
/// `traj_serve::batch::Priority`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// `/predict` — a user is waiting.
    Interactive = 0,
    /// `/ingest` close-time predictions — work already paid for.
    Close = 1,
    /// `/predict_batch` — bulk scoring.
    Bulk = 2,
}

impl Class {
    /// All classes, highest priority first (drain order).
    pub const ALL: [Class; 3] = [Class::Interactive, Class::Close, Class::Bulk];

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Close => "close",
            Class::Bulk => "bulk",
        }
    }
}

/// Which batching policy the simulated batcher runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Flush on size or age: the pre-SLO `traj-serve` default
    /// (`max_batch = 32`, `max_delay = 2 ms`).
    Fixed {
        /// Flush when this many jobs are queued.
        max_batch: usize,
        /// Flush when the head job has been *visible* this long, µs.
        max_delay_us: u64,
    },
    /// Deadline-driven adaptive batching: flush immediately whenever the
    /// executor is idle, sizing the batch from queue depth capped so the
    /// oldest job's deadline still holds under the service-time model.
    Adaptive {
        /// Hard flush-size cap (scratch-memory bound).
        max_batch: usize,
    },
}

impl SchedulerKind {
    /// Display name used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulerKind::Fixed { .. } => "fixed",
            SchedulerKind::Adaptive { .. } => "adaptive",
        }
    }
}

/// Everything a policy may consult when the executor is idle and jobs
/// are queued.
#[derive(Debug)]
pub struct QueueView<'a> {
    /// Simulation clock, ns.
    pub now_ns: u64,
    /// Queued jobs across all classes.
    pub depth: usize,
    /// Enqueue time of the oldest queued job, ns.
    pub oldest_enqueue_ns: u64,
    /// Deadline of the oldest queued job, ns.
    pub oldest_deadline_ns: u64,
    /// When the batcher thread last became schedulable, ns: the later
    /// of the executor going idle and a CPU core coming free (the fixed
    /// policy's timer anchor — the real batcher thread cannot see jobs
    /// mid-flush, nor while preprocessing saturates every core).
    pub idle_since_ns: u64,
    /// The fixed policy's latched delay timer, if armed. The real
    /// batcher arms the timer once per idle period and flushes whatever
    /// is queued when it fires: a job that enqueues late misses the
    /// round and waits out its own timer — it never postpones the
    /// cohort's flush.
    pub armed_flush_at_ns: Option<u64>,
    /// The service-time model.
    pub model: &'a ServiceModel,
}

/// A policy's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Pop this many jobs (priority order) and execute them now.
    Flush(usize),
    /// Re-poll at this absolute time (ns) unless something changes first.
    WaitUntil(u64),
}

/// The adaptive flush-size rule, shared verbatim with
/// `traj_serve::batch`: take everything queued up to `max_batch`, but
/// shrink while the predicted service time would push the oldest job
/// past its remaining headroom. If even a single-row flush misses the
/// deadline, the deadline is already lost — take the full batch and
/// maximize throughput instead.
pub fn adaptive_batch_size(
    depth: usize,
    max_batch: usize,
    headroom_ns: u64,
    service_ns: impl Fn(usize) -> u64,
) -> usize {
    let cap = depth.min(max_batch.max(1)).max(1);
    let mut b = cap;
    while b > 1 && service_ns(b) > headroom_ns {
        b -= 1;
    }
    if service_ns(b) <= headroom_ns {
        b
    } else {
        cap
    }
}

impl SchedulerKind {
    /// Decides what the batcher does given `view`. Only called when the
    /// executor is idle and at least one job is queued.
    pub fn poll(&self, view: &QueueView) -> Decision {
        match *self {
            SchedulerKind::Fixed {
                max_batch,
                max_delay_us,
            } => {
                if view.depth >= max_batch {
                    return Decision::Flush(max_batch);
                }
                // The real batcher arms its delay timer when the thread
                // receives the head job — the later of the job's enqueue
                // and the executor going idle — and then *latches* it:
                // later arrivals join the pending round, they do not
                // restart the clock.
                let deadline = view.armed_flush_at_ns.unwrap_or_else(|| {
                    view.oldest_enqueue_ns.max(view.idle_since_ns) + max_delay_us * 1_000
                });
                if view.now_ns >= deadline {
                    Decision::Flush(view.depth)
                } else {
                    Decision::WaitUntil(deadline)
                }
            }
            SchedulerKind::Adaptive { max_batch } => {
                let headroom = view.oldest_deadline_ns.saturating_sub(view.now_ns);
                Decision::Flush(adaptive_batch_size(view.depth, max_batch, headroom, |b| {
                    view.model.flush_ns(b)
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ServiceModel {
        ServiceModel {
            alpha_ns: 20_000.0,
            beta_ns: 3_000.0,
            pre_ns: 50_000.0,
        }
    }

    fn view(model: &ServiceModel, depth: usize, now_ns: u64) -> QueueView<'_> {
        QueueView {
            now_ns,
            depth,
            oldest_enqueue_ns: 0,
            oldest_deadline_ns: 10_000_000, // 10 ms SLO from enqueue at 0
            idle_since_ns: 0,
            armed_flush_at_ns: None,
            model,
        }
    }

    #[test]
    fn fixed_waits_out_the_delay_below_max_batch() {
        let m = model();
        let fixed = SchedulerKind::Fixed {
            max_batch: 32,
            max_delay_us: 2_000,
        };
        assert_eq!(fixed.poll(&view(&m, 4, 0)), Decision::WaitUntil(2_000_000));
        assert_eq!(fixed.poll(&view(&m, 4, 2_000_000)), Decision::Flush(4));
        assert_eq!(fixed.poll(&view(&m, 40, 10)), Decision::Flush(32));
    }

    #[test]
    fn fixed_anchors_the_timer_at_executor_idle() {
        let m = model();
        let fixed = SchedulerKind::Fixed {
            max_batch: 32,
            max_delay_us: 2_000,
        };
        // Job enqueued at 0 but the executor was busy until t=5ms: the
        // 2 ms clock starts at 5 ms, not 0.
        let v = QueueView {
            now_ns: 5_000_000,
            depth: 3,
            oldest_enqueue_ns: 0,
            oldest_deadline_ns: 10_000_000,
            idle_since_ns: 5_000_000,
            armed_flush_at_ns: None,
            model: &m,
        };
        assert_eq!(fixed.poll(&v), Decision::WaitUntil(7_000_000));
    }

    #[test]
    fn fixed_honors_a_latched_timer_over_the_current_head() {
        let m = model();
        let fixed = SchedulerKind::Fixed {
            max_batch: 32,
            max_delay_us: 2_000,
        };
        // Timer latched at 2 ms for an earlier cohort; a job that
        // enqueued at 1.5 ms neither restarts the clock nor delays it.
        let mut v = view(&m, 4, 1_600_000);
        v.oldest_enqueue_ns = 1_500_000;
        v.armed_flush_at_ns = Some(2_000_000);
        assert_eq!(fixed.poll(&v), Decision::WaitUntil(2_000_000));
        v.now_ns = 2_000_000;
        assert_eq!(fixed.poll(&v), Decision::Flush(4));
    }

    #[test]
    fn adaptive_never_waits() {
        let m = model();
        let adaptive = SchedulerKind::Adaptive { max_batch: 128 };
        assert_eq!(adaptive.poll(&view(&m, 1, 0)), Decision::Flush(1));
        assert_eq!(adaptive.poll(&view(&m, 40, 0)), Decision::Flush(40));
    }

    #[test]
    fn adaptive_shrinks_the_batch_to_hold_the_deadline() {
        // headroom 50 µs, s(b) = 20 + 3b µs → largest b with s(b) ≤ 50 is 10.
        let b = adaptive_batch_size(64, 128, 50_000, |b| 20_000 + 3_000 * b as u64);
        assert_eq!(b, 10);
    }

    #[test]
    fn adaptive_takes_the_full_batch_once_the_deadline_is_lost() {
        // Even b=1 exceeds 10 µs headroom → throughput mode.
        let b = adaptive_batch_size(64, 128, 10_000, |b| 20_000 + 3_000 * b as u64);
        assert_eq!(b, 64);
    }
}
