//! Determinism pin: identical configs (including seed) must produce
//! byte-identical reports and traces; a different seed must not.

use traj_sim::{ArrivalProcess, SchedulerKind, Sim, SimConfig};

fn config(seed: u64) -> SimConfig {
    SimConfig {
        arrival: ArrivalProcess::Mmpp {
            base_rate: 2_000.0,
            burst_rate: 12_000.0,
            mean_base_s: 0.4,
            mean_burst_s: 0.2,
        },
        scheduler: SchedulerKind::Adaptive { max_batch: 128 },
        queue_cap: 128,
        class_mix: [0.6, 0.1, 0.3],
        duration_s: 3.0,
        seed,
        trace: true,
        ..SimConfig::default()
    }
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = Sim::new(config(7)).run();
    let b = Sim::new(config(7)).run();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.trace_json(), b.trace_json());
    // The run must have exercised the interesting paths for the pin to
    // mean anything.
    assert!(a.overall.completed > 1_000, "{}", a.overall.completed);
    assert!(!a.trace.is_empty());
}

#[test]
fn different_seeds_diverge() {
    let a = Sim::new(config(7)).run();
    let b = Sim::new(config(8)).run();
    assert_ne!(a.to_json(), b.to_json());
}

#[test]
fn fixed_scheduler_is_deterministic_too() {
    let make = || SimConfig {
        scheduler: SchedulerKind::Fixed {
            max_batch: 32,
            max_delay_us: 2_000,
        },
        ..config(21)
    };
    let a = Sim::new(make()).run();
    let b = Sim::new(make()).run();
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.overall.completed > 1_000);
}
