//! The thread pool: per-worker deques, a global injector, and worker
//! threads that steal from each other when their own deque runs dry.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of queued work. Scoped tasks are lifetime-erased before they
/// become a `Task` (see `scope.rs`); detached tasks are `'static` by
/// construction.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared by every worker, the injector, and all handles.
pub(crate) struct Shared {
    /// Global FIFO injector: external spawns and overflow land here.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker. The owner pushes/pops at the back (LIFO,
    /// cache-friendly for nested fan-out); thieves steal from the front
    /// (FIFO, oldest-first — the classic work-stealing discipline).
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Sleep/wake coordination for idle workers.
    sleep: Mutex<()>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Detached tasks that panicked (scoped tasks propagate instead).
    panicked_tasks: AtomicUsize,
}

impl Shared {
    fn new(workers: usize) -> Shared {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            panicked_tasks: AtomicUsize::new(0),
        }
    }

    pub(crate) fn n_workers(&self) -> usize {
        self.queues.len()
    }

    /// Queues a task: onto the current worker's own deque when called
    /// from inside this pool, otherwise onto the global injector.
    pub(crate) fn push_task(self: &Arc<Self>, task: Task) {
        let own = crate::current_worker_on(self);
        match own {
            Some(index) => self.queues[index]
                .lock()
                .expect("worker deque poisoned")
                .push_back(task),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .push_back(task),
        }
        // Notify under the sleep lock so a worker between its "no work"
        // check and its wait cannot miss the wakeup.
        let _guard = self.sleep.lock().expect("sleep lock poisoned");
        self.work_cv.notify_one();
    }

    /// Pops the next task: own deque (back), then injector (front), then
    /// steals from sibling deques (front), round-robin from `worker`.
    pub(crate) fn find_task(&self, worker: Option<usize>) -> Option<Task> {
        if let Some(index) = worker {
            if let Some(task) = self.queues[index]
                .lock()
                .expect("worker deque poisoned")
                .pop_back()
            {
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        let start = worker.map_or(0, |w| w + 1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == worker {
                continue;
            }
            if let Some(task) = self.queues[victim]
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                return Some(task);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.queues
            .iter()
            .any(|q| !q.lock().expect("worker deque poisoned").is_empty())
    }

    pub(crate) fn notify_all(&self) {
        let _guard = self.sleep.lock().expect("sleep lock poisoned");
        self.work_cv.notify_all();
    }
}

fn worker_main(shared: Arc<Shared>, index: usize) {
    crate::set_current_worker(&shared, index);
    loop {
        if let Some(task) = shared.find_task(Some(index)) {
            run_detached(task, &shared);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            // Queues were empty after the shutdown flag: nothing left.
            return;
        }
        let guard = shared.sleep.lock().expect("sleep lock poisoned");
        if shared.has_work() || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        // The timeout is a backstop only; pushes notify under `sleep`.
        let _ = shared
            .work_cv
            .wait_timeout(guard, Duration::from_millis(20));
    }
}

/// Runs one task, containing panics so the worker survives. Scoped tasks
/// catch their own panics and propagate them to the scope owner; this
/// outer catch only ever fires for detached [`Runtime::spawn`] tasks.
pub(crate) fn run_detached(task: Task, shared: &Shared) {
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
        shared.panicked_tasks.fetch_add(1, Ordering::Relaxed);
    }
}

/// A work-stealing thread pool.
///
/// Every pool owns `threads` worker threads, each with its own deque, plus
/// a global injector for tasks spawned from outside the pool. Blocking
/// waits ([`Runtime::scope`], [`Runtime::parallel_map`]) *participate*:
/// the waiting thread executes queued tasks instead of sleeping, so
/// nested parallelism cannot deadlock the pool.
///
/// Dropping the pool shuts it down gracefully: already-queued tasks run
/// to completion, then the workers exit and are joined.
pub struct Runtime {
    pub(crate) shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// A pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Runtime {
        Runtime::named(threads, "traj-runtime")
    }

    /// A pool whose worker threads are named `{prefix}-{index}`.
    pub fn named(threads: usize, prefix: &str) -> Runtime {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new(threads));
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{prefix}-{index}"))
                    .spawn(move || worker_main(shared, index))
                    .expect("spawning runtime worker")
            })
            .collect();
        Runtime { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.n_workers()
    }

    /// Queues a detached fire-and-forget task. Panics inside the task are
    /// contained (the worker survives) and counted in
    /// [`Runtime::panicked_tasks`].
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.shared.push_task(Box::new(f));
    }

    /// How many detached tasks have panicked since the pool started.
    pub fn panicked_tasks(&self) -> usize {
        self.shared.panicked_tasks.load(Ordering::Relaxed)
    }

    /// Runs `f` with this pool installed as the current runtime on the
    /// calling thread: every [`crate::scope`], [`crate::parallel_map`] and
    /// [`crate::join`] reached from `f` (including transitively, on this
    /// thread) schedules onto this pool instead of the global one.
    ///
    /// This is how the parity tests force a single-threaded run without
    /// touching the `TRAJ_NUM_THREADS` environment of the whole process.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = crate::install_current(&self.shared);
        f()
    }

    /// Scoped fan-out on this pool; see [`crate::scope`].
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&crate::Scope<'env>) -> R,
    {
        crate::scope_on(&self.shared, f)
    }

    /// Indexed parallel map on this pool; see [`crate::parallel_map`].
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        crate::parallel_map_on(&self.shared, items, f)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<Runtime> = OnceLock::new();

/// The process-wide pool, created on first use with
/// [`crate::default_threads`] workers (the `TRAJ_NUM_THREADS` override,
/// else the machine's available parallelism). Never shut down.
pub fn global() -> &'static Runtime {
    GLOBAL.get_or_init(|| Runtime::new(crate::default_threads()))
}
