//! # traj-runtime
//!
//! A from-scratch, dependency-free work-stealing thread pool shared by
//! every parallel path in the workspace: random-forest training,
//! cross-validation folds, wrapper feature selection, grid search,
//! per-segment feature extraction, and the `traj-serve` connection pool.
//!
//! ## Scheduler
//!
//! Each [`Runtime`] owns N workers. Every worker has its own deque; the
//! owner pushes and pops at the back (LIFO), idle workers steal from the
//! front of sibling deques (FIFO), and tasks spawned from outside the
//! pool enter through a global FIFO injector. Threads that *wait* on a
//! [`scope`] or [`parallel_map`] do not sleep — they execute queued tasks
//! until their own work is done, so nested parallelism (a selection
//! candidate cross-validating, each fold fitting a forest) cannot
//! deadlock and keeps every core busy under skewed task sizes.
//!
//! ## Determinism contract
//!
//! Scheduling decides only *where and when* work runs, never *what it
//! computes*: [`parallel_map`] returns results in input order, and every
//! caller in the workspace derives per-task RNG streams from the task
//! *index* (not from the worker). Results are therefore bit-identical for
//! any thread count, `TRAJ_NUM_THREADS=1` included — pinned by the
//! `parallel_parity` test suites in `traj-ml` and `traj-select`.
//!
//! ## Sizing
//!
//! The process-wide pool ([`global`]) has `TRAJ_NUM_THREADS` workers when
//! that variable is set to a positive integer, else one per available
//! core. Explicit pools ([`Runtime::new`], [`Runtime::install`]) override
//! the global one on the installing thread — that is how parity tests and
//! `traj-serve` (which must not let blocking connection I/O starve
//! compute) get their own schedulers.

#![warn(missing_docs)]
// `scope.rs` contains the workspace's single `unsafe` block (a lifetime
// transmute in the crossbeam/rayon scoped-task pattern); everything else
// must stay safe.
#![deny(unsafe_code)]

mod pool;
#[allow(unsafe_code)]
mod scope;

pub use pool::{global, Runtime};
pub use scope::Scope;

use pool::Shared;
use std::cell::RefCell;
use std::sync::Arc;

/// Thread-local binding to a pool: set permanently on worker threads, and
/// temporarily by [`Runtime::install`] on foreign threads.
struct CurrentPool {
    shared: Arc<Shared>,
    /// `Some(index)` on a worker thread of that pool.
    worker: Option<usize>,
}

thread_local! {
    static CURRENT: RefCell<Vec<CurrentPool>> = const { RefCell::new(Vec::new()) };
}

/// Marks the calling thread as worker `index` of `shared` (workers only).
pub(crate) fn set_current_worker(shared: &Arc<Shared>, index: usize) {
    CURRENT.with(|c| {
        c.borrow_mut().push(CurrentPool {
            shared: Arc::clone(shared),
            worker: Some(index),
        });
    });
}

/// The calling thread's worker index *within `shared`*, if any.
pub(crate) fn current_worker_on(shared: &Arc<Shared>) -> Option<usize> {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .filter(|p| Arc::ptr_eq(&p.shared, shared))
            .and_then(|p| p.worker)
    })
}

/// RAII guard of [`Runtime::install`]: restores the previous binding on
/// drop (panic-safe).
pub(crate) struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

pub(crate) fn install_current(shared: &Arc<Shared>) -> InstallGuard {
    CURRENT.with(|c| {
        c.borrow_mut().push(CurrentPool {
            shared: Arc::clone(shared),
            worker: None,
        });
    });
    InstallGuard
}

/// The pool the calling thread is bound to: the innermost installed (or
/// owning) pool, else the global one.
fn current_shared() -> Arc<Shared> {
    CURRENT
        .with(|c| c.borrow().last().map(|p| Arc::clone(&p.shared)))
        .unwrap_or_else(|| Arc::clone(&global().shared))
}

/// Parses a `TRAJ_NUM_THREADS`-style value: positive integers override,
/// anything else falls back to the machine's available parallelism.
pub fn threads_from(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

/// Worker count of the global pool: the `TRAJ_NUM_THREADS` environment
/// variable when set to a positive integer, else one per available core.
pub fn default_threads() -> usize {
    threads_from(std::env::var("TRAJ_NUM_THREADS").ok().as_deref())
}

/// Structured fan-out on the current pool: `f` receives a [`Scope`] whose
/// [`Scope::spawn`] tasks may borrow from the enclosing frame. Returns
/// after every spawned task finished; re-raises the first panic.
///
/// ```
/// let mut left = 0u64;
/// let mut right = 0u64;
/// traj_runtime::scope(|s| {
///     s.spawn(|| left = (0..1000).sum());
///     s.spawn(|| right = (1000..2000).sum());
/// });
/// assert_eq!(left + right, (0..2000).sum());
/// ```
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    scope_on(&current_shared(), f)
}

pub(crate) use scope::{parallel_map_on, scope_on};

/// Indexed parallel map on the current pool: one stealable task per item,
/// results in input order regardless of scheduling.
///
/// ```
/// let squares = traj_runtime::parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_on(&current_shared(), items, f)
}

/// Runs `a` on the calling thread while `b` runs as a stealable pool
/// task; returns both results. Panics from either side propagate.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let right: std::sync::Mutex<Option<RB>> = std::sync::Mutex::new(None);
    let left = scope(|s| {
        s.spawn(|| {
            let value = b();
            *right.lock().expect("join slot poisoned") = Some(value);
        });
        a()
    });
    let right = right
        .into_inner()
        .expect("join slot poisoned")
        .expect("scope waited for b");
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn parallel_map_preserves_input_order() {
        let rt = Runtime::new(4);
        let items: Vec<usize> = (0..257).collect();
        let out = rt.parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_tasks_are_stolen_across_threads() {
        let rt = Runtime::new(4);
        let threads: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        // Item 0 hogs its worker; the rest must be picked up elsewhere.
        let items: Vec<usize> = (0..64).collect();
        let out = rt.parallel_map(&items, |_, &x| {
            if x == 0 {
                std::thread::sleep(Duration::from_millis(40));
            }
            threads.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert_eq!(out, items);
        assert!(
            threads.lock().unwrap().len() > 1,
            "all 64 tasks ran on one thread despite 4 workers + a helper"
        );
    }

    #[test]
    fn nested_scopes_complete() {
        let rt = Runtime::new(2);
        let total = AtomicUsize::new(0);
        rt.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    // A fresh scope from inside a pool task.
                    crate::scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_parallel_map_is_deterministic() {
        let rt = Runtime::new(3);
        let items: Vec<u64> = (0..10).collect();
        let run = || {
            rt.parallel_map(&items, |_, &x| {
                let inner: Vec<u64> = rt.parallel_map(&[1u64, 2, 3], |_, &y| x * y);
                inner.iter().sum::<u64>()
            })
        };
        assert_eq!(run(), run());
        assert_eq!(run()[2], 2 * (1 + 2 + 3));
    }

    #[test]
    fn scope_task_panic_propagates_to_caller() {
        let rt = Runtime::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.scope(|s| {
                s.spawn(|| panic!("boom from a task"));
                s.spawn(|| { /* healthy sibling */ });
            });
        }));
        let payload = caught.expect_err("scope must re-raise the task panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("boom"), "{message}");
        // The pool survives the panic.
        let out = rt.parallel_map(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_panic_propagates() {
        let rt = Runtime::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.parallel_map(&[0usize, 1, 2], |_, &x| {
                assert!(x != 1, "poisoned item");
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn detached_spawn_panic_does_not_kill_workers() {
        let rt = Runtime::new(1);
        rt.spawn(|| panic!("detached boom"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rt.panicked_tasks() == 0 {
            assert!(std::time::Instant::now() < deadline, "panic never recorded");
            std::thread::yield_now();
        }
        // The lone worker must still execute new work.
        let out = rt.parallel_map(&[5, 6], |_, &x| x * 10);
        assert_eq!(out, vec![50, 60]);
    }

    #[test]
    fn join_returns_both_sides() {
        let rt = Runtime::new(2);
        let (a, b) = rt.install(|| join(|| 1 + 1, || "right"));
        assert_eq!(a, 2);
        assert_eq!(b, "right");
    }

    #[test]
    fn install_binds_the_calling_thread_to_the_pool() {
        let rt = Runtime::named(2, "install-test");
        let names: Vec<Option<String>> = rt.install(|| {
            parallel_map(&[(); 16], |_, _| {
                std::thread::sleep(Duration::from_millis(1));
                std::thread::current().name().map(str::to_owned)
            })
        });
        // Tasks run on this pool's workers or on the installing thread
        // (which participates) — never on the global pool's workers.
        assert!(names
            .iter()
            .flatten()
            .all(|n| !n.starts_with("traj-runtime")));
        assert!(
            names
                .iter()
                .flatten()
                .any(|n| n.starts_with("install-test")),
            "{names:?}"
        );
    }

    #[test]
    fn single_thread_pool_matches_multi_thread_pool() {
        let serial = Runtime::new(1);
        let parallel = Runtime::new(8);
        let items: Vec<u64> = (0..100).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(*x);
        assert_eq!(
            serial.parallel_map(&items, f),
            parallel.parallel_map(&items, f)
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let rt = Runtime::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(rt.parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(rt.parallel_map(&[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn threads_from_parses_overrides() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        let fallback = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(threads_from(Some("0")), fallback);
        assert_eq!(threads_from(Some("not-a-number")), fallback);
        assert_eq!(threads_from(None), fallback);
    }

    #[test]
    fn drop_drains_queued_detached_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let rt = Runtime::new(2);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                rt.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins the workers after the queues drain.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    /// Stress: 10k tiny tasks through a small pool. Run with
    /// `cargo test -p traj-runtime -- --ignored`.
    #[test]
    #[ignore = "stress test; run explicitly (CI runs it in the matrix leg)"]
    fn stress_ten_thousand_tiny_tasks() {
        let rt = Runtime::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        for round in 0..10u64 {
            let out = rt.parallel_map(&items, |i, &x| x.wrapping_mul(round) ^ i as u64);
            assert_eq!(out.len(), items.len());
            assert_eq!(out[17], 17u64.wrapping_mul(round) ^ 17);
        }
    }

    use std::sync::Arc;
}
