//! Structured (scoped) parallelism on the shared pool: spawn tasks that
//! borrow from the enclosing stack frame, wait for all of them, and
//! propagate the first panic to the caller.
//!
//! This is the only module in the workspace that uses `unsafe`: one
//! lifetime transmute, fenced by the structural guarantee that
//! [`scope_on`] never returns (or unwinds) before every spawned task has
//! finished. The pattern — and the soundness argument — follows
//! `crossbeam::scope` / `rayon::scope`.

use crate::pool::{Shared, Task};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct ScopeState {
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    /// First panic payload out of any task in this scope.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

/// A spawn handle passed to the closure of [`crate::scope`]. Tasks
/// spawned through it may borrow anything that outlives `'env`.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    shared: Arc<Shared>,
    /// Invariant over `'env`, like `crossbeam::Scope`: prevents the
    /// compiler from shrinking the borrow of spawned captures.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns `f` onto the pool. The call returns immediately; the
    /// enclosing [`crate::scope`] waits for completion. A panic inside
    /// `f` is re-raised from the enclosing `scope` call after every other
    /// task has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = state.done.lock().expect("scope done lock poisoned");
                state.done_cv.notify_all();
            }
        });
        // SAFETY: the pool only sees `'static` tasks, but `wrapper` may
        // borrow data of lifetime `'env`. Erasing the lifetime is sound
        // because `scope_on` blocks — on the path that created this scope
        // — until `pending` reaches zero, i.e. until this wrapper has run
        // (or been dropped) in full, before control can return to the
        // frame that owns the borrowed data. The transmute only changes
        // the lifetime parameter; the vtable and layout are identical.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapper,
            )
        };
        self.shared.push_task(task);
    }

    /// Waits for `pending == 0`, executing queued pool tasks while
    /// waiting (cooperative wait: a worker blocked here keeps the pool
    /// making progress, which is what makes nested scopes deadlock-free).
    fn wait_all(&self) {
        let worker = crate::current_worker_on(&self.shared);
        while self.state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(task) = self.shared.find_task(worker) {
                crate::pool::run_detached(task, &self.shared);
                continue;
            }
            let guard = self.state.done.lock().expect("scope done lock poisoned");
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Short timeout: another thread may have queued new work for
            // us to help with, which does not signal `done_cv`.
            let _ = self
                .state
                .done_cv
                .wait_timeout(guard, Duration::from_micros(500));
        }
    }
}

/// Runs `f` with a [`Scope`] bound to `shared`, waits for every task the
/// closure spawned (even when `f` itself panics), then re-raises the
/// first panic — from the body or from any task.
pub(crate) fn scope_on<'env, F, R>(shared: &Arc<Shared>, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }),
        shared: Arc::clone(shared),
        _marker: PhantomData,
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    scope.wait_all();
    let task_panic = scope
        .state
        .panic
        .lock()
        .expect("scope panic slot poisoned")
        .take();
    match (body, task_panic) {
        (Ok(value), None) => value,
        (Ok(_), Some(payload)) | (Err(payload), _) => resume_unwind(payload),
    }
}

/// Indexed parallel map over a slice: `f(i, &items[i])` for every item,
/// one pool task per item, results returned **in input order**.
///
/// Per-item tasks (rather than pre-chunked ranges) are what lets work
/// stealing even out skewed task sizes; output order — and therefore
/// every downstream reduction — is fixed by index, never by scheduling,
/// which is the determinism contract the parity tests pin down.
pub(crate) fn parallel_map_on<T, R, F>(shared: &Arc<Shared>, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match items {
        [] => return Vec::new(),
        [only] => return vec![f(0, only)],
        _ => {}
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    scope_on(shared, |s| {
        for (i, item) in items.iter().enumerate() {
            let slot = &slots[i];
            let f = &f;
            s.spawn(move || {
                let value = f(i, item);
                *slot.lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope waited for every task")
        })
        .collect()
}
