//! Benchmarks of the data substrate: synthetic-cohort generation and the
//! GeoLife PLT text round trip.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traj_geolife::plt::{parse_plt, write_plt};
use traj_geolife::{SynthConfig, SynthDataset};

fn bench_synth(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);

    let config = SynthConfig {
        n_users: 4,
        segments_per_user: (8, 12),
        seed: 3,
        ..SynthConfig::default()
    };
    group.bench_function("generate/4users", |b| {
        b.iter(|| SynthDataset::generate(black_box(&config)))
    });

    let dataset = SynthDataset::generate(&config);
    group.bench_function("to_raw_trajectories", |b| {
        b.iter(|| dataset.to_raw_trajectories(black_box(2)))
    });

    let points = dataset
        .segments
        .iter()
        .max_by_key(|s| s.len())
        .expect("segments exist")
        .points
        .clone();
    group.bench_function("plt/write", |b| b.iter(|| write_plt(black_box(&points))));
    let text = write_plt(&points);
    group.bench_function("plt/parse", |b| b.iter(|| parse_plt(black_box(&text))));
    group.finish();
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
