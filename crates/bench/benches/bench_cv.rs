//! Benchmarks of the cross-validation machinery: split construction for
//! each scheme and a full cross-validation round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traj_bench::bench_dataset;
use traj_ml::cv::{
    cross_validate, GroupKFold, GroupShuffleSplit, KFold, Splitter, StratifiedKFold,
};
use traj_ml::ClassifierKind;

fn bench_cv(c: &mut Criterion) {
    let dataset = bench_dataset(8, 17);

    let mut group = c.benchmark_group("cv");
    // `split` is lazy now (it returns a `Folds` iterator); drain it so
    // the benchmark still measures fold materialisation.
    group.bench_function("split/kfold", |b| {
        let s = KFold::new(5, 1);
        b.iter(|| s.split(black_box(&dataset)).unwrap().collect::<Vec<_>>())
    });
    group.bench_function("split/stratified", |b| {
        let s = StratifiedKFold {
            n_splits: 5,
            seed: 1,
        };
        b.iter(|| s.split(black_box(&dataset)).unwrap().collect::<Vec<_>>())
    });
    group.bench_function("split/group_kfold", |b| {
        let s = GroupKFold { n_splits: 5 };
        b.iter(|| s.split(black_box(&dataset)).unwrap().collect::<Vec<_>>())
    });
    group.bench_function("split/group_shuffle", |b| {
        let s = GroupShuffleSplit {
            n_splits: 5,
            test_fraction: 0.2,
            seed: 1,
        };
        b.iter(|| s.split(black_box(&dataset)).unwrap().collect::<Vec<_>>())
    });

    group.sample_size(10);
    group.bench_function("cross_validate/decision_tree_5fold", |b| {
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(5, 1);
        b.iter(|| cross_validate(&factory, black_box(&dataset), &splitter, 0).unwrap())
    });
    // The headline parallel path: folds and trees both fan out onto the
    // shared traj-runtime pool (see bench_runtime for the speedup probe).
    group.bench_function("cross_validate/random_forest_5fold", |b| {
        let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
        let splitter = KFold::new(5, 1);
        b.iter(|| cross_validate(&factory, black_box(&dataset), &splitter, 0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cv);
criterion_main!(benches);
