//! Benchmarks of classifier training and prediction on the paper's
//! 70-feature task (Figure 2's cost axis: the paper argues its features +
//! random forest are cheaper than the deep baselines).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traj_bench::bench_dataset;
use traj_ml::ClassifierKind;

fn bench_classifiers(c: &mut Criterion) {
    let dataset = bench_dataset(6, 13);

    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);
    for kind in [
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::XgBoost,
        ClassifierKind::AdaBoost,
        ClassifierKind::Svm,
        ClassifierKind::NeuralNetwork,
        ClassifierKind::Knn,
    ] {
        group.bench_function(format!("fit/{kind}"), |b| {
            b.iter(|| {
                let mut model = kind.build(7);
                model.fit(black_box(&dataset));
                model
            })
        });
    }

    // Prediction throughput of the paper's production model.
    let mut forest = ClassifierKind::RandomForest.build(7);
    forest.fit(&dataset);
    group.bench_function("predict/RandomForest/full_dataset", |b| {
        b.iter(|| forest.predict(black_box(&dataset)))
    });
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
