//! Benchmarks of the feature-selection engines (the §4.2 cost axis): the
//! RF-importance ranking, one incremental-curve step, one wrapper step,
//! and the mutual-information filter.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traj_bench::bench_dataset;
use traj_ml::cv::KFold;
use traj_ml::ClassifierKind;
use traj_select::wrapper::ForwardSelectionConfig;
use traj_select::{forward_select, incremental_curve, mi_ranking, rf_importance_ranking};

fn bench_selection(c: &mut Criterion) {
    let dataset = bench_dataset(5, 19);

    let mut group = c.benchmark_group("selection");
    group.sample_size(10);

    group.bench_function("rf_importance_ranking/20trees", |b| {
        b.iter(|| rf_importance_ranking(black_box(&dataset), 20, 1))
    });

    group.bench_function("mi_ranking/10bins", |b| {
        b.iter(|| mi_ranking(black_box(&dataset), 10))
    });

    let order: Vec<usize> = (0..5).collect();
    group.bench_function("incremental_curve/5features", |b| {
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        b.iter(|| incremental_curve(black_box(&dataset), &order, &factory, &splitter, 0).unwrap())
    });

    group.bench_function("wrapper/1step_70candidates", |b| {
        let factory = |seed: u64| ClassifierKind::DecisionTree.build(seed);
        let splitter = KFold::new(3, 1);
        let config = ForwardSelectionConfig {
            max_features: 1,
            seed: 0,
            patience: None,
        };
        b.iter(|| forward_select(black_box(&dataset), &factory, &splitter, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
