//! Micro-benchmarks of the geodesy kernel (haversine, bearing,
//! destination) — the innermost loop of feature extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traj_geo::geodesy::{destination, haversine_m, initial_bearing_deg};

fn bench_geodesy(c: &mut Criterion) {
    let mut group = c.benchmark_group("geodesy");
    group.bench_function("haversine", |b| {
        b.iter(|| {
            haversine_m(
                black_box(39.9042),
                black_box(116.4074),
                black_box(39.0842),
                black_box(117.2009),
            )
        })
    });
    group.bench_function("initial_bearing", |b| {
        b.iter(|| {
            initial_bearing_deg(
                black_box(39.9042),
                black_box(116.4074),
                black_box(39.0842),
                black_box(117.2009),
            )
        })
    });
    group.bench_function("destination", |b| {
        b.iter(|| {
            destination(
                black_box(39.9042),
                black_box(116.4074),
                black_box(137.0),
                black_box(2_500.0),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_geodesy);
criterion_main!(benches);
