//! Benchmarks of the serving stack's hot path: raw GPS points →
//! featurise → scale → predict, plus a live end-to-end HTTP round trip.
//! These bound the per-request cost the load generator measures from the
//! outside.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::BufReader;
use std::net::TcpStream;
use traj_geo::Segment;
use traj_geolife::{SynthConfig, SynthDataset};
use traj_ml::ClassifierKind;
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::http::client_request;
use traj_serve::registry::{LoadedModel, ModelRegistry};
use traj_serve::server::{serve, ServerConfig};

fn trained(kind: ClassifierKind, segments: &[Segment]) -> LoadedModel {
    let spec = TrainSpec {
        kind,
        top_k: Some(20),
        seed: 7,
        ..TrainSpec::paper_default("bench")
    };
    LoadedModel::new(ModelArtifact::train(&spec, segments).expect("train")).expect("load")
}

fn bench_serve(c: &mut Criterion) {
    let segments = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (6, 9),
        seed: 13,
        ..SynthConfig::default()
    })
    .segments;
    let probe = segments
        .iter()
        .find(|s| s.len() >= MIN_SEGMENT_POINTS)
        .expect("long segment")
        .clone();

    let mut group = c.benchmark_group("serve");
    group.sample_size(20);

    // In-process pipeline, split into its two halves: featurise+scale
    // (model-independent) and the full points→prediction path per model.
    let rf = trained(ClassifierKind::RandomForest, &segments);
    group.bench_function("featurize_and_scale/70f_top20", |b| {
        b.iter(|| {
            rf.features_of_points(black_box(&probe.points))
                .expect("features")
        })
    });
    for kind in [ClassifierKind::RandomForest, ClassifierKind::DecisionTree] {
        let model = trained(kind, &segments);
        group.bench_function(format!("predict_points/{kind}"), |b| {
            b.iter(|| {
                model
                    .predict_points(black_box(&probe.points))
                    .expect("predict")
            })
        });
    }

    // End to end over loopback HTTP: one keep-alive client, one request
    // per iteration. Dominated by the same pipeline plus framing + JSON.
    let spec = TrainSpec {
        top_k: Some(20),
        seed: 7,
        ..TrainSpec::paper_default("rf")
    };
    let mut registry = ModelRegistry::new();
    registry
        .insert(ModelArtifact::train(&spec, &segments).expect("train"))
        .expect("insert");
    let mut handle = serve(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let points: Vec<String> = probe
        .points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    let body = format!("{{\"points\":[{}]}}", points.join(","));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    // Without TCP_NODELAY the request write stalls on delayed ACKs
    // (~40 ms/iter), swamping the server cost being measured.
    stream.set_nodelay(true).expect("nodelay");
    let mut client = BufReader::new(stream);
    group.bench_function("http_round_trip/predict", |b| {
        b.iter(|| {
            let (status, body) =
                client_request(&mut client, "POST", "/predict", Some(black_box(&body)))
                    .expect("request");
            assert_eq!(status, 200);
            body
        })
    });
    group.finish();
    drop(client);
    handle.stop().expect("stop");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
