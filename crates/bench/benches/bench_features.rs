//! Benchmarks of feature extraction (steps 2–3): per-segment point
//! features and the full 70-feature vector, plus batch extraction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::bench_segments;
use traj_features::extract_features;
use traj_features::point_features::PointFeatures;
use traj_features::trajectory_features::segment_features;
use traj_geo::LabelScheme;

fn bench_features(c: &mut Criterion) {
    let segments = bench_segments(4, 11);
    let long = segments
        .iter()
        .max_by_key(|s| s.len())
        .expect("segments exist")
        .clone();

    let mut group = c.benchmark_group("features");
    group.bench_with_input(
        BenchmarkId::new("point_features", long.len()),
        &long,
        |b, seg| b.iter(|| PointFeatures::compute(black_box(seg))),
    );
    group.bench_with_input(
        BenchmarkId::new("segment_70_features", long.len()),
        &long,
        |b, seg| b.iter(|| segment_features(black_box(seg))),
    );
    group.bench_with_input(
        BenchmarkId::new("extract_batch", segments.len()),
        &segments,
        |b, segs| b.iter(|| extract_features(black_box(segs), LabelScheme::Dabiri)),
    );
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
