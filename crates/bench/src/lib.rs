//! Shared plumbing of the experiment binaries: CLI parsing, result
//! persistence, and fixture construction for the Criterion benches.

use std::path::PathBuf;
use trajlib::prelude::*;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Positional arguments (subcommand-ish selectors).
    pub args: Vec<String>,
    /// `--small`: run at test scale for a quick smoke.
    pub small: bool,
    /// `--seed N`.
    pub seed: Option<u64>,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn from_env() -> Cli {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut out = Cli {
            args: Vec::new(),
            small: false,
            seed: None,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--small" => out.small = true,
                "--seed" => {
                    out.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .or_else(|| panic!("--seed requires an integer"));
                }
                other => out.args.push(other.to_owned()),
            }
        }
        out
    }

    /// The experiment cohort this invocation asks for.
    pub fn data_config(&self) -> experiments::DataConfig {
        let mut config = if self.small {
            experiments::DataConfig::small()
        } else {
            experiments::DataConfig::full()
        };
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }
}

/// Directory experiment binaries write their JSON results to
/// (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace
    // root so EXPERIMENTS.md can reference them.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Builds a ready-to-train dataset for the Criterion benches: a small
/// synthetic cohort pushed through the paper pipeline.
pub fn bench_dataset(n_users: usize, seed: u64) -> Dataset {
    let synth = SynthDataset::generate(&SynthConfig {
        n_users,
        segments_per_user: (10, 16),
        seed,
        modes: None,
        heterogeneity: 1.0,
        max_points_per_segment: 150,
    });
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    pipeline.dataset_from_segments(&synth.segments)
}

/// Builds raw segments for feature-extraction benches.
pub fn bench_segments(n_users: usize, seed: u64) -> Vec<Segment> {
    SynthDataset::generate(&SynthConfig {
        n_users,
        segments_per_user: (8, 12),
        seed,
        modes: None,
        heterogeneity: 1.0,
        max_points_per_segment: 200,
    })
    .segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_flags_and_positionals() {
        let cli = Cli::parse(
            ["endo", "--small", "--seed", "7", "extra"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(cli.args, vec!["endo", "extra"]);
        assert!(cli.small);
        assert_eq!(cli.seed, Some(7));
        assert_eq!(cli.data_config().seed, 7);
        assert_eq!(cli.data_config().n_users, 10);
    }

    #[test]
    fn cli_defaults_to_full_scale() {
        let cli = Cli::parse(std::iter::empty());
        assert!(!cli.small);
        assert_eq!(cli.data_config().n_users, 69);
    }

    #[test]
    fn bench_fixtures_build() {
        let ds = bench_dataset(3, 1);
        assert!(ds.len() > 10);
        assert_eq!(ds.n_features(), 70);
        let segs = bench_segments(2, 1);
        assert!(!segs.is_empty());
    }
}
