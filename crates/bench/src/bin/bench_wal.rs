//! Durability-cost probe of the WAL-backed streaming stack: what does
//! write-ahead logging take off `traj-stream`'s ingest throughput, and
//! how fast does a crashed engine come back?
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_wal -- [--smoke|--small] [--seed S]
//!                                                      [--sessions N]
//! ```
//!
//! Part 1 replays the same global time-ordered chunk stream through
//! three engines — no WAL, WAL with interval fsync (the serving
//! default), WAL with per-record fsync — and reports points/s for
//! each. Gate: interval-fsync durable ingest sustains at least 50% of
//! the non-durable baseline. Part 2 builds a large cohort of open
//! sessions (100 000 full scale, 2 000 smoke, `--sessions` overrides),
//! then times WAL-only replay recovery, snapshot writing, and
//! snapshot-based recovery. Gate: snapshot-based recovery — the
//! deployed boot path — completes in under five seconds. Writes
//! `results/BENCH_wal.json`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use traj_bench::{results_dir, Cli};
use traj_stream::{recover, StreamConfig, StreamEngine};
use traj_wal::{FsyncPolicy, SnapshotStore, Wal, WalConfig};
use trajlib::prelude::*;
use trajlib::report::save_json;

#[derive(Debug, Serialize)]
struct IngestMode {
    /// `baseline` (no WAL), `interval` (50 ms fsync), or `always`.
    mode: &'static str,
    points: usize,
    elapsed_ms: f64,
    points_per_sec: f64,
    /// Frame bytes the WAL appended (0 for the baseline).
    wal_bytes: u64,
    /// Fsyncs the WAL issued (0 for the baseline).
    wal_syncs: u64,
}

#[derive(Debug, Serialize)]
struct WalBench {
    smoke: bool,
    ingest: Vec<IngestMode>,
    /// Interval-fsync durable throughput over the non-durable
    /// baseline; the acceptance gate demands ≥ 0.5.
    durable_over_baseline: f64,
    /// Open sessions in the recovery cohort.
    recovery_sessions: usize,
    /// Records replayed during WAL-only recovery.
    recovery_wal_records: u64,
    /// Cold boot from the WAL alone (no snapshot).
    recovery_wal_only_ms: u64,
    /// `export_snapshot` + atomic snapshot write.
    snapshot_write_ms: f64,
    snapshot_bytes: u64,
    /// Cold boot from the snapshot plus the (empty) WAL tail.
    recovery_snapshot_ms: u64,
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("traj-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_wal(dir: &Path, fsync: FsyncPolicy) -> Arc<Wal> {
    let (wal, _report) = Wal::open(WalConfig {
        fsync,
        ..WalConfig::new(dir.join("wal"))
    })
    .expect("open wal");
    Arc::new(wal)
}

/// The same global time-ordered per-user chunk plan `bench_stream`
/// replays, so the two benchmarks measure the same workload with and
/// without the durability layer.
fn build_chunks(
    synth: &SynthDataset,
    chunk_size: usize,
) -> (usize, Vec<(u32, Vec<TrajectoryPoint>)>) {
    let mut events: Vec<(i64, u32, f64, f64)> = Vec::new();
    for seg in &synth.segments {
        for p in &seg.points {
            events.push((p.t.0, seg.user, p.lat, p.lon));
        }
    }
    events.sort_by_key(|&(t, user, _, _)| (t, user));
    let mut chunks: Vec<(u32, Vec<TrajectoryPoint>)> = Vec::new();
    let mut buffers: std::collections::HashMap<u32, Vec<TrajectoryPoint>> =
        std::collections::HashMap::new();
    for (t, user, lat, lon) in &events {
        let buffer = buffers.entry(*user).or_default();
        buffer.push(TrajectoryPoint::new(*lat, *lon, Timestamp(*t)));
        if buffer.len() >= chunk_size {
            chunks.push((*user, std::mem::take(buffer)));
        }
    }
    let mut tail_users: Vec<u32> = buffers.keys().copied().collect();
    tail_users.sort_unstable();
    for user in tail_users {
        let buffer = buffers.remove(&user).expect("listed");
        if !buffer.is_empty() {
            chunks.push((user, buffer));
        }
    }
    (events.len(), chunks)
}

/// Replays the chunk plan through one engine, optionally WAL-backed,
/// ending with a full flush (and, when durable, a final fsync — the
/// durable cost includes making the tail durable).
fn run_ingest(
    mode: &'static str,
    points: usize,
    chunks: &[(u32, Vec<TrajectoryPoint>)],
    fsync: Option<FsyncPolicy>,
) -> IngestMode {
    let dir = temp_dir(mode);
    let engine = Arc::new(StreamEngine::new(StreamConfig::default()));
    let wal = fsync.map(|policy| {
        let store = SnapshotStore::open(dir.join("snap")).expect("snapshot dir");
        let wal = open_wal(&dir, policy);
        recover(&engine, &store, &wal).expect("recover empty");
        engine.attach_wal(Arc::clone(&wal));
        wal
    });

    let started = Instant::now();
    for (user, chunk) in chunks {
        let report = engine.ingest(*user, chunk, false);
        if let Some(msg) = report.wal_error {
            panic!("wal append failed: {msg}");
        }
        if let Some(wal) = &wal {
            // The serving maintenance thread's job; only fsyncs once
            // the interval has elapsed.
            wal.tick().expect("tick");
        }
    }
    std::hint::black_box(engine.flush_all());
    if let Some(wal) = &wal {
        wal.sync().expect("final sync");
    }
    let elapsed = started.elapsed();

    let stats = wal.as_ref().map(|w| w.stats());
    let result = IngestMode {
        mode,
        points,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        points_per_sec: points as f64 / elapsed.as_secs_f64(),
        wal_bytes: stats.as_ref().map_or(0, |s| s.appended_bytes),
        wal_syncs: stats.as_ref().map_or(0, |s| s.syncs),
    };
    println!(
        "ingest[{mode}]: {} points in {:.1} ms → {:.0} points/s ({} wal bytes, {} fsyncs)",
        result.points, result.elapsed_ms, result.points_per_sec, result.wal_bytes, result.wal_syncs
    );
    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn main() {
    let cli = Cli::from_env();
    let smoke = cli.small || cli.args.iter().any(|a| a == "--smoke");
    let seed = cli.seed.unwrap_or(42);

    // Part 1: durable vs non-durable ingest throughput.
    let (n_users, segments_per_user) = if smoke { (6, (6, 9)) } else { (16, (12, 18)) };
    let synth = SynthDataset::generate(&SynthConfig {
        n_users,
        segments_per_user,
        seed,
        ..SynthConfig::default()
    });
    let (points, chunks) = build_chunks(&synth, 64);

    let baseline = run_ingest("baseline", points, &chunks, None);
    let interval = run_ingest(
        "interval",
        points,
        &chunks,
        Some(FsyncPolicy::Interval(Duration::from_millis(50))),
    );
    let always = run_ingest("always", points, &chunks, Some(FsyncPolicy::Always));
    let durable_over_baseline = interval.points_per_sec / baseline.points_per_sec;
    println!("durable/baseline throughput: {durable_over_baseline:.3}");

    // Part 2: recovery at scale. A cohort of open sessions is built
    // through the WAL, then recovered cold — first from the log alone,
    // then from a snapshot.
    let sessions = cli
        .args
        .iter()
        .position(|a| a == "--sessions")
        .and_then(|i| cli.args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2_000u32 } else { 100_000u32 });
    let points_per_session = 10u32;
    // The default session cap (65 536) would evict part of the full
    // cohort; give the recovery engines explicit headroom.
    let cohort_config = StreamConfig {
        max_sessions: (2 * sessions as usize).max(StreamConfig::default().max_sessions),
        ..StreamConfig::default()
    };
    let dir = temp_dir("recovery");
    let store = SnapshotStore::open(dir.join("snap")).expect("snapshot dir");
    {
        let engine = Arc::new(StreamEngine::new(cohort_config));
        let wal = open_wal(&dir, FsyncPolicy::OnClose);
        recover(&engine, &store, &wal).expect("recover empty");
        engine.attach_wal(Arc::clone(&wal));
        for user in 0..sessions {
            let track: Vec<TrajectoryPoint> = (0..points_per_session)
                .map(|i| {
                    TrajectoryPoint::new(
                        39.0 + (user % 97) as f64 * 1e-3 + i as f64 * 1e-4,
                        116.0 + i as f64 * 1e-4,
                        Timestamp(i as i64 + 1),
                    )
                })
                .collect();
            let report = engine.ingest(user, &track, false);
            if let Some(msg) = report.wal_error {
                panic!("wal append failed: {msg}");
            }
        }
        wal.sync().expect("sync cohort");
    }

    // Cold boot #1: WAL-only replay.
    let engine = Arc::new(StreamEngine::new(cohort_config));
    let wal = open_wal(&dir, FsyncPolicy::OnClose);
    let report = recover(&engine, &store, &wal).expect("wal-only recovery");
    assert_eq!(engine.open_sessions(), sessions as usize);
    let recovery_wal_only_ms = report.elapsed_ms;
    let recovery_wal_records = report.applied_records;
    println!(
        "recovery[wal-only]: {} sessions from {} records in {} ms",
        sessions, recovery_wal_records, recovery_wal_only_ms
    );

    // Snapshot the cohort, truncate the log behind it.
    let snap_started = Instant::now();
    let snap = engine.export_snapshot();
    store
        .write(snap.lsn, &snap.payload)
        .expect("write snapshot");
    let snapshot_write_ms = snap_started.elapsed().as_secs_f64() * 1e3;
    wal.truncate_until(snap.lsn).expect("truncate");
    let snapshot_bytes = snap.payload.len() as u64;
    println!(
        "snapshot: {} sessions, {} bytes written in {:.1} ms",
        snap.sessions, snapshot_bytes, snapshot_write_ms
    );
    drop(engine);
    drop(wal);

    // Cold boot #2: snapshot plus (near-empty) WAL tail.
    let engine = Arc::new(StreamEngine::new(cohort_config));
    let wal = open_wal(&dir, FsyncPolicy::OnClose);
    let report = recover(&engine, &store, &wal).expect("snapshot recovery");
    assert_eq!(engine.open_sessions(), sessions as usize);
    assert_eq!(report.snapshot_sessions, sessions as usize);
    let recovery_snapshot_ms = report.elapsed_ms;
    println!(
        "recovery[snapshot]: {} sessions in {} ms",
        sessions, recovery_snapshot_ms
    );
    std::fs::remove_dir_all(&dir).ok();

    let result = WalBench {
        smoke,
        ingest: vec![baseline, interval, always],
        durable_over_baseline,
        recovery_sessions: sessions as usize,
        recovery_wal_records,
        recovery_wal_only_ms,
        snapshot_write_ms,
        snapshot_bytes,
        recovery_snapshot_ms,
    };

    assert!(
        result.durable_over_baseline >= 0.5,
        "interval-fsync durable ingest fell below 50% of baseline: {:.3}",
        result.durable_over_baseline
    );
    // The deployed boot path: the maintenance thread snapshots every
    // 30 s, so a restart always loads a snapshot plus a short WAL
    // tail. WAL-only replay (no snapshot ever written) is reported
    // above but not gated — it replays the cohort's entire history.
    assert!(
        result.recovery_snapshot_ms < 5_000,
        "snapshot recovery exceeded 5 s: {} ms",
        result.recovery_snapshot_ms
    );

    save_json(&results_dir().join("BENCH_wal.json"), &result).expect("write results");
}
