//! Regenerates the **§4.3 comparisons** against the published baselines:
//!
//! * vs [Endo et al. 2016] — user-disjoint 80/20 splits, Endo labels,
//!   top-20 features, RF(50). Paper: 69.5 % vs published 67.9 %,
//!   one-sample Wilcoxon p = 0.0431.
//! * vs [Dabiri & Heaslip 2018] — random five-fold CV, Dabiri labels,
//!   top-20 features, RF(50). Paper: 88.5 % vs published 84.8 %,
//!   p = 0.0796.
//!
//! ```text
//! cargo run --release -p traj-bench --bin exp_comparison -- [endo|dabiri|both] [--small]
//! ```

use traj_bench::{results_dir, Cli};
use trajlib::experiments::comparison::ComparisonResult;
use trajlib::experiments::{run_dabiri_comparison, run_endo_comparison, ComparisonConfig};
use trajlib::report::{pct, pvalue, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let which = cli.args.first().map(String::as_str).unwrap_or("both");
    let config = ComparisonConfig {
        data: cli.data_config(),
        ..ComparisonConfig::default()
    };

    let mut results: Vec<(ComparisonResult, f64, f64)> = Vec::new();
    if which == "endo" || which == "both" {
        eprintln!("§4.3 vs Endo (user-disjoint splits)…");
        results.push((run_endo_comparison(&config), 0.695, 0.0431));
    }
    if which == "dabiri" || which == "both" {
        eprintln!("§4.3 vs Dabiri (random CV)…");
        results.push((run_dabiri_comparison(&config), 0.885, 0.0796));
    }
    assert!(
        !results.is_empty(),
        "unknown selector {which:?}; use endo|dabiri|both"
    );

    let mut table = MarkdownTable::new(vec![
        "protocol",
        "published baseline",
        "paper measured",
        "ours measured",
        "Wilcoxon p (greater)",
        "paper p",
    ]);
    for (r, paper_acc, paper_p) in &results {
        table.push_row(vec![
            r.protocol.clone(),
            pct(r.published_baseline),
            pct(*paper_acc),
            pct(r.mean_accuracy),
            pvalue(r.wilcoxon.p_value),
            pvalue(*paper_p),
        ]);
    }

    println!("# §4.3 — comparison with published deep-learning baselines\n");
    println!("{}", table.render());
    for (r, _, _) in &results {
        println!(
            "{}: beats its baseline: {} (splits: {:?})",
            r.protocol,
            r.mean_accuracy > r.published_baseline,
            r.split_accuracies
                .iter()
                .map(|a| format!("{:.3}", a))
                .collect::<Vec<_>>()
        );
        println!("  top-20 features: {}", r.selected_features.join(", "));
    }

    for (r, _, _) in &results {
        let name = format!("exp43_{}.json", r.protocol);
        save_json(&results_dir().join(name), r).expect("write results");
    }
}
