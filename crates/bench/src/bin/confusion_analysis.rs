//! Per-class confusion analysis on held-out users: which transportation
//! modes get mistaken for which — the kinematic rationale behind the
//! paper's adoption of the [Dabiri] label merges (car+taxi → driving,
//! train+subway → train).
//!
//! ```text
//! cargo run --release -p traj-bench --bin confusion_analysis [-- --small]
//! ```

use traj_bench::{results_dir, Cli};
use trajlib::experiments::{run_confusion_analysis, ConfusionConfig};
use trajlib::ml::metrics::render_confusion_matrix;
use trajlib::report::{pct, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let config = ConfusionConfig {
        data: cli.data_config(),
        ..ConfusionConfig::default()
    };

    eprintln!(
        "Confusion analysis on held-out users ({} users)…",
        config.data.n_users
    );
    let result = run_confusion_analysis(&config);

    println!("# Per-class confusion on held-out users (Endo labels)\n");
    println!("held-out accuracy: {}\n", pct(result.accuracy));
    let names: Vec<&str> = result.class_names.iter().map(String::as_str).collect();
    println!("{}", render_confusion_matrix(&result.matrix, &names));

    let mut table = MarkdownTable::new(vec![
        "class",
        "precision",
        "recall",
        "F1",
        "most confused with",
    ]);
    for (c, name) in result.class_names.iter().enumerate() {
        table.push_row(vec![
            name.clone(),
            pct(result.precision[c]),
            pct(result.recall[c]),
            pct(result.f1[c]),
            result.top_confusions[c]
                .as_ref()
                .map(|(other, rate)| format!("{other} ({})", pct(*rate)))
                .unwrap_or_else(|| "—".to_owned()),
        ]);
    }
    println!("{}", table.render());

    println!(
        "car→taxi {} / taxi→car {}; train→subway {} / subway→train {}.\n\
         The Dabiri merges (driving = car+taxi, train = train+subway) absorb\n\
         exactly these pairs — why the paper's §4.1/§4.3 protocols use them.",
        pct(result.confusion_rate("car", "taxi")),
        pct(result.confusion_rate("taxi", "car")),
        pct(result.confusion_rate("train", "subway")),
        pct(result.confusion_rate("subway", "train")),
    );

    save_json(&results_dir().join("confusion_analysis.json"), &result).expect("write results");
}
