//! Regenerates **Figure 2** (§4.1): mean random-CV accuracy of the six
//! classifiers, with Wilcoxon signed-rank tests of the best classifier
//! against each other.
//!
//! ```text
//! cargo run --release -p traj-bench --bin fig2_classifier_selection [-- --small]
//! ```
//!
//! Paper's reading of the figure: random forest best (µ = 90.4 %),
//! XGBoost second (90.0 %) and statistically indistinguishable from the
//! forest; decision tree also indistinguishable; SVM, neural network and
//! AdaBoost significantly below.

use traj_bench::{results_dir, Cli};
use trajlib::experiments::{run_classifier_selection, ClassifierSelectionConfig};
use trajlib::report::{pct, pvalue, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let config = ClassifierSelectionConfig {
        data: cli.data_config(),
        ..ClassifierSelectionConfig::default()
    };

    eprintln!(
        "Figure 2: classifier selection ({} users, {} folds)…",
        config.data.n_users, config.folds
    );
    let started = std::time::Instant::now();
    let result = run_classifier_selection(&config);

    let mut table = MarkdownTable::new(vec![
        "classifier",
        "mean accuracy",
        "mean weighted F1",
        "Wilcoxon vs best (two-sided p)",
    ]);
    for score in &result.scores {
        table.push_row(vec![
            score.kind.name().to_owned(),
            pct(score.mean_accuracy),
            pct(score.mean_f1_weighted),
            score
                .wilcoxon_vs_best
                .as_ref()
                .map(|w| pvalue(w.p_value))
                .unwrap_or_else(|| "— (best)".to_owned()),
        ]);
    }

    println!("# Figure 2 — classifier selection (random CV, Dabiri labels)\n");
    println!(
        "{} samples, {:?} elapsed\n",
        result.n_samples,
        started.elapsed()
    );
    println!("{}", table.render());
    println!(
        "Paper: RF 90.4% best; XGB 90.0% not significantly different; SVM worst.\n\
         Measured best here: {} at {}.",
        result.best,
        pct(result.scores[0].mean_accuracy)
    );
    if let (Some(fr), Some(cd)) = (&result.friedman, result.nemenyi_cd) {
        println!(
            "Friedman omnibus: χ² = {:.2} (df {}), p = {}; Nemenyi CD (α=0.05) = {:.2} mean-rank units.",
            fr.statistic,
            fr.df,
            pvalue(fr.p_value),
            cd
        );
    }

    save_json(
        &results_dir().join("fig2_classifier_selection.json"),
        &result,
    )
    .expect("write results");

    // The figure itself.
    let mut chart = trajlib::chart::BarChart::new(
        "Figure 2 — classifier selection (random CV)",
        "mean accuracy",
    );
    chart.categories = result
        .scores
        .iter()
        .map(|s| s.kind.name().to_owned())
        .collect();
    chart.series = vec![
        (
            "accuracy".to_owned(),
            result.scores.iter().map(|s| s.mean_accuracy).collect(),
        ),
        (
            "weighted F1".to_owned(),
            result.scores.iter().map(|s| s.mean_f1_weighted).collect(),
        ),
    ];
    let svg_path = results_dir().join("fig2_classifier_selection.svg");
    chart.save_svg(&svg_path).expect("write figure");
    eprintln!("figure written to {}", svg_path.display());
}
