//! Evaluation-strategy bias against ground truth — the §5 future-work
//! experiment ("deeply investigate the effects of cross-validation and
//! other strategies like holdout"), made possible by the synthetic
//! substrate: the model trained on the development cohort is evaluated
//! on a *fresh* cohort of unseen users (the unobservable quantity on
//! real data), and every evaluation strategy's estimate is reported as a
//! bias against that truth.
//!
//! ```text
//! cargo run --release -p traj-bench --bin evaluation_bias [-- --small]
//! ```

use traj_bench::{results_dir, Cli};
use trajlib::experiments::{run_evaluation_bias, EvaluationBiasConfig};
use trajlib::report::{pct, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let config = EvaluationBiasConfig {
        data: cli.data_config(),
        fresh_users: if cli.small { 8 } else { 30 },
        ..EvaluationBiasConfig::default()
    };

    eprintln!(
        "Evaluation-strategy bias ({} dev users, {} fresh users)…",
        config.data.n_users, config.fresh_users
    );
    let result = run_evaluation_bias(&config);

    println!("# Evaluation-strategy bias vs ground truth (Endo labels, RF 50)\n");
    println!(
        "true accuracy on fresh unseen users: {}\n",
        pct(result.true_accuracy)
    );
    let mut table = MarkdownTable::new(vec!["strategy", "estimate", "bias vs truth"]);
    for e in &result.estimates {
        table.push_row(vec![
            e.strategy.clone(),
            pct(e.estimate),
            format!("{:+.2}pp", e.bias * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Positive bias = the strategy flatters the model. The paper's §4.4\n\
         inference — random CV is optimistic — here measured against the\n\
         truth it can only infer on real data."
    );

    save_json(&results_dir().join("evaluation_bias.json"), &result).expect("write results");
}
