//! Speedup probe of the shared `traj-runtime` pool on the workspace's
//! headline workload: a 5-fold random-forest cross-validation (folds and
//! trees both fan out onto the pool).
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_runtime -- [--small]
//! ```
//!
//! Runs the identical workload on a one-worker pool and on a pool sized
//! to the machine (`TRAJ_NUM_THREADS` respected), checks the scores are
//! bit-identical (the determinism contract), and writes
//! `results/BENCH_runtime.json`. The ≥2× speedup acceptance bar applies
//! on machines with at least 4 cores; the JSON records the core count so
//! single-core CI readings are interpretable.

use std::time::Instant;

use serde::Serialize;
use traj_bench::{results_dir, Cli};
use traj_runtime::Runtime;
use trajlib::prelude::*;
use trajlib::report::save_json;

#[derive(Debug, Serialize)]
struct RuntimeBench {
    /// Cores the machine reports.
    cores: usize,
    /// Workers in the parallel pool (`TRAJ_NUM_THREADS` or one per core).
    threads: usize,
    /// Best-of-N wall time on a one-worker pool.
    serial_ms: f64,
    /// Best-of-N wall time on the `threads`-worker pool.
    parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    speedup: f64,
    /// Whether both pools produced bit-identical fold scores.
    parity: bool,
}

fn main() {
    let cli = Cli::from_env();
    let (n_users, n_estimators) = if cli.small { (6, 15) } else { (12, 50) };
    let dataset = traj_bench::bench_dataset(n_users, 17);

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads = traj_runtime::default_threads();

    let workload = |rt: &Runtime| {
        rt.install(|| {
            let estimators = n_estimators;
            let factory = move |seed: u64| -> Box<dyn Classifier> {
                Box::new(RandomForest::with_estimators(estimators, seed))
            };
            cross_validate(&factory, &dataset, &KFold::new(5, 1), 0)
                .expect("bench cohort fits 5 folds")
        })
    };

    let serial_rt = Runtime::new(1);
    let parallel_rt = Runtime::new(threads);

    // Warm-up + parity check: scheduling must not change the numbers.
    let serial_scores = workload(&serial_rt);
    let parallel_scores = workload(&parallel_rt);
    let parity = serial_scores == parallel_scores;

    let reps = if cli.small { 2 } else { 3 };
    let best_ms = |rt: &Runtime| {
        (0..reps)
            .map(|_| {
                let start = Instant::now();
                let scores = workload(rt);
                assert_eq!(scores, serial_scores, "run-to-run drift");
                start.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let serial_ms = best_ms(&serial_rt);
    let parallel_ms = best_ms(&parallel_rt);

    let result = RuntimeBench {
        cores,
        threads,
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        parity,
    };
    println!(
        "cores={} threads={} serial={:.1}ms parallel={:.1}ms speedup={:.2}x parity={}",
        result.cores,
        result.threads,
        result.serial_ms,
        result.parallel_ms,
        result.speedup,
        result.parity
    );
    assert!(result.parity, "parallel scores diverged from serial scores");

    save_json(&results_dir().join("BENCH_runtime.json"), &result).expect("write results");
}
