//! Inference-throughput probe of the compiled batch path: flat SoA
//! ensembles traversed level-by-level versus the interpreted per-row
//! pointer-chasing walkers.
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_predict -- [--smoke]
//! ```
//!
//! Fits a forest, a single deep tree and a gradient booster on a
//! synthetic feature-space cohort shaped like the paper's (70 features,
//! 5 modes), then times predicting a held-out batch both ways on one
//! worker. The interpreted baseline is exactly what the serve path ran
//! before compilation: `predict_row` + `predict_scores_row` per row.
//! Writes `results/BENCH_predict.json`.
//!
//! Acceptance bar (full scale, single worker): forest batch prediction
//! ≥ 5× the interpreted walk. `--smoke` runs a tiny cohort to exercise
//! every code path in CI without asserting speedups. Both paths are
//! checked for bit-identical classes and scores before timing.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use traj_bench::{results_dir, Cli};
use traj_ml::boosting::{GbdtConfig, GradientBoosting};
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::tree::{DecisionTree, TreeConfig};
use traj_ml::{BatchPredictor, CompiledModel, Dataset, Predictions, RowMatrix};
use traj_runtime::Runtime;
use trajlib::report::save_json;

/// One interpreted-vs-compiled comparison.
#[derive(Debug, Serialize)]
struct Timing {
    interpreted_ms: f64,
    compiled_ms: f64,
    /// `interpreted_ms / compiled_ms`.
    speedup: f64,
    /// Rows predicted per second through the compiled path.
    compiled_rows_per_s: f64,
}

#[derive(Debug, Serialize)]
struct PredictBench {
    cores: usize,
    smoke: bool,
    n_train: usize,
    n_predict: usize,
    n_features: usize,
    n_classes: usize,
    /// Random forest (50 trees, the paper-default ensemble).
    forest_1t: Timing,
    /// Single deep tree.
    tree_1t: Timing,
    /// Gradient booster (20 rounds × 5 classes, depth 4).
    gbdt_1t: Timing,
    /// Headline number the acceptance bar reads.
    forest_speedup_compiled_vs_interpreted_1t: f64,
}

/// Synthetic feature-space cohort shaped like the paper's: `n` segments,
/// 70 features of which the first 10 carry a graded class signal, 5
/// transportation modes.
fn feature_space_data(n: usize, seed: u64) -> Dataset {
    const N_FEATURES: usize = 70;
    const N_CLASSES: usize = 5;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % N_CLASSES;
        let row: Vec<f64> = (0..N_FEATURES)
            .map(|f| {
                let signal = if f < 10 {
                    class as f64 * (1.5 - 0.1 * f as f64)
                } else {
                    0.0
                };
                signal + rng.gen_range(-1.0..1.0)
            })
            .collect();
        rows.push(row);
        y.push(class);
    }
    Dataset::from_rows(&rows, y, N_CLASSES, vec![0; n], vec![])
}

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Pins bit-parity, then times the interpreted per-row walk (classes +
/// scores, the old serve hot path) against one compiled batch call.
fn bench_model(
    label: &str,
    reps: usize,
    batch: &RowMatrix,
    serial: &Runtime,
    predict_row: impl Fn(&[f64]) -> usize + Sync,
    scores_row: impl Fn(&[f64]) -> Vec<f64> + Sync,
    compiled: &CompiledModel,
) -> Timing {
    let mut out = Predictions::new();
    compiled.predict_into(batch, &mut out).expect("fitted");
    for i in 0..batch.n_rows() {
        assert_eq!(out.class(i), predict_row(batch.row(i)), "{label} parity");
        let reference = scores_row(batch.row(i));
        let scores = out.scores(i).expect("scores");
        assert_eq!(scores.len(), reference.len(), "{label} parity");
        for (a, b) in scores.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label} score parity");
        }
    }

    let interpreted_ms = best_ms(reps, || {
        serial.install(|| {
            let mut checksum = 0usize;
            for i in 0..batch.n_rows() {
                checksum += predict_row(batch.row(i));
                checksum += scores_row(batch.row(i)).len();
            }
            assert!(checksum > 0);
        });
    });
    let compiled_ms = best_ms(reps, || {
        serial.install(|| {
            let mut out = Predictions::new();
            compiled.predict_into(batch, &mut out).expect("fitted");
            assert_eq!(out.len(), batch.n_rows());
        });
    });
    let timing = Timing {
        interpreted_ms,
        compiled_ms,
        speedup: interpreted_ms / compiled_ms,
        compiled_rows_per_s: batch.n_rows() as f64 / (compiled_ms / 1e3),
    };
    println!(
        "{label:<9} 1t: interpreted {:.1}ms compiled {:.2}ms ({:.2}x, {:.0} rows/s)",
        timing.interpreted_ms, timing.compiled_ms, timing.speedup, timing.compiled_rows_per_s
    );
    timing
}

fn main() {
    let cli = Cli::from_env();
    let smoke = cli.small || cli.args.iter().any(|a| a == "--smoke");
    let seed = cli.seed.unwrap_or(29);

    let (n_train, n_predict, reps) = if smoke {
        (2_000, 2_000, 1)
    } else {
        (20_000, 50_000, 3)
    };

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let serial = Runtime::new(1);

    let train = feature_space_data(n_train, seed);
    let held_out = feature_space_data(n_predict, seed.wrapping_add(1));
    let batch = RowMatrix::from_dataset(&held_out);

    let mut forest = RandomForest::new(ForestConfig {
        n_estimators: 50,
        seed: 2,
        ..ForestConfig::default()
    });
    serial.install(|| forest.fit(&train));
    let forest_compiled = CompiledModel::from_forest(&forest, None).expect("fitted");
    let forest_1t = bench_model(
        "forest",
        reps,
        &batch,
        &serial,
        |row| forest.predict_row(row),
        |row| forest.predict_proba_row(row),
        &forest_compiled,
    );

    let mut tree = DecisionTree::new(TreeConfig {
        max_depth: Some(14),
        seed: 3,
        ..TreeConfig::default()
    });
    serial.install(|| tree.fit(&train));
    let tree_compiled = CompiledModel::from_tree(&tree, None).expect("fitted");
    let tree_1t = bench_model(
        "tree",
        reps,
        &batch,
        &serial,
        |row| tree.predict_row(row),
        |row| tree.predict_proba_row(row),
        &tree_compiled,
    );

    let mut gbdt = GradientBoosting::new(GbdtConfig {
        n_rounds: 20,
        max_depth: 4,
        seed: 4,
        ..GbdtConfig::default()
    });
    serial.install(|| gbdt.fit(&train));
    let gbdt_compiled = CompiledModel::from_gbdt(&gbdt, None).expect("fitted");
    let gbdt_1t = bench_model(
        "gbdt",
        reps,
        &batch,
        &serial,
        |row| gbdt.predict_row(row),
        |row| gbdt.predict_proba_row(row),
        &gbdt_compiled,
    );

    let result = PredictBench {
        cores,
        smoke,
        n_train,
        n_predict,
        n_features: train.n_features(),
        n_classes: 5,
        forest_speedup_compiled_vs_interpreted_1t: forest_1t.speedup,
        forest_1t,
        tree_1t,
        gbdt_1t,
    };

    if !smoke {
        assert!(
            result.forest_speedup_compiled_vs_interpreted_1t >= 5.0,
            "forest compiled speedup below the 5x bar: {:.2}x",
            result.forest_speedup_compiled_vs_interpreted_1t
        );
    }

    save_json(&results_dir().join("BENCH_predict.json"), &result).expect("write results");
}
