//! Throughput and latency probe of the streaming ingestion stack
//! (`traj-stream` engine + model prediction), without the HTTP layer:
//! the in-process ceiling `stream_replay` measures end-to-end.
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_stream -- [--small] [--seed S]
//! ```
//!
//! Replays a synthetic cohort's points in global timestamp order through
//! `StreamEngine::ingest` in per-user chunks, predicting on every closed
//! segment exactly as `POST /ingest` does. Reports sustained points/s,
//! the p50/p99 close-to-prediction latency (chunk arrival → prediction
//! for chunks that close a segment), and the peak per-user session state
//! so the memory bound in DESIGN.md §9 has a measured counterpart.
//! Writes `results/BENCH_stream.json`.

use std::time::Instant;

use serde::Serialize;
use traj_bench::{results_dir, Cli};
use traj_serve::artifact::{ModelArtifact, TrainSpec};
use traj_stream::{StreamConfig, StreamEngine};
use trajlib::prelude::*;
use trajlib::report::save_json;

#[derive(Debug, Serialize)]
struct StreamBench {
    /// Points replayed through the engine.
    points: usize,
    /// Requests (per-user chunks) the replay was cut into.
    chunks: usize,
    /// Segments closed and predicted during the replay.
    closes: usize,
    /// Wall time of the replay, milliseconds.
    elapsed_ms: f64,
    /// Sustained ingestion throughput.
    points_per_sec: f64,
    /// Close-to-prediction latency: chunk ingest start → prediction
    /// returned, for chunks that closed at least one segment.
    close_latency_p50_us: u64,
    /// Tail of the same distribution.
    close_latency_p99_us: u64,
    /// Peak engine-wide session state observed between chunks.
    peak_state_bytes: usize,
    /// Peak concurrently open sessions.
    peak_open_sessions: usize,
    /// `peak_state_bytes / peak_open_sessions`: the measured per-user
    /// memory bound (the sessionizer caps it via `exact_cap`).
    peak_state_bytes_per_user: usize,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let cli = Cli::from_env();
    let seed = cli.seed.unwrap_or(42);
    let (n_users, segments_per_user) = if cli.small {
        (6, (6, 9))
    } else {
        (16, (12, 18))
    };
    let synth = SynthDataset::generate(&SynthConfig {
        n_users,
        segments_per_user,
        seed,
        ..SynthConfig::default()
    });

    // The model `/ingest` would serve: a Paper70 tree (fast, so the
    // engine — not the classifier — dominates the measurement).
    let spec = TrainSpec {
        kind: ClassifierKind::DecisionTree,
        seed: 3,
        ..TrainSpec::paper_default("bench-tree")
    };
    let artifact = ModelArtifact::train(&spec, &synth.segments).expect("train bench model");
    let mut registry = traj_serve::registry::ModelRegistry::new();
    registry.insert(artifact).expect("insert bench model");
    let model = registry.get(None).expect("bench model registered");

    // Global time-ordered stream cut into per-user chunks, exactly like
    // `stream_replay` builds its request plan.
    let chunk_size = 64usize;
    let mut events: Vec<(i64, u32, f64, f64)> = Vec::new();
    for seg in &synth.segments {
        for p in &seg.points {
            events.push((p.t.0, seg.user, p.lat, p.lon));
        }
    }
    events.sort_by_key(|&(t, user, _, _)| (t, user));
    let mut chunks: Vec<(u32, Vec<TrajectoryPoint>)> = Vec::new();
    let mut buffers: std::collections::HashMap<u32, Vec<TrajectoryPoint>> =
        std::collections::HashMap::new();
    for (t, user, lat, lon) in &events {
        let buffer = buffers.entry(*user).or_default();
        buffer.push(TrajectoryPoint::new(*lat, *lon, Timestamp(*t)));
        if buffer.len() >= chunk_size {
            chunks.push((*user, std::mem::take(buffer)));
        }
    }
    let mut tail_users: Vec<u32> = buffers.keys().copied().collect();
    tail_users.sort_unstable();
    for user in tail_users {
        let buffer = buffers.remove(&user).expect("listed");
        if !buffer.is_empty() {
            chunks.push((user, buffer));
        }
    }

    let engine = StreamEngine::new(StreamConfig::default());
    let mut close_latencies_us: Vec<u64> = Vec::new();
    let mut closes = 0usize;
    let mut peak_state_bytes = 0usize;
    let mut peak_open_sessions = 0usize;

    let started = Instant::now();
    for (user, points) in &chunks {
        let chunk_started = Instant::now();
        let report = engine.ingest(*user, points, false);
        if !report.closed.is_empty() {
            for closed in &report.closed {
                let prediction = model
                    .predict_full_row(&closed.features)
                    .expect("paper70 row predicts");
                std::hint::black_box(prediction);
                closes += 1;
            }
            close_latencies_us.push(chunk_started.elapsed().as_micros() as u64);
        }
        peak_state_bytes = peak_state_bytes.max(engine.state_bytes());
        peak_open_sessions = peak_open_sessions.max(engine.open_sessions());
    }
    for closed in engine.flush_all() {
        let prediction = model
            .predict_full_row(&closed.features)
            .expect("paper70 row predicts");
        std::hint::black_box(prediction);
        closes += 1;
    }
    let elapsed = started.elapsed();

    close_latencies_us.sort_unstable();
    let result = StreamBench {
        points: events.len(),
        chunks: chunks.len(),
        closes,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        points_per_sec: events.len() as f64 / elapsed.as_secs_f64(),
        close_latency_p50_us: percentile(&close_latencies_us, 0.50),
        close_latency_p99_us: percentile(&close_latencies_us, 0.99),
        peak_state_bytes,
        peak_open_sessions,
        peak_state_bytes_per_user: peak_state_bytes / peak_open_sessions.max(1),
    };
    println!(
        "points={} chunks={} closes={} elapsed={:.1}ms throughput={:.0} points/s",
        result.points, result.chunks, result.closes, result.elapsed_ms, result.points_per_sec
    );
    println!(
        "close→prediction latency: p50 {} µs  p99 {} µs; peak state {} bytes over {} sessions ({} bytes/user)",
        result.close_latency_p50_us,
        result.close_latency_p99_us,
        result.peak_state_bytes,
        result.peak_open_sessions,
        result.peak_state_bytes_per_user
    );
    assert!(result.closes > 0, "replay closed no segments");

    save_json(&results_dir().join("BENCH_stream.json"), &result).expect("write results");
}
