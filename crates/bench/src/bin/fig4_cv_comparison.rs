//! Regenerates **Figure 4** (§4.4): accuracy and weighted F-score of
//! every classifier under random versus user-oriented cross-validation.
//!
//! ```text
//! cargo run --release -p traj-bench --bin fig4_cv_comparison [-- --small]
//! ```
//!
//! Paper's reading: "there is a considerable difference between the
//! cross-validation results of user-oriented cross-validation and random
//! cross-validation. The result indicates that random cross-validation
//! provides optimistic accuracy and f-score results."

use traj_bench::{results_dir, Cli};
use trajlib::experiments::{run_cv_comparison, CvComparisonConfig};
use trajlib::report::{pct, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let config = CvComparisonConfig {
        data: cli.data_config(),
        ..CvComparisonConfig::default()
    };

    eprintln!(
        "Figure 4: random vs user-oriented CV over {} users…",
        config.data.n_users
    );
    let started = std::time::Instant::now();
    let result = run_cv_comparison(&config);

    let mut table = MarkdownTable::new(vec![
        "classifier",
        "random acc",
        "user acc",
        "acc gap",
        "random F1",
        "user F1",
    ]);
    for row in &result.rows {
        table.push_row(vec![
            row.kind.name().to_owned(),
            pct(row.random_accuracy),
            pct(row.user_accuracy),
            format!("{:+.2}pp", row.accuracy_gap() * 100.0),
            pct(row.random_f1),
            pct(row.user_f1),
        ]);
    }

    println!("# Figure 4 — random vs user-oriented cross-validation\n");
    println!("({:?} elapsed)\n", started.elapsed());
    println!("{}", table.render());
    println!(
        "Mean accuracy gap (random − user): {:+.2}pp. Paper: random CV is\n\
         optimistic on both accuracy and F-score.",
        result.mean_gap * 100.0
    );
    let optimistic = result
        .rows
        .iter()
        .filter(|r| r.accuracy_gap() > 0.0)
        .count();
    println!(
        "Classifiers where random CV is optimistic: {}/{}.",
        optimistic,
        result.rows.len()
    );

    save_json(&results_dir().join("fig4_cv_comparison.json"), &result).expect("write results");

    // The figure itself: grouped bars, random vs user per classifier,
    // for accuracy and F-score (the paper's two panels in one).
    let mut chart = trajlib::chart::BarChart::new(
        "Figure 4 — random vs user-oriented cross-validation",
        "score",
    );
    chart.categories = result
        .rows
        .iter()
        .map(|r| r.kind.name().to_owned())
        .collect();
    chart.series = vec![
        (
            "random CV accuracy".to_owned(),
            result.rows.iter().map(|r| r.random_accuracy).collect(),
        ),
        (
            "user CV accuracy".to_owned(),
            result.rows.iter().map(|r| r.user_accuracy).collect(),
        ),
        (
            "random CV F1".to_owned(),
            result.rows.iter().map(|r| r.random_f1).collect(),
        ),
        (
            "user CV F1".to_owned(),
            result.rows.iter().map(|r| r.user_f1).collect(),
        ),
    ];
    let svg_path = results_dir().join("fig4_cv_comparison.svg");
    chart.save_svg(&svg_path).expect("write figure");
    eprintln!("figure written to {}", svg_path.display());
}
