//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p traj-bench --bin ablations -- [all|heterogeneity|estimators|normalization|noise|min-points|feature-set] [--small]
//! ```
//!
//! * **heterogeneity** — sweeps the generator's between-user
//!   heterogeneity and shows the random-vs-user CV gap growing with it:
//!   the mechanism behind the paper's §4.4 result, made explicit.
//! * **estimators** — forest-size sweep (does 50 trees saturate?).
//! * **normalization** — Min–Max vs z-score vs none, per classifier
//!   family (step-7 ablation; trees are scale-invariant, SVM/MLP not).
//! * **noise** — step 6 on/off under both CV schemes.
//! * **min-points** — the step-1 threshold sweep (10 is the paper's
//!   choice).
//! * **feature-set** — the paper's 70 features vs the extended 80
//!   (spatiotemporal extensions, the §5 future-work direction).

use traj_bench::{results_dir, Cli};
use trajlib::prelude::*;
use trajlib::report::{pct, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let which = cli
        .args
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_owned());
    let small = cli.small;

    let mut outputs: Vec<(String, String)> = Vec::new();
    if which == "all" || which == "heterogeneity" {
        outputs.push(("heterogeneity".into(), heterogeneity_sweep(small)));
    }
    if which == "all" || which == "estimators" {
        outputs.push(("estimators".into(), estimator_sweep(small)));
    }
    if which == "all" || which == "normalization" {
        outputs.push(("normalization".into(), normalization_sweep(small)));
    }
    if which == "all" || which == "noise" {
        outputs.push(("noise".into(), noise_ablation(small)));
    }
    if which == "all" || which == "min-points" {
        outputs.push(("min-points".into(), min_points_sweep(small)));
    }
    if which == "all" || which == "feature-set" {
        outputs.push(("feature-set".into(), feature_set_ablation(small)));
    }
    if which == "all" || which == "learning-curve" {
        outputs.push(("learning-curve".into(), learning_curve(small)));
    }
    if which == "all" || which == "tuning" {
        outputs.push(("tuning".into(), tuning_grid(small)));
    }
    assert!(
        !outputs.is_empty(),
        "unknown ablation {which:?}; use all|heterogeneity|estimators|normalization|noise|min-points|feature-set|learning-curve|tuning"
    );

    for (name, text) in &outputs {
        println!("## Ablation: {name}\n\n{text}");
    }
    save_json(&results_dir().join("ablations.json"), &outputs).expect("write results");
}

fn cohort(heterogeneity: f64, small: bool) -> SynthDataset {
    SynthDataset::generate(&SynthConfig {
        n_users: if small { 10 } else { 40 },
        segments_per_user: if small { (10, 16) } else { (25, 40) },
        seed: 42,
        modes: None,
        heterogeneity,
        max_points_per_segment: 300,
    })
}

fn rf_factory(n: usize) -> impl Fn(u64) -> Box<dyn Classifier> + Sync {
    move |seed| Box::new(RandomForest::with_estimators(n, seed)) as Box<dyn Classifier>
}

fn heterogeneity_sweep(small: bool) -> String {
    let mut table =
        MarkdownTable::new(vec!["heterogeneity", "random-CV acc", "user-CV acc", "gap"]);
    for h in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let synth = cohort(h, small);
        let ds = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo))
            .dataset_from_segments(&synth.segments);
        let factory = rf_factory(if small { 15 } else { 50 });
        let random =
            cross_validate(&factory, &ds, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
        let user = cross_validate(&factory, &ds, &GroupKFold { n_splits: 5 }, 0)
            .expect("cohort has enough users");
        let (ra, ua) = (
            traj_ml::cv::mean_accuracy(&random),
            traj_ml::cv::mean_accuracy(&user),
        );
        table.push_row(vec![
            format!("{h:.2}"),
            pct(ra),
            pct(ua),
            format!("{:+.2}pp", (ra - ua) * 100.0),
        ]);
    }
    format!(
        "{}\nThe random-vs-user gap exists only when users differ — the §4.4\n\
         mechanism. At heterogeneity 0 both schemes agree.\n",
        table.render()
    )
}

fn estimator_sweep(small: bool) -> String {
    let synth = cohort(1.0, small);
    let ds = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri))
        .dataset_from_segments(&synth.segments);
    let mut table = MarkdownTable::new(vec!["trees", "random-CV acc"]);
    for n in [5, 10, 25, 50, 100] {
        let factory = rf_factory(n);
        let scores =
            cross_validate(&factory, &ds, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
        table.push_row(vec![
            n.to_string(),
            pct(traj_ml::cv::mean_accuracy(&scores)),
        ]);
    }
    format!(
        "{}\nAccuracy saturates well before 100 trees; the paper's 50 is safe.\n",
        table.render()
    )
}

fn normalization_sweep(small: bool) -> String {
    let synth = cohort(1.0, small);
    let mut table = MarkdownTable::new(vec!["normalization", "RF acc", "SVM acc", "MLP acc"]);
    for (label, norm) in [
        ("min-max (paper)", Normalization::MinMax),
        ("z-score", Normalization::ZScore),
        ("none", Normalization::None),
    ] {
        let config = PipelineConfig::builder(LabelScheme::Dabiri)
            .normalization(norm)
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&synth.segments);
        let acc_of = |kind: ClassifierKind| {
            let factory = move |seed: u64| kind.build(seed);
            let scores =
                cross_validate(&factory, &ds, &KFold::new(3, 1), 0).expect("cohort fits 3 folds");
            traj_ml::cv::mean_accuracy(&scores)
        };
        table.push_row(vec![
            label.to_owned(),
            pct(acc_of(ClassifierKind::RandomForest)),
            pct(acc_of(ClassifierKind::Svm)),
            pct(acc_of(ClassifierKind::NeuralNetwork)),
        ]);
    }
    format!(
        "{}\nTrees are scale-invariant; the margin/gradient models need step 7.\n",
        table.render()
    )
}

fn noise_ablation(small: bool) -> String {
    let synth = cohort(1.0, small);
    let mut table = MarkdownTable::new(vec!["noise handling", "random-CV acc", "user-CV acc"]);
    for (label, noise) in [
        ("off (paper §4.3)", NoiseConfig::disabled()),
        ("on (speed threshold + Hampel)", NoiseConfig::enabled()),
    ] {
        let config = PipelineConfig::builder(LabelScheme::Dabiri)
            .noise(noise)
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&synth.segments);
        let factory = rf_factory(if small { 15 } else { 50 });
        let random =
            cross_validate(&factory, &ds, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
        let user = cross_validate(&factory, &ds, &GroupKFold { n_splits: 5 }, 0)
            .expect("cohort has enough users");
        table.push_row(vec![
            label.to_owned(),
            pct(traj_ml::cv::mean_accuracy(&random)),
            pct(traj_ml::cv::mean_accuracy(&user)),
        ]);
    }
    format!(
        "{}\nThe paper leaves step 6 off in its comparisons, arguing the filter\n\
         inflates accuracy unrealistically; the delta here quantifies that.\n",
        table.render()
    )
}

fn feature_set_ablation(small: bool) -> String {
    let synth = cohort(1.0, small);
    let mut table = MarkdownTable::new(vec!["feature set", "random-CV acc", "user-CV acc"]);
    for (label, set) in [
        ("Zheng 11 (UbiComp'08 baseline)", FeatureSet::Zheng11),
        ("paper 70", FeatureSet::Paper70),
        ("extended 80 (§5 future work)", FeatureSet::Extended80),
    ] {
        let config = PipelineConfig::builder(LabelScheme::Endo)
            .feature_set(set)
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&synth.segments);
        let factory = rf_factory(if small { 15 } else { 50 });
        let random =
            cross_validate(&factory, &ds, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
        let user = cross_validate(&factory, &ds, &GroupKFold { n_splits: 5 }, 0)
            .expect("cohort has enough users");
        table.push_row(vec![
            label.to_owned(),
            pct(traj_ml::cv::mean_accuracy(&random)),
            pct(traj_ml::cv::mean_accuracy(&user)),
        ]);
    }
    format!(
        "{}\nThe spatiotemporal extensions (straightness, stop rate, turn density,\n\
         time-of-day) implement the paper's §5 future-work direction.\n",
        table.render()
    )
}

fn learning_curve(small: bool) -> String {
    // Fixed fresh test cohort; sweep the number of training users.
    let test_synth = SynthDataset::generate(&SynthConfig {
        n_users: if small { 6 } else { 20 },
        segments_per_user: (15, 25),
        seed: 4242,
        modes: None,
        heterogeneity: 1.0,
        max_points_per_segment: 300,
    });
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo));
    let test = pipeline.dataset_from_segments(&test_synth.segments);

    let sweep: &[usize] = if small {
        &[3, 6, 10]
    } else {
        &[5, 10, 20, 40, 69]
    };
    let mut table = MarkdownTable::new(vec!["training users", "segments", "unseen-user acc"]);
    for &n_users in sweep {
        let train_synth = SynthDataset::generate(&SynthConfig {
            n_users,
            segments_per_user: (25, 40),
            seed: 42,
            modes: None,
            heterogeneity: 1.0,
            max_points_per_segment: 300,
        });
        let train = pipeline.dataset_from_segments(&train_synth.segments);
        let mut forest = RandomForest::with_estimators(if small { 15 } else { 50 }, 1);
        forest.fit(&train);
        let acc = trajlib::ml::metrics::accuracy(&test.y, &forest.predict(&test));
        table.push_row(vec![n_users.to_string(), train.len().to_string(), pct(acc)]);
    }
    format!(
        "{}\nMore *users* (not just more segments) is what buys generalisation to\n\
         unseen users — the direction GeoLife-scale studies should grow.\n",
        table.render()
    )
}

fn tuning_grid(small: bool) -> String {
    let synth = cohort(1.0, small);
    let ds = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri))
        .dataset_from_segments(&synth.segments);
    let cells = trajlib::ml::tuning::forest_grid(
        &ds,
        if small { &[5, 15] } else { &[10, 25, 50] },
        &[Some(5), Some(10), None],
        &KFold::new(3, 1),
        0,
    )
    .expect("cohort fits 3 folds");
    let mut table = MarkdownTable::new(vec!["trees", "max depth", "random-CV acc"]);
    for c in &cells {
        table.push_row(vec![
            c.params.n_estimators.to_string(),
            c.params
                .max_depth
                .map(|d| d.to_string())
                .unwrap_or_else(|| "∞".to_owned()),
            pct(c.accuracy),
        ]);
    }
    format!(
        "{}\nGrid search over the forest's two axes; the paper's 50-tree,\n\
         unlimited-depth setting sits at the plateau.\n",
        table.render()
    )
}

fn min_points_sweep(small: bool) -> String {
    let synth = cohort(1.0, small);
    let mut table = MarkdownTable::new(vec!["min points", "segments kept", "random-CV acc"]);
    for min_points in [10usize, 30, 60, 100] {
        let config = PipelineConfig::builder(LabelScheme::Dabiri)
            .segmentation(SegmentationConfig::paper().with_min_points(min_points))
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&synth.segments);
        if ds.len() < 25 {
            table.push_row(vec![
                min_points.to_string(),
                ds.len().to_string(),
                "—".into(),
            ]);
            continue;
        }
        let factory = rf_factory(if small { 15 } else { 50 });
        let scores =
            cross_validate(&factory, &ds, &KFold::new(5, 1), 0).expect("cohort fits 5 folds");
        table.push_row(vec![
            min_points.to_string(),
            ds.len().to_string(),
            pct(traj_ml::cv::mean_accuracy(&scores)),
        ]);
    }
    format!(
        "{}\nLonger segments are easier to classify but discard data; the paper's\n\
         threshold of 10 keeps nearly everything.\n",
        table.render()
    )
}
