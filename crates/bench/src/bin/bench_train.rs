//! Training-throughput probe of the histogram-binned split search:
//! quantize once, train everywhere.
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_train -- [--smoke]
//! ```
//!
//! Times the exact sort-based split search against the histogram path
//! (`SplitAlgo::Hist`) on a synthetic feature-space cohort shaped like
//! the paper's (70 features, 5 modes), across the four retraining
//! layers: a single deep tree, a random forest (one and N workers), the
//! gradient booster, and a forward-selection wrapper search. Writes
//! `results/BENCH_train.json`.
//!
//! Acceptance bars (full scale, single worker): forest fit ≥ 3× and
//! forward-selection wall time ≥ 2×. `--smoke` runs a tiny cohort to
//! exercise every code path in CI without asserting speedups — tiny
//! inputs time mostly fixed overheads.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use traj_bench::{results_dir, Cli};
use traj_ml::boosting::{GbdtConfig, GradientBoosting};
use traj_ml::cv::KFold;
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::tree::{DecisionTree, TreeConfig};
use traj_ml::{Classifier, Dataset, SplitAlgo};
use traj_runtime::Runtime;
use traj_select::{forward_select, ForwardSelectionConfig};
use trajlib::report::save_json;

/// One exact-vs-hist comparison.
#[derive(Debug, Serialize)]
struct Timing {
    exact_ms: f64,
    hist_ms: f64,
    /// `exact_ms / hist_ms`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct TrainBench {
    cores: usize,
    threads: usize,
    smoke: bool,
    n_rows: usize,
    n_features: usize,
    n_classes: usize,
    /// Single deep tree, all 70 features per node, one worker.
    tree_1t: Timing,
    /// Random forest (bootstrap + √d feature sampling), one worker.
    forest_1t: Timing,
    /// Same forest on the machine-sized pool.
    forest_nt: Timing,
    /// Gradient booster (one regression tree per class per round).
    gbdt_1t: Timing,
    /// Forward-selection wrapper search (bins built once, candidates
    /// re-slice them).
    forward_select_1t: Timing,
    /// Headline numbers the acceptance bars read.
    forest_speedup_hist_vs_exact_1t: f64,
    forward_select_speedup: f64,
}

/// Synthetic feature-space cohort shaped like the paper's: `n` segments,
/// 70 features of which the first 10 carry a graded class signal, 5
/// transportation modes, ~100 users.
fn feature_space_data(n: usize, seed: u64) -> Dataset {
    const N_FEATURES: usize = 70;
    const N_CLASSES: usize = 5;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut groups = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % N_CLASSES;
        let row: Vec<f64> = (0..N_FEATURES)
            .map(|f| {
                let signal = if f < 10 {
                    class as f64 * (1.5 - 0.1 * f as f64)
                } else {
                    0.0
                };
                signal + rng.gen_range(-1.0..1.0)
            })
            .collect();
        rows.push(row);
        y.push(class);
        groups.push((i % 100) as u32);
    }
    Dataset::from_rows(&rows, y, N_CLASSES, groups, vec![])
}

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn timing(reps: usize, mut exact: impl FnMut(), mut hist: impl FnMut()) -> Timing {
    let exact_ms = best_ms(reps, &mut exact);
    let hist_ms = best_ms(reps, &mut hist);
    Timing {
        exact_ms,
        hist_ms,
        speedup: exact_ms / hist_ms,
    }
}

fn main() {
    let cli = Cli::from_env();
    let smoke = cli.small || cli.args.iter().any(|a| a == "--smoke");
    let seed = cli.seed.unwrap_or(17);

    let (n_forest, n_gbdt, n_select, reps) = if smoke {
        (3_000, 1_500, 1_200, 1)
    } else {
        (50_000, 20_000, 20_000, 2)
    };

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads = traj_runtime::default_threads();
    let serial = Runtime::new(1);
    let pool = Runtime::new(threads);

    let data = feature_space_data(n_forest, seed);
    let gbdt_data = feature_space_data(n_gbdt, seed.wrapping_add(1));
    let select_data = feature_space_data(n_select, seed.wrapping_add(2));

    // -- Single deep tree, full feature scan per node ---------------------
    let fit_tree = |algo: SplitAlgo| {
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: Some(14),
            seed: 1,
            split_algo: algo,
            ..TreeConfig::default()
        });
        tree.fit(&data);
    };
    let tree_1t = timing(
        reps,
        || serial.install(|| fit_tree(SplitAlgo::Exact)),
        || serial.install(|| fit_tree(SplitAlgo::Hist)),
    );
    println!(
        "tree      1t: exact {:.0}ms hist {:.0}ms ({:.2}x)",
        tree_1t.exact_ms, tree_1t.hist_ms, tree_1t.speedup
    );

    // -- Random forest: quantize once, 8 trees share the bins -------------
    let fit_forest = |algo: SplitAlgo| {
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 8,
            max_depth: Some(14),
            seed: 2,
            split_algo: algo,
            ..ForestConfig::default()
        });
        forest.fit(&data);
    };
    let forest_1t = timing(
        reps,
        || serial.install(|| fit_forest(SplitAlgo::Exact)),
        || serial.install(|| fit_forest(SplitAlgo::Hist)),
    );
    println!(
        "forest    1t: exact {:.0}ms hist {:.0}ms ({:.2}x)",
        forest_1t.exact_ms, forest_1t.hist_ms, forest_1t.speedup
    );
    let forest_nt = timing(
        reps,
        || pool.install(|| fit_forest(SplitAlgo::Exact)),
        || pool.install(|| fit_forest(SplitAlgo::Hist)),
    );
    println!(
        "forest {threads:>2}t: exact {:.0}ms hist {:.0}ms ({:.2}x)",
        forest_nt.exact_ms, forest_nt.hist_ms, forest_nt.speedup
    );

    // -- Gradient booster: one binned matrix feeds every round ------------
    let fit_gbdt = |algo: SplitAlgo| {
        let mut gbdt = GradientBoosting::new(GbdtConfig {
            n_rounds: 2,
            seed: 3,
            split_algo: algo,
            ..GbdtConfig::default()
        });
        gbdt.fit(&gbdt_data);
    };
    let gbdt_1t = timing(
        reps,
        || serial.install(|| fit_gbdt(SplitAlgo::Exact)),
        || serial.install(|| fit_gbdt(SplitAlgo::Hist)),
    );
    println!(
        "gbdt      1t: exact {:.0}ms hist {:.0}ms ({:.2}x)",
        gbdt_1t.exact_ms, gbdt_1t.hist_ms, gbdt_1t.speedup
    );

    // -- Forward selection: candidates re-slice the shared bins -----------
    let run_select = |algo: SplitAlgo| {
        let factory = move |seed: u64| -> Box<dyn Classifier> {
            Box::new(DecisionTree::new(TreeConfig {
                max_depth: Some(10),
                seed,
                split_algo: algo,
                ..TreeConfig::default()
            }))
        };
        let curve = forward_select(
            &select_data,
            &factory,
            &KFold::new(2, 1),
            &ForwardSelectionConfig {
                max_features: 2,
                seed: 0,
                patience: None,
            },
        )
        .expect("selection splits");
        assert_eq!(curve.steps.len(), 2);
    };
    let forward_select_1t = timing(
        reps,
        || serial.install(|| run_select(SplitAlgo::Exact)),
        || serial.install(|| run_select(SplitAlgo::Hist)),
    );
    println!(
        "fwd-sel   1t: exact {:.0}ms hist {:.0}ms ({:.2}x)",
        forward_select_1t.exact_ms, forward_select_1t.hist_ms, forward_select_1t.speedup
    );

    let result = TrainBench {
        cores,
        threads,
        smoke,
        n_rows: n_forest,
        n_features: data.n_features(),
        n_classes: 5,
        forest_speedup_hist_vs_exact_1t: forest_1t.speedup,
        forward_select_speedup: forward_select_1t.speedup,
        tree_1t,
        forest_1t,
        forest_nt,
        gbdt_1t,
        forward_select_1t,
    };

    if !smoke {
        assert!(
            result.forest_speedup_hist_vs_exact_1t >= 3.0,
            "forest hist speedup below the 3x bar: {:.2}x",
            result.forest_speedup_hist_vs_exact_1t
        );
        assert!(
            result.forward_select_speedup >= 2.0,
            "forward-selection hist speedup below the 2x bar: {:.2}x",
            result.forward_select_speedup
        );
    }

    save_json(&results_dir().join("BENCH_train.json"), &result).expect("write results");
}
