//! Regenerates **Figure 3** (§4.2): accuracy versus number of selected
//! features, under (a) random-forest-importance incremental appending and
//! (b) sequential-forward wrapper search. A mutual-information filter
//! curve is included as an extra ablation.
//!
//! ```text
//! cargo run --release -p traj-bench --bin fig3_feature_selection -- importance [--small]
//! cargo run --release -p traj-bench --bin fig3_feature_selection -- wrapper [--small]
//! cargo run --release -p traj-bench --bin fig3_feature_selection -- mi [--small]
//! ```
//!
//! Protocol (paper): Endo label set, user-oriented CV, random-forest
//! evaluator. The paper's findings: the top-20 subset attains the highest
//! accuracy, and `F_speed_p90` is the most essential feature under both
//! methods.

use traj_bench::{results_dir, Cli};
use trajlib::experiments::{run_feature_selection, FeatureSelectionConfig, SelectionMethod};
use trajlib::report::{pct, save_json, MarkdownTable};

fn main() {
    let cli = Cli::from_env();
    let method = match cli.args.first().map(String::as_str) {
        Some("wrapper") => SelectionMethod::Wrapper,
        Some("mi") => SelectionMethod::MutualInfo,
        Some("importance") | None => SelectionMethod::Importance,
        Some(other) => panic!("unknown method {other:?}; use importance|wrapper|mi"),
    };

    // The wrapper evaluates O(d·k) cross-validations (≈ 7,000 forest
    // fits for k = 25 over d = 70); at full GeoLife scale that is hours
    // of compute, so it runs on a medium cohort — the curve's shape
    // (plateau by ~20, speed features first) is scale-stable.
    let data = if method == SelectionMethod::Wrapper && !cli.small {
        trajlib::experiments::DataConfig {
            n_users: 30,
            segments_per_user: (15, 25),
            ..cli.data_config()
        }
    } else {
        cli.data_config()
    };
    let config = FeatureSelectionConfig {
        data,
        method,
        // The wrapper is quadratic in candidate evaluations; 25 steps
        // covers the paper's top-20 plateau. The rank-based curves sweep
        // all 70 features.
        max_features: match method {
            SelectionMethod::Wrapper => 25,
            _ => 70,
        },
        forest_estimators: if cli.small { 10 } else { 20 },
        folds: if cli.small { 3 } else { 5 },
        ..FeatureSelectionConfig::default()
    };

    eprintln!(
        "Figure 3 ({method:?}): feature selection over {} users…",
        config.data.n_users
    );
    let started = std::time::Instant::now();
    let result = run_feature_selection(&config);

    let mut table = MarkdownTable::new(vec!["k", "feature added", "accuracy", "weighted F1"]);
    for (k, step) in result.curve.steps.iter().enumerate() {
        table.push_row(vec![
            (k + 1).to_string(),
            step.feature_name.clone(),
            pct(step.accuracy),
            pct(step.f1_weighted),
        ]);
    }

    let panel = match method {
        SelectionMethod::Importance => "3(a) — RF-importance incremental appending",
        SelectionMethod::Wrapper => "3(b) — sequential-forward wrapper search",
        SelectionMethod::MutualInfo => "3(extra) — mutual-information filter",
    };
    println!("# Figure {panel}\n");
    println!("({:?} elapsed)\n", started.elapsed());
    println!("{}", table.render());

    let best_k = result
        .curve
        .steps
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.accuracy.partial_cmp(&b.1.accuracy).unwrap())
        .map(|(k, s)| (k + 1, s.accuracy))
        .unwrap_or((0, 0.0));
    println!(
        "First-ranked feature: {} (paper: speed_p90).\n\
         Best prefix: k = {} at {} (paper: top-20 subset maximises accuracy).",
        result.best_feature,
        best_k.0,
        pct(best_k.1)
    );

    let name = match method {
        SelectionMethod::Importance => "fig3a_importance",
        SelectionMethod::Wrapper => "fig3b_wrapper",
        SelectionMethod::MutualInfo => "fig3x_mutual_info",
    };
    save_json(&results_dir().join(format!("{name}.json")), &result).expect("write results");

    // The figure itself.
    let mut chart = trajlib::chart::LineChart::new(
        format!("Figure {panel}"),
        "number of selected features",
        "user-oriented CV accuracy",
    );
    chart.push_series(
        "accuracy",
        result
            .curve
            .steps
            .iter()
            .enumerate()
            .map(|(k, s)| ((k + 1) as f64, s.accuracy))
            .collect(),
    );
    chart.push_series(
        "weighted F1",
        result
            .curve
            .steps
            .iter()
            .enumerate()
            .map(|(k, s)| ((k + 1) as f64, s.f1_weighted))
            .collect(),
    );
    let svg_path = results_dir().join(format!("{name}.svg"));
    chart.save_svg(&svg_path).expect("write figure");
    eprintln!("figure written to {}", svg_path.display());
}
