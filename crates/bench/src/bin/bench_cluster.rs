//! Cluster benchmark: stream replay through the shard router, single
//! node versus a 4-shard in-process cluster, with a rolling model
//! upgrade (stage → canary → promote) landing mid-replay on the
//! 4-shard run, and a 3→4 reshard timed mid-stream.
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_cluster -- [--smoke]
//!     [--users N] [--threads N]
//! ```
//!
//! Writes `results/BENCH_cluster.json`. Acceptance bars (on machines
//! with ≥ 4 cores — the JSON records the core count and whether the
//! bars apply): the 4-shard cluster sustains ≥ 3× the single-node
//! replay throughput, with zero dropped sessions and zero non-2xx
//! while the upgrade rolls through; the reshard moves only the ring
//! delta and drops nothing.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use traj_bench::{results_dir, Cli};
use traj_cluster::{ClusterConfig, ClusterRouter, LocalBackend};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig, ServerHandle};
use trajlib::report::save_json;

/// One replayed stream workload through a router.
#[derive(Debug, Serialize)]
struct ReplayRun {
    shards: usize,
    driver_threads: usize,
    users: usize,
    requests: u64,
    non_2xx: u64,
    /// Flush closes observed — one per user means no session dropped.
    closes: u64,
    sessions_dropped: u64,
    duration_s: f64,
    throughput_rps: f64,
}

#[derive(Debug, Serialize)]
struct ReshardResult {
    from_shards: usize,
    to_shards: usize,
    open_sessions: usize,
    sessions_moved: usize,
    reshard_ms: f64,
    sessions_dropped: u64,
    non_2xx: u64,
}

#[derive(Debug, Serialize)]
struct Bars {
    /// Whether the ≥3× throughput bar applies on this machine.
    bar_applies: bool,
    speedup_4x_over_1: f64,
    speedup_pass: bool,
    zero_dropped_sessions: bool,
    zero_non_2xx: bool,
}

#[derive(Debug, Serialize)]
struct Results {
    smoke: bool,
    cores: usize,
    single_node: ReplayRun,
    four_shard_with_rolling_upgrade: ReplayRun,
    /// Canary evidence from the mid-replay rollout (router view).
    rollout_status: String,
    reshard_3_to_4: ReshardResult,
    bars: Bars,
}

fn train(version: u32, seed: u64, segments: &[traj_geo::Segment]) -> ModelArtifact {
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        version,
        seed,
        ..TrainSpec::paper_default("tree")
    };
    ModelArtifact::train(&spec, segments).expect("train artifact")
}

fn start_shard(id: u32, artifact: &ModelArtifact) -> Arc<ServerHandle> {
    let mut registry = ModelRegistry::new();
    registry.insert(artifact.clone()).expect("insert artifact");
    let config = ServerConfig {
        workers: 1,
        shard_id: Some(id),
        ..ServerConfig::default()
    };
    Arc::new(serve("127.0.0.1:0", registry, config).expect("bind shard"))
}

fn cluster(ids: &[u32], artifact: &ModelArtifact) -> (ClusterRouter, Vec<Arc<ServerHandle>>) {
    let router = ClusterRouter::new(ClusterConfig {
        mirror_every: 4,
        ..ClusterConfig::default()
    });
    let mut handles = Vec::new();
    for &id in ids {
        let shard = start_shard(id, artifact);
        router
            .add_shard(id, Box::new(LocalBackend::new(Arc::clone(&shard))))
            .expect("add shard");
        handles.push(shard);
    }
    (router, handles)
}

/// Per-user ingest chunks (last one flushes), shared by every run.
fn chunk_bodies(points: &[traj_geo::TrajectoryPoint], user: u32, chunks: usize) -> Vec<String> {
    let step = points.len().div_ceil(chunks);
    points
        .chunks(step)
        .enumerate()
        .map(|(i, chunk)| {
            let dtos: Vec<String> = chunk
                .iter()
                .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
                .collect();
            let flush = if (i + 1) * step >= points.len() {
                ",\"flush\":true"
            } else {
                ""
            };
            format!("{{\"user\":{user},\"points\":[{}]{flush}}}", dtos.join(","))
        })
        .collect()
}

/// Replays every user's chunk sequence through the router, users
/// partitioned across driver threads. Returns (requests, non_2xx,
/// flush closes, elapsed seconds).
fn replay(router: &ClusterRouter, bodies: &[Vec<String>], threads: usize) -> (u64, u64, u64, f64) {
    let requests = AtomicU64::new(0);
    let non_2xx = AtomicU64::new(0);
    let closes = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for part in 0..threads {
            let requests = &requests;
            let non_2xx = &non_2xx;
            let closes = &closes;
            scope.spawn(move || {
                for user_bodies in bodies.iter().skip(part).step_by(threads) {
                    for body in user_bodies {
                        let (status, response) = router.handle("POST", "/ingest", body.as_bytes());
                        requests.fetch_add(1, Ordering::Relaxed);
                        if !(200..300).contains(&status) {
                            non_2xx.fetch_add(1, Ordering::Relaxed);
                        }
                        closes.fetch_add(
                            response.matches("\"reason\":\"flush\"").count() as u64,
                            Ordering::Relaxed,
                        );
                    }
                }
            });
        }
    });
    (
        requests.into_inner(),
        non_2xx.into_inner(),
        closes.into_inner(),
        started.elapsed().as_secs_f64(),
    )
}

fn run_of(shards: usize, threads: usize, stats: (u64, u64, u64, f64), users: usize) -> ReplayRun {
    let (requests, non_2xx, closes, duration_s) = stats;
    ReplayRun {
        shards,
        driver_threads: threads,
        users,
        requests,
        non_2xx,
        closes,
        sessions_dropped: (users as u64).saturating_sub(closes),
        duration_s,
        throughput_rps: requests as f64 / duration_s.max(1e-9),
    }
}

fn main() {
    let cli = Cli::from_env();
    let smoke = cli.small || cli.args.iter().any(|a| a == "--smoke");
    let arg_after = |flag: &str| -> Option<usize> {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let users = arg_after("--users").unwrap_or(if smoke { 12 } else { 64 });
    let threads = arg_after("--threads").unwrap_or_else(|| cores.clamp(1, 8));
    let chunks = if smoke { 3 } else { 6 };

    eprintln!(
        "bench_cluster: {users} users × {chunks} chunks, {threads} driver threads, {cores} cores"
    );

    // Fixtures: one long synthetic segment replayed per user, two model
    // versions for the rolling upgrade.
    let segments = SynthDataset::generate(&SynthConfig {
        n_users: 4,
        segments_per_user: (4, 6),
        seed: 733,
        ..SynthConfig::default()
    })
    .segments;
    let v1 = train(1, 3, &segments);
    let v2 = train(2, 4, &segments);
    let points = segments
        .iter()
        .find(|s| s.len() >= 2 * MIN_SEGMENT_POINTS)
        .map(|s| s.points.clone())
        .expect("long segment");
    let bodies: Vec<Vec<String>> = (0..users as u32)
        .map(|u| chunk_bodies(&points, u, chunks))
        .collect();

    // Leg 1: single node behind the router.
    let (router1, _shards1) = cluster(&[0], &v1);
    let single = run_of(1, threads, replay(&router1, &bodies, threads), users);
    eprintln!(
        "single node: {:.0} req/s, {} non-2xx, {} dropped",
        single.throughput_rps, single.non_2xx, single.sessions_dropped
    );

    // Leg 2: 4 shards, with a rolling upgrade landing mid-replay.
    let (router4, shards4) = cluster(&[0, 1, 2, 3], &v1);
    let upgrade_router = router4.clone();
    let v2_json = v2.to_json().expect("serialize artifact");
    let stats4 = std::thread::scope(|scope| {
        let rollout = scope.spawn(move || {
            // Let the replay open its sessions, then roll v2 through.
            std::thread::sleep(std::time::Duration::from_millis(if smoke {
                30
            } else {
                150
            }));
            let (status, body) =
                upgrade_router.handle("POST", "/admin/rollout/stage", v2_json.as_bytes());
            assert_eq!(status, 200, "stage failed mid-replay: {body}");
            std::thread::sleep(std::time::Duration::from_millis(if smoke {
                20
            } else {
                100
            }));
            let (status, body) = upgrade_router.handle("POST", "/admin/rollout/promote", b"");
            assert_eq!(status, 200, "promote failed mid-replay: {body}");
        });
        let stats = replay(&router4, &bodies, threads);
        rollout.join().expect("rollout thread");
        stats
    });
    let four = run_of(4, threads, stats4, users);
    let (_, rollout_status) = router4.handle("GET", "/admin/rollout/status", b"");
    for shard in &shards4 {
        let (_, metrics) = shard.dispatch("GET", "/metrics", b"");
        assert!(
            metrics.contains("\"tree\": 2"),
            "shard missed the rolling upgrade: {metrics}"
        );
    }
    eprintln!(
        "4 shards:    {:.0} req/s, {} non-2xx, {} dropped (upgrade rolled mid-replay)",
        four.throughput_rps, four.non_2xx, four.sessions_dropped
    );

    // Leg 3: reshard 3→4 with open sessions mid-stream.
    let (router3, _shards3) = cluster(&[0, 1, 2], &v1);
    for user_bodies in &bodies {
        let (status, _) = router3.handle("POST", "/ingest", user_bodies[0].as_bytes());
        assert_eq!(status, 200);
    }
    let joining = start_shard(3, &v1);
    let reshard_started = Instant::now();
    let moved = router3
        .add_shard(3, Box::new(LocalBackend::new(joining)))
        .expect("reshard 3->4");
    let reshard_ms = reshard_started.elapsed().as_secs_f64() * 1e3;
    let mut tail_non_2xx = 0u64;
    let mut tail_closes = 0u64;
    for user_bodies in &bodies {
        for body in &user_bodies[1..] {
            let (status, response) = router3.handle("POST", "/ingest", body.as_bytes());
            if !(200..300).contains(&status) {
                tail_non_2xx += 1;
            }
            tail_closes += response.matches("\"reason\":\"flush\"").count() as u64;
        }
    }
    let reshard = ReshardResult {
        from_shards: 3,
        to_shards: 4,
        open_sessions: users,
        sessions_moved: moved,
        reshard_ms,
        sessions_dropped: (users as u64).saturating_sub(tail_closes),
        non_2xx: tail_non_2xx,
    };
    eprintln!(
        "reshard 3→4: moved {moved}/{users} sessions in {reshard_ms:.1} ms, {} dropped",
        reshard.sessions_dropped
    );

    let speedup = four.throughput_rps / single.throughput_rps.max(1e-9);
    let bar_applies = cores >= 4;
    let bars = Bars {
        bar_applies,
        speedup_4x_over_1: speedup,
        speedup_pass: !bar_applies || speedup >= 3.0,
        zero_dropped_sessions: four.sessions_dropped == 0 && reshard.sessions_dropped == 0,
        zero_non_2xx: four.non_2xx == 0 && reshard.non_2xx == 0,
    };
    let pass = bars.speedup_pass && bars.zero_dropped_sessions && bars.zero_non_2xx;
    let results = Results {
        smoke,
        cores,
        single_node: single,
        four_shard_with_rolling_upgrade: four,
        rollout_status,
        reshard_3_to_4: reshard,
        bars,
    };
    save_json(&results_dir().join("BENCH_cluster.json"), &results).expect("write results");
    eprintln!(
        "speedup {speedup:.2}× (bar {}) -> results/BENCH_cluster.json",
        if bar_applies {
            "applies"
        } else {
            "recorded only: < 4 cores"
        }
    );
    assert!(pass, "cluster acceptance bars failed: {results:?}");
}
