//! Event-driven I/O benchmark: does a herd of idle keep-alive
//! connections cost worker threads or active-path latency?
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_net -- [--smoke]
//!     [--idle N] [--active N] [--duration-ms MS]
//! ```
//!
//! Starts an in-process `traj-serve` instance (reactor + small worker
//! pool), measures an 8-connection `/predict` baseline, then parks
//! `--idle` keep-alive connections (default 1024; `--smoke` 128) and
//! re-runs the same active load through the middle of the herd.
//!
//! Writes `results/BENCH_net.json`. Bars:
//! - the process grows by O(1) threads while the herd opens — open
//!   connections must not become threads (enforced everywhere);
//! - active p99 with the herd parked stays within 1.5× of the baseline
//!   (enforced on machines with ≥ 4 cores; recorded elsewhere);
//! - every parked connection still answers after the active load
//!   (keep-alive survival, enforced everywhere).

use serde::Serialize;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use traj_bench::{results_dir, Cli};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec};
use traj_serve::http::client_request;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig, ServerHandle};
use trajlib::report::save_json;

#[derive(Debug, Serialize)]
struct ActiveRun {
    connections: usize,
    requests: u64,
    non_2xx: u64,
    duration_s: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

#[derive(Debug, Serialize)]
struct Bars {
    /// Whether the latency bar applies on this machine (≥ 4 cores).
    latency_bar_applies: bool,
    p99_ratio: f64,
    p99_within_1_5x: bool,
    /// Threads the process gained while the idle herd opened.
    thread_delta_during_idle_open: i64,
    threads_stay_o_workers: bool,
    idle_survivors: usize,
    all_idle_survived: bool,
}

#[derive(Debug, Serialize)]
struct Results {
    smoke: bool,
    cores: usize,
    workers: usize,
    idle_connections: usize,
    threads_before_idle: usize,
    threads_with_idle: usize,
    baseline: ActiveRun,
    with_idle_herd: ActiveRun,
    bars: Bars,
}

/// Threads in this process right now (`/proc/self/task` entries);
/// falls back to 0 where procfs is absent, disabling the thread bar.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn predict_body(segments: &[traj_geo::Segment]) -> String {
    let seg = segments.iter().find(|s| s.len() >= 10).expect("segment");
    let points: Vec<String> = seg
        .points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    format!("{{\"points\":[{}]}}", points.join(","))
}

/// Runs `connections` closed-loop clients against `/predict` for
/// `duration`; returns the aggregated run.
fn active_load(
    handle: &ServerHandle,
    connections: usize,
    duration: Duration,
    body: &str,
) -> ActiveRun {
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut requests = 0u64;
    let mut non_2xx = 0u64;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..connections)
            .map(|_| {
                let stop = &stop;
                scope.spawn(move || {
                    let stream = TcpStream::connect(handle.addr()).expect("connect");
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let mut client = BufReader::new(stream);
                    let mut lat = Vec::new();
                    let mut reqs = 0u64;
                    let mut bad = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        match client_request(&mut client, "POST", "/predict", Some(body)) {
                            Ok((status, _)) => {
                                reqs += 1;
                                if (200..300).contains(&status) {
                                    lat.push(t0.elapsed().as_micros() as u64);
                                } else {
                                    bad += 1;
                                }
                            }
                            Err(e) => panic!("active request failed: {e}"),
                        }
                    }
                    (lat, reqs, bad)
                })
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            let (lat, reqs, bad) = worker.join().expect("active worker");
            latencies.extend(lat);
            requests += reqs;
            non_2xx += bad;
        }
    });
    let duration_s = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    ActiveRun {
        connections,
        requests,
        non_2xx,
        duration_s,
        throughput_rps: requests as f64 / duration_s.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn main() {
    let cli = Cli::from_env();
    let smoke = cli.small || cli.args.iter().any(|a| a == "--smoke");
    let arg_after = |flag: &str| -> Option<usize> {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let idle_n = arg_after("--idle").unwrap_or(if smoke { 128 } else { 1024 });
    let active_n = arg_after("--active").unwrap_or(8);
    let duration =
        Duration::from_millis(
            arg_after("--duration-ms").unwrap_or(if smoke { 1500 } else { 4000 }) as u64,
        );
    let workers = cores.clamp(1, 4);

    eprintln!(
        "bench_net: {idle_n} idle conns, {active_n} active conns × {:.1}s legs, \
         {workers} workers, {cores} cores",
        duration.as_secs_f64()
    );

    let segments = SynthDataset::generate(&SynthConfig {
        n_users: 3,
        segments_per_user: (3, 4),
        seed: 97,
        ..SynthConfig::default()
    })
    .segments;
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        ..TrainSpec::paper_default("tree")
    };
    let mut registry = ModelRegistry::new();
    registry
        .insert(ModelArtifact::train(&spec, &segments).expect("train"))
        .expect("insert");
    let body = predict_body(&segments);

    let handle = serve(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            workers,
            // The herd must outlive both legs untouched by the reaper.
            read_timeout: Duration::from_secs(600),
            max_connections: idle_n + active_n + 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Leg 1: the baseline — active connections only.
    let baseline = active_load(&handle, active_n, duration, &body);
    eprintln!(
        "baseline:  {:.0} req/s, p50 {} µs, p99 {} µs, {} non-2xx",
        baseline.throughput_rps, baseline.p50_us, baseline.p99_us, baseline.non_2xx
    );

    // Leg 2: park the herd (each proves itself with one probe), then
    // re-run the same active load straight through the middle of it.
    let threads_before_idle = thread_count();
    let mut herd = Vec::with_capacity(idle_n);
    for _ in 0..idle_n {
        let stream = TcpStream::connect(handle.addr()).expect("connect idle");
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut conn = BufReader::new(stream);
        let (status, _) = client_request(&mut conn, "GET", "/healthz", None).expect("idle probe");
        assert_eq!(status, 200);
        herd.push(conn);
    }
    let threads_with_idle = thread_count();
    let thread_delta = threads_with_idle as i64 - threads_before_idle as i64;
    eprintln!(
        "idle herd: {} parked; process threads {} -> {} (delta {thread_delta})",
        herd.len(),
        threads_before_idle,
        threads_with_idle
    );

    let with_idle = active_load(&handle, active_n, duration, &body);
    eprintln!(
        "with herd: {:.0} req/s, p50 {} µs, p99 {} µs, {} non-2xx",
        with_idle.throughput_rps, with_idle.p50_us, with_idle.p99_us, with_idle.non_2xx
    );

    // Every parked connection must still answer on the same socket.
    let mut idle_survivors = 0usize;
    for conn in &mut herd {
        if matches!(
            client_request(conn, "GET", "/healthz", None),
            Ok((status, _)) if (200..300).contains(&status)
        ) {
            idle_survivors += 1;
        }
    }

    let p99_ratio = with_idle.p99_us as f64 / (baseline.p99_us as f64).max(1.0);
    let latency_bar_applies = cores >= 4;
    // Opening N connections may not add Θ(N) threads; a few is noise
    // (the runtime's sweepers, a late-started worker), N/10 is a leak.
    let thread_slack = 4 + (idle_n as i64) / 10;
    let bars = Bars {
        latency_bar_applies,
        p99_ratio,
        p99_within_1_5x: !latency_bar_applies || p99_ratio <= 1.5,
        thread_delta_during_idle_open: thread_delta,
        threads_stay_o_workers: thread_delta <= thread_slack,
        idle_survivors,
        all_idle_survived: idle_survivors == herd.len(),
    };
    let pass = bars.p99_within_1_5x
        && bars.threads_stay_o_workers
        && bars.all_idle_survived
        && baseline.non_2xx == 0
        && with_idle.non_2xx == 0;
    let results = Results {
        smoke,
        cores,
        workers,
        idle_connections: idle_n,
        threads_before_idle,
        threads_with_idle,
        baseline,
        with_idle_herd: with_idle,
        bars,
    };
    save_json(&results_dir().join("BENCH_net.json"), &results).expect("write results");
    eprintln!(
        "p99 ratio {p99_ratio:.2}× (bar {}), thread delta {thread_delta}, \
         idle survivors {idle_survivors}/{idle_n} -> results/BENCH_net.json",
        if latency_bar_applies {
            "applies"
        } else {
            "recorded only: < 4 cores"
        }
    );
    assert!(pass, "net acceptance bars failed: {results:?}");
}
