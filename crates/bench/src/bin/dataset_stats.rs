//! Regenerates the **§4 dataset description**: the GeoLife label
//! distribution table (the paper: 5,504,363 GPS records, 69 users, eleven
//! modes with walk 29.35 %, bus 23.33 %, bike 17.34 %, …), measured on
//! the synthetic cohort next to the published fractions.
//!
//! ```text
//! cargo run --release -p traj-bench --bin dataset_stats [-- --small]
//! ```

use traj_bench::{results_dir, Cli};
use trajlib::prelude::*;
use trajlib::report::save_json;

fn main() {
    let cli = Cli::from_env();
    let data = cli.data_config();
    eprintln!(
        "Generating the synthetic GeoLife cohort ({} users)…",
        data.n_users
    );
    let synth = data.generate();
    let stats = DatasetStats::compute(&synth.segments);

    println!("# §4 — dataset description (synthetic GeoLife cohort)\n");
    println!("{}", stats.to_table());
    println!(
        "Paper: 5,504,363 GPS records, 69 labeled users. Synthetic cohort\n\
         scales that down (~{} points/user) while keeping the mode mix;\n\
         fractions differ where per-user mode preferences resample rare modes.",
        stats.n_points / stats.n_users.max(1)
    );

    save_json(&results_dir().join("dataset_stats.json"), &stats).expect("write results");
}
