//! Serving-scheduler benchmark: the fixed size-or-delay batcher versus
//! the deadline-aware adaptive policy, on the real HTTP server and in
//! the `traj-sim` discrete-event model, with a sim-vs-real agreement
//! check.
//!
//! ```text
//! cargo run --release -p traj-bench --bin bench_serve -- [--smoke]
//!     [--clients N] [--duration-secs S] [--slo-ms MS]
//! ```
//!
//! Stages:
//! 1. Train a forest artifact and calibrate the batch service-time
//!    model `s(b) = α + β·b` from timed `predict_scaled_batch` flushes,
//!    plus per-request preprocessing cost from a single-client run.
//! 2. Drive the real server closed-loop (N keep-alive clients) under
//!    the fixed baseline and the adaptive scheduler.
//! 3. Replay both scenarios in `traj-sim` with the calibrated model.
//!
//! Writes `results/BENCH_serve.json`. Acceptance bars (full scale):
//! adaptive throughput ≥ 3× the fixed baseline while its p99 holds the
//! SLO, every request answered, and the sim's predicted p99 for the
//! fixed baseline within 25% of the measured value.

use serde::Serialize;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj_bench::{results_dir, Cli};
use traj_geo::Segment;
use traj_geolife::{SynthConfig, SynthDataset};
use traj_ml::RowMatrix;
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::batch::{BatchConfig, SchedulerPolicy};
use traj_serve::http::client_request;
use traj_serve::registry::{LoadedModel, ModelRegistry};
use traj_serve::server::{serve, ServerConfig};
use traj_sim::{ArrivalProcess, SchedulerKind, ServiceModel, Sim, SimConfig};
use trajlib::report::save_json;

/// One measured closed-loop run against the real server.
#[derive(Debug, Serialize)]
struct RealRun {
    scheduler: &'static str,
    clients: usize,
    duration_s: f64,
    requests: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    shed: u64,
    non_2xx: u64,
    /// Requests that never got an HTTP response (transport errors).
    /// The exactly-once contract demands zero.
    unanswered: u64,
}

/// The sim's prediction for the same scenario.
#[derive(Debug, Serialize)]
struct SimRun {
    scheduler: &'static str,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    shed: u64,
}

#[derive(Debug, Serialize)]
struct ServeBench {
    smoke: bool,
    clients: usize,
    slo_ms: u64,
    queue_cap: usize,
    /// Calibrated flush cost intercept, µs.
    alpha_us: f64,
    /// Calibrated per-row flush cost, µs.
    beta_us: f64,
    /// Calibrated per-request preprocessing (HTTP + featurize), µs.
    pre_us: f64,
    /// OS-scheduling jitter scale fed to the sim (98/2 mixture of
    /// Exp(m)/Exp(10m)), µs — calibrated from the adaptive run's tail.
    sched_jitter_us: f64,
    real_fixed: RealRun,
    real_adaptive: RealRun,
    sim_fixed: SimRun,
    sim_adaptive: SimRun,
    /// Measured adaptive-over-fixed throughput; the bar demands ≥ 3.
    speedup: f64,
    /// |sim p99 − real p99| / real p99 for the fixed baseline; ≤ 0.25.
    fixed_p99_agreement: f64,
}

/// Smallest admissible segment: keeps per-request cost low so the
/// closed loop saturates the scheduler, not JSON parsing.
fn pick_segment(segs: &[Segment]) -> &Segment {
    segs.iter()
        .filter(|s| s.len() >= MIN_SEGMENT_POINTS)
        .min_by_key(|s| s.len())
        .expect("synth cohort has admissible segments")
}

fn body_json(segment: &Segment) -> String {
    let points: Vec<String> = segment
        .points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    format!("{{\"points\":[{}]}}", points.join(","))
}

/// Times `predict_scaled_batch` at each batch size and fits the affine
/// service model the adaptive scheduler (and the sim) consult.
fn calibrate_flush(model: &LoadedModel, row: &[f64]) -> Vec<(usize, f64)> {
    let mut samples = Vec::new();
    for &b in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mut rows = RowMatrix::with_width(row.len());
        for _ in 0..b {
            rows.push_row(row);
        }
        // Warm up, then time enough reps to dodge timer granularity.
        let _ = model.predict_scaled_batch(&rows).expect("predict");
        let reps = (256 / b).max(4);
        let started = Instant::now();
        for _ in 0..reps {
            let _ = model.predict_scaled_batch(&rows).expect("predict");
        }
        samples.push((b, started.elapsed().as_nanos() as f64 / reps as f64));
    }
    samples
}

/// Closed-loop drive: `clients` keep-alive connections, each issuing
/// its next request immediately after the previous response.
fn drive(
    scheduler: &'static str,
    batch: BatchConfig,
    registry: ModelRegistry,
    body: &str,
    clients: usize,
    duration: Duration,
) -> RealRun {
    let config = ServerConfig {
        // One connection per worker: measure the scheduler, not the
        // accept queue.
        workers: clients,
        batch,
        ..ServerConfig::default()
    };
    let mut handle = serve("127.0.0.1:0", registry, config).expect("bind");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let body = body.to_owned();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let connect = || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    BufReader::new(stream)
                };
                let mut latencies = Vec::new();
                let (mut shed, mut non_2xx, mut unanswered) = (0u64, 0u64, 0u64);
                let mut client = connect();
                while !stop.load(Ordering::Relaxed) {
                    let sent = Instant::now();
                    match client_request(&mut client, "POST", "/predict", Some(&body)) {
                        Ok((200, _)) => latencies.push(sent.elapsed().as_micros() as u64),
                        Ok((429, _)) => shed += 1,
                        Ok(_) => non_2xx += 1,
                        Err(_) => {
                            unanswered += 1;
                            client = connect();
                        }
                    }
                }
                (latencies, shed, non_2xx, unanswered)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);

    let mut latencies = Vec::new();
    let (mut shed, mut non_2xx, mut unanswered) = (0u64, 0u64, 0u64);
    for t in threads {
        let (l, s, n, u) = t.join().expect("client panicked");
        latencies.extend(l);
        shed += s;
        non_2xx += n;
        unanswered += u;
    }
    let elapsed = started.elapsed().as_secs_f64();
    handle.stop().expect("clean stop");

    latencies.sort_unstable();
    let requests = latencies.len() as u64 + shed + non_2xx;
    RealRun {
        scheduler,
        clients,
        duration_s: elapsed,
        requests,
        throughput_rps: latencies.len() as f64 / elapsed,
        p50_us: traj_sim::percentile_us(&mut latencies, 50.0),
        p99_us: traj_sim::percentile_us(&mut latencies, 99.0),
        shed,
        non_2xx,
        unanswered,
    }
}

fn simulate(
    scheduler: SchedulerKind,
    service: ServiceModel,
    clients: usize,
    slo_us: u64,
    queue_cap: usize,
    duration_s: f64,
    sched_jitter_us: f64,
) -> SimRun {
    let report = Sim::new(SimConfig {
        arrival: ArrivalProcess::ClosedLoop {
            clients,
            // Client-side turnaround between response and next request;
            // small next to service times, so a constant suffices.
            think_us: 10,
        },
        scheduler,
        service,
        slo_us,
        queue_cap,
        workers: clients,
        cores: 1,
        duration_s,
        sched_jitter_us,
        ..SimConfig::default()
    })
    .run();
    SimRun {
        scheduler: report.scheduler,
        throughput_rps: report.overall.throughput_rps,
        p50_us: report.overall.p50_us,
        p99_us: report.overall.p99_us,
        shed: report.overall.shed,
    }
}

fn registry_with(artifact: &ModelArtifact) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.insert(artifact.clone()).expect("insert");
    registry
}

fn main() {
    let cli = Cli::from_env();
    let smoke = cli.small || cli.args.iter().any(|a| a == "--smoke");
    let arg_after = |key: &str| -> Option<u64> {
        cli.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| cli.args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let clients = arg_after("--clients").unwrap_or(4) as usize;
    let duration =
        Duration::from_secs(arg_after("--duration-secs").unwrap_or(if smoke { 1 } else { 5 }));
    let slo = Duration::from_millis(arg_after("--slo-ms").unwrap_or(50));
    let queue_cap = 1024usize;

    // --- Stage 1: artifact + service-time calibration. -----------------
    let segs = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (5, 8),
        seed: cli.seed.unwrap_or(97),
        ..SynthConfig::default()
    })
    .segments;
    let spec = TrainSpec {
        top_k: Some(20),
        seed: 3,
        ..TrainSpec::paper_default("rf")
    };
    let artifact = ModelArtifact::train(&spec, &segs).expect("train");
    let body = body_json(pick_segment(&segs));

    let registry = registry_with(&artifact);
    let model = registry.get(None).expect("model");
    // Already projected + scaled: the exact row the batcher flushes.
    let row = model
        .features_of_points(&pick_segment(&segs).points)
        .expect("featurize");
    let samples = calibrate_flush(&model, &row);

    // --- Stage 2: real closed-loop runs. -------------------------------
    println!("bench_serve: calibration flushes done; driving real server");
    // The fixed run is the sim-agreement target: give its p99 twice the
    // samples so ambient machine noise doesn't dominate the tail.
    let real_fixed = drive(
        "fixed",
        BatchConfig {
            slo,
            queue_cap,
            ..BatchConfig::fixed_baseline()
        },
        registry_with(&artifact),
        &body,
        clients,
        duration * 2,
    );
    println!(
        "  fixed:    {:>8.1} req/s   p50 {} µs   p99 {} µs",
        real_fixed.throughput_rps, real_fixed.p50_us, real_fixed.p99_us
    );
    let real_adaptive = drive(
        "adaptive",
        BatchConfig {
            policy: SchedulerPolicy::Adaptive { max_batch: 128 },
            slo,
            queue_cap,
        },
        registry_with(&artifact),
        &body,
        clients,
        duration,
    );
    println!(
        "  adaptive: {:>8.1} req/s   p50 {} µs   p99 {} µs",
        real_adaptive.throughput_rps, real_adaptive.p50_us, real_adaptive.p99_us
    );

    // Preprocessing cost per request (HTTP parse + featurize + scale +
    // response), from the adaptive run's critical path: each completed
    // request costs `1/throughput` seconds of the single core, of which
    // the flush itself explains `s(b)/b` per row.
    let service0 = ServiceModel::fit(&samples, 0.0);
    let per_request_ns = 1e9 / real_adaptive.throughput_rps.max(1.0);
    let mean_batch = (real_adaptive.throughput_rps * (service0.alpha_ns / 1e9)
        / (1.0 - real_adaptive.throughput_rps * service0.beta_ns / 1e9).max(0.05))
    .max(1.0);
    let flush_share_ns = service0.alpha_ns / mean_batch + service0.beta_ns;
    let pre_ns = (per_request_ns - flush_share_ns).max(5_000.0);
    let service = ServiceModel::fit(&samples, pre_ns);

    // --- Stage 3: the same scenarios in the simulator. -----------------
    // OS-scheduling jitter scale, calibrated from the *adaptive* run's
    // tail spread and then validated against the *fixed* run —
    // cross-scenario, so the fixed-p99 agreement check below is not
    // self-fulfilling. The sim's preemption model is a 98/2 mixture of
    // Exp(m) and Exp(10m); its p99 is set by the heavy component, about
    // 6.9m above the median, so m ≈ (p99 − p50)/6.9.
    // Capped so the recentering below never clamps: the jitter tax must
    // redistribute the calibrated mean (1.18m for the mixture), not
    // inflate it.
    let sched_jitter_us = ((real_adaptive.p99_us.saturating_sub(real_adaptive.p50_us)) as f64
        / 6.9)
        .min((service.pre_ns / 1_000.0 - 5.0) / 1.18)
        .max(0.0);
    // The jitter tax is strictly positive, and the calibrated `pre_ns`
    // already contains the *average* preemption cost — recenter so the
    // simulated mean stays at the measurement.
    let service = ServiceModel {
        pre_ns: service.pre_ns - 1.18 * sched_jitter_us * 1_000.0,
        ..service
    };
    let sim_duration = if smoke { 2.0 } else { 10.0 };
    let slo_us = slo.as_micros() as u64;
    let sim_fixed = simulate(
        SchedulerKind::Fixed {
            max_batch: 32,
            max_delay_us: 2_000,
        },
        service,
        clients,
        slo_us,
        queue_cap,
        sim_duration,
        sched_jitter_us,
    );
    let sim_adaptive = simulate(
        SchedulerKind::Adaptive { max_batch: 128 },
        service,
        clients,
        slo_us,
        queue_cap,
        sim_duration,
        sched_jitter_us,
    );
    println!(
        "  sim:      fixed {:.1} req/s (p99 {} µs)   adaptive {:.1} req/s (p99 {} µs)",
        sim_fixed.throughput_rps,
        sim_fixed.p99_us,
        sim_adaptive.throughput_rps,
        sim_adaptive.p99_us
    );

    let speedup = real_adaptive.throughput_rps / real_fixed.throughput_rps.max(1.0);
    let fixed_p99_agreement = (sim_fixed.p99_us as f64 - real_fixed.p99_us as f64).abs()
        / (real_fixed.p99_us as f64).max(1.0);
    let result = ServeBench {
        smoke,
        clients,
        slo_ms: slo.as_millis() as u64,
        queue_cap,
        alpha_us: service.alpha_ns / 1_000.0,
        beta_us: service.beta_ns / 1_000.0,
        pre_us: pre_ns / 1_000.0,
        sched_jitter_us,
        real_fixed,
        real_adaptive,
        sim_fixed,
        sim_adaptive,
        speedup,
        fixed_p99_agreement,
    };
    println!(
        "  speedup {:.2}x   fixed-p99 sim-vs-real gap {:.1}%",
        result.speedup,
        result.fixed_p99_agreement * 100.0
    );

    if !smoke {
        assert_eq!(
            result.real_fixed.unanswered + result.real_adaptive.unanswered,
            0,
            "every request must receive an HTTP response"
        );
        assert_eq!(
            result.real_fixed.non_2xx + result.real_adaptive.non_2xx,
            0,
            "no request may fail outside the shed path"
        );
        assert!(
            result.speedup >= 3.0,
            "adaptive must beat the fixed baseline 3x, got {:.2}x",
            result.speedup
        );
        assert!(
            result.real_adaptive.p99_us <= slo_us,
            "adaptive p99 {} µs must hold the {} µs SLO",
            result.real_adaptive.p99_us,
            slo_us
        );
        assert!(
            result.fixed_p99_agreement <= 0.25,
            "sim fixed p99 must land within 25% of measured, gap {:.1}%",
            result.fixed_p99_agreement * 100.0
        );
    }

    save_json(&results_dir().join("BENCH_serve.json"), &result).expect("write results");
    println!("wrote {}", results_dir().join("BENCH_serve.json").display());
}
