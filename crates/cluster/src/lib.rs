//! traj-cluster: sharded serving over `traj-serve` instances.
//!
//! One router fronts N shards: user ids consistent-hash onto the shards
//! (`ring`), requests are forwarded over in-process or HTTP backends
//! (`backend`), model artifacts roll out cluster-wide through a canary
//! state machine (`rollout`), and resharding moves live sessions
//! between shards bit-identically through the WAL session codec
//! (`router`). See DESIGN.md §15 for the protocol walkthrough.

pub mod backend;
pub mod ring;
pub mod rollout;
pub mod router;

pub use backend::{HttpBackend, LocalBackend, ShardBackend};
pub use ring::HashRing;
pub use rollout::{CanaryStats, RolloutState};
pub use router::{ClusterConfig, ClusterRouter, HealthCheckerHandle, RouterHttpHandle};
