//! How the router talks to a shard: in-process dispatch or HTTP.
//!
//! The router is written against [`ShardBackend`] only, so the same
//! routing, rollout and handoff logic fronts in-process multi-instance
//! deployments (tests, benchmarks, single-box fan-out) and real
//! `traj-serve` processes over HTTP. The HTTP transport multiplexes on
//! the shared [`traj_net::NetClient`] event loop: callers block for
//! their response (the router's forwarding contract is synchronous),
//! but the sockets themselves are serviced by one background thread,
//! so a stalled shard never pins the calling thread inside a write.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use traj_net::NetClient;
use traj_serve::ServerHandle;

/// One request to one shard. Implementations return `Err` only for
/// transport failures — an HTTP error status is a successful `Ok`
/// response the router inspects.
pub trait ShardBackend: Send + Sync {
    /// Performs `method path` with a JSON `body`; returns
    /// `(status, body)`.
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String>;

    /// Where the shard listens, when it has an address (diagnostics).
    fn addr(&self) -> Option<SocketAddr> {
        None
    }
}

/// In-process backend: calls straight into a [`ServerHandle`]'s routing
/// table, no sockets. Shares the handle by `Arc`, so the owning test or
/// binary keeps control of the server's lifetime.
pub struct LocalBackend {
    handle: Arc<ServerHandle>,
}

impl LocalBackend {
    /// A backend over a running in-process server.
    pub fn new(handle: Arc<ServerHandle>) -> LocalBackend {
        LocalBackend { handle }
    }
}

impl ShardBackend for LocalBackend {
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
        Ok(self.handle.dispatch(method, path, body))
    }

    fn addr(&self) -> Option<SocketAddr> {
        Some(self.handle.addr())
    }
}

/// HTTP backend over the shared [`NetClient`] multiplexer: keep-alive
/// connections to the shard are pooled per address and reused across
/// every backend pointing at it, re-established on failure.
pub struct HttpBackend {
    addr: SocketAddr,
    read_timeout: Duration,
    /// The pool key — all connections to one shard share a bucket.
    pool_key: String,
}

impl HttpBackend {
    /// A backend for the shard listening on `addr`.
    pub fn new(addr: SocketAddr, read_timeout: Duration) -> HttpBackend {
        HttpBackend {
            addr,
            read_timeout,
            pool_key: addr.to_string(),
        }
    }

    fn connect(&self) -> Result<TcpStream, String> {
        TcpStream::connect_timeout(&self.addr, self.read_timeout)
            .map_err(|e| format!("connecting {}: {e}", self.addr))
    }
}

/// Whether a request may be transparently re-sent after an ambiguous
/// transport failure (the shard may have processed it without the
/// response arriving). GETs and the prediction endpoints are pure
/// reads; `/ingest` is stateful but safe because the router stamps an
/// idempotency key the shard dedupes on. Admin mutations (rollout,
/// handoff) are NOT resendable — the router compensates those at the
/// protocol level instead.
fn resendable(method: &str, path: &str) -> bool {
    method == "GET" || matches!(path, "/predict" | "/predict_batch" | "/ingest")
}

impl ShardBackend for HttpBackend {
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
        let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 body".to_owned())?;
        let payload = if text.is_empty() { None } else { Some(text) };
        let rendered = traj_net::render_request(method, path, payload);
        let client = NetClient::global();
        if !resendable(method, path) {
            // Non-idempotent: never reuse a pooled connection (a stale
            // keep-alive failure would be indistinguishable from the
            // shard dying mid-request) and never re-send. One fresh
            // connection, one attempt, the outcome reported verbatim —
            // no pool key, so the connection is closed after the reply.
            let stream = self.connect()?;
            return client
                .execute(stream, rendered, self.read_timeout, None)
                .map_err(|e| format!("{} {path} on {}: {e}", method, self.addr));
        }
        // A pooled connection may have been closed by the shard's idle
        // reaper; retry exactly once on a fresh connection. A failure
        // on the fresh connection is the shard's problem, reported up
        // for the router's bounded-backoff retry policy.
        if let Some(stream) = client.take_pooled(&self.pool_key) {
            match client.execute(
                stream,
                rendered.clone(),
                self.read_timeout,
                Some(self.pool_key.clone()),
            ) {
                Ok(response) => return Ok(response),
                Err(_stale) => {} // fall through to the fresh attempt
            }
        }
        let stream = self.connect()?;
        client
            .execute(
                stream,
                rendered,
                self.read_timeout,
                Some(self.pool_key.clone()),
            )
            .map_err(|e| format!("{} {path} on {}: {e}", method, self.addr))
    }

    fn addr(&self) -> Option<SocketAddr> {
        Some(self.addr)
    }
}
