//! How the router talks to a shard: in-process dispatch or HTTP.
//!
//! The router is written against [`ShardBackend`] only, so the same
//! routing, rollout and handoff logic fronts in-process multi-instance
//! deployments (tests, benchmarks, single-box fan-out) and real
//! `traj-serve` processes over the existing std-net HTTP layer.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use traj_serve::http::client_request;
use traj_serve::ServerHandle;

/// One request to one shard. Implementations return `Err` only for
/// transport failures — an HTTP error status is a successful `Ok`
/// response the router inspects.
pub trait ShardBackend: Send + Sync {
    /// Performs `method path` with a JSON `body`; returns
    /// `(status, body)`.
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String>;

    /// Where the shard listens, when it has an address (diagnostics).
    fn addr(&self) -> Option<SocketAddr> {
        None
    }
}

/// In-process backend: calls straight into a [`ServerHandle`]'s routing
/// table, no sockets. Shares the handle by `Arc`, so the owning test or
/// binary keeps control of the server's lifetime.
pub struct LocalBackend {
    handle: Arc<ServerHandle>,
}

impl LocalBackend {
    /// A backend over a running in-process server.
    pub fn new(handle: Arc<ServerHandle>) -> LocalBackend {
        LocalBackend { handle }
    }
}

impl ShardBackend for LocalBackend {
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
        Ok(self.handle.dispatch(method, path, body))
    }

    fn addr(&self) -> Option<SocketAddr> {
        Some(self.handle.addr())
    }
}

/// HTTP backend over the workspace's std-net layer: one pooled
/// keep-alive connection per shard, re-established on failure.
pub struct HttpBackend {
    addr: SocketAddr,
    read_timeout: Duration,
    /// The pooled connection; `None` until first use or after a failure.
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

impl HttpBackend {
    /// A backend for the shard listening on `addr`.
    pub fn new(addr: SocketAddr, read_timeout: Duration) -> HttpBackend {
        HttpBackend {
            addr,
            read_timeout,
            conn: Mutex::new(None),
        }
    }

    fn connect(&self) -> Result<BufReader<TcpStream>, String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.read_timeout)
            .map_err(|e| format!("connecting {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        let _ = stream.set_nodelay(true);
        Ok(BufReader::new(stream))
    }
}

/// Whether a request may be transparently re-sent after an ambiguous
/// transport failure (the shard may have processed it without the
/// response arriving). GETs and the prediction endpoints are pure
/// reads; `/ingest` is stateful but safe because the router stamps an
/// idempotency key the shard dedupes on. Admin mutations (rollout,
/// handoff) are NOT resendable — the router compensates those at the
/// protocol level instead.
fn resendable(method: &str, path: &str) -> bool {
    method == "GET" || matches!(path, "/predict" | "/predict_batch" | "/ingest")
}

impl ShardBackend for HttpBackend {
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
        let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 body".to_owned())?;
        let payload = if text.is_empty() { None } else { Some(text) };
        if !resendable(method, path) {
            // Non-idempotent: never reuse a pooled connection (a stale
            // keep-alive failure would be indistinguishable from the
            // shard dying mid-request) and never re-send. One fresh
            // connection, one attempt, the outcome reported verbatim.
            let mut conn = self.connect()?;
            return client_request(&mut conn, method, path, payload)
                .map_err(|e| format!("{} {path} on {}: {e}", method, self.addr));
        }
        let mut guard = self.conn.lock().expect("backend poisoned");
        // A pooled connection may have been closed by the server's idle
        // timeout; retry exactly once on a fresh connection. A failure
        // on the fresh connection is the shard's problem, reported up
        // for the router's bounded-backoff retry policy.
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        match client_request(guard.as_mut().expect("just set"), method, path, payload) {
            Ok(response) => Ok(response),
            Err(first) => {
                *guard = None;
                if !reused {
                    return Err(format!("{} {path} on {}: {first}", method, self.addr));
                }
                *guard = Some(self.connect()?);
                match client_request(guard.as_mut().expect("just set"), method, path, payload) {
                    Ok(response) => Ok(response),
                    Err(e) => {
                        *guard = None;
                        Err(format!("{} {path} on {}: {e}", method, self.addr))
                    }
                }
            }
        }
    }

    fn addr(&self) -> Option<SocketAddr> {
        Some(self.addr)
    }
}
