//! The consistent-hash ring: user id → shard id, stable under reshard.
//!
//! Each shard owns `vnodes` points on a `u64` ring (virtual nodes
//! smooth the per-shard load to within a few percent of even); a user
//! hashes to one point and is owned by the first shard point at or
//! after it, wrapping at the top. Adding or removing one shard moves
//! only the keys that land in the arcs the shard's own points cover —
//! ~1/N of the keyspace — which is what makes session handoff on
//! reshard proportional to the cluster change, not the session count.
//!
//! Hashing is splitmix64, dependency-free and deterministic across
//! processes and platforms, so every router instance computes the same
//! assignment.

/// The finalizer of splitmix64: a bijective avalanche mix on `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Ring position of one user id.
fn user_point(user: u32) -> u64 {
    splitmix64(u64::from(user) ^ (0x75a9_5a5a_u64 << 32))
}

/// Ring position of one shard replica.
fn shard_point(shard: u32, replica: u32) -> u64 {
    splitmix64((u64::from(shard) << 32) | u64::from(replica))
}

/// A consistent-hash ring with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, u32)>,
    /// Member shard ids, sorted.
    shards: Vec<u32>,
    /// Virtual nodes per shard.
    vnodes: usize,
}

impl HashRing {
    /// A ring over `shards` with `vnodes` points each (256 is a good
    /// default: 4-shard imbalance stays well inside ±20%).
    pub fn new(shards: &[u32], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut ids: Vec<u32> = shards.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let mut points = Vec::with_capacity(ids.len() * vnodes);
        for &shard in &ids {
            for replica in 0..vnodes as u32 {
                points.push((shard_point(shard, replica), shard));
            }
        }
        // Point collisions across shards are theoretically possible;
        // break them by shard id so the assignment stays deterministic
        // regardless of insertion order.
        points.sort_unstable();
        HashRing {
            points,
            shards: ids,
            vnodes,
        }
    }

    /// The owning shard of `user`, or `None` on an empty ring.
    pub fn shard_of(&self, user: u32) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let target = user_point(user);
        let index = match self.points.binary_search(&(target, 0)) {
            Ok(i) => i,
            Err(i) => i,
        };
        // Wrap past the last point back to the first.
        let (_, shard) = self.points[index % self.points.len()];
        Some(shard)
    }

    /// Member shard ids, sorted.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The ring with `shard` added (no-op when already a member).
    pub fn with_shard(&self, shard: u32) -> HashRing {
        let mut ids = self.shards.clone();
        ids.push(shard);
        HashRing::new(&ids, self.vnodes)
    }

    /// The ring with `shard` removed (no-op when not a member).
    pub fn without_shard(&self, shard: u32) -> HashRing {
        let ids: Vec<u32> = self
            .shards
            .iter()
            .copied()
            .filter(|&s| s != shard)
            .collect();
        HashRing::new(&ids, self.vnodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_order_independent() {
        let a = HashRing::new(&[0, 1, 2, 3], 64);
        let b = HashRing::new(&[3, 1, 0, 2, 1], 64);
        for user in 0..10_000u32 {
            assert_eq!(a.shard_of(user), b.shard_of(user));
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        assert_eq!(HashRing::new(&[], 64).shard_of(7), None);
    }

    #[test]
    fn removing_a_shard_reassigns_only_its_keys() {
        let full = HashRing::new(&[0, 1, 2, 3], 256);
        let less = full.without_shard(2);
        for user in 0..20_000u32 {
            let before = full.shard_of(user).unwrap();
            let after = less.shard_of(user).unwrap();
            if before != 2 {
                // Keys not owned by the removed shard must not move.
                assert_eq!(before, after, "user {user} moved {before}->{after}");
            } else {
                assert_ne!(after, 2);
            }
        }
    }
}
