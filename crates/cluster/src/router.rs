//! The shard router: one front door over N `traj-serve` shards.
//!
//! Stateless endpoints (`/predict`, `/predict_batch`) round-robin over
//! healthy shards and fail over on errors; `/ingest` is stateful and
//! always forwards to the consistent-hash owner of the request's user
//! id (bounded retries with exponential backoff ride out a shard's
//! not-ready window instead of switching shards — session state cannot
//! fail over). `/metrics` and `/healthz` fan in across the cluster,
//! preserving each shard's own labels.
//!
//! The routing table (ring + shard map) sits behind an `RwLock`:
//! requests hold the read lock across their forward, and a reshard
//! holds the write lock across the whole handoff — so no request can
//! slip into a shard whose sessions are mid-move. Handoff itself is
//! copy → import → evict: the source keeps its sessions until the
//! target acknowledged the import, and a failure at any step aborts
//! with exactly one authoritative copy left (see [`transfer`]) — which
//! is what makes the handoff lossless without any shard-side
//! coordination.

use crate::backend::ShardBackend;
use crate::ring::HashRing;
use crate::rollout::RolloutState;
use serde::Value;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Additional forward attempts after the first failure.
    pub retries: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Mirror every k-th `/predict` to a staged canary (1-in-k slice).
    pub mirror_every: u64,
    /// Cadence of the background `/readyz` health checks.
    pub health_interval: Duration,
    /// How long a shard marked unhealthy by a data-path transport error
    /// stays out of the stateless rotation before it is re-probed with
    /// live traffic. Without this, clusters not running the background
    /// health checker would drop a shard forever on one transient
    /// connect failure.
    pub reprobe_after: Duration,
    /// Largest accepted request body on the router's own HTTP server.
    pub max_body_bytes: usize,
    /// Idle/slow-client deadline of the router's own HTTP server (and
    /// the per-request timeout of its shard-facing HTTP backends).
    pub read_timeout: Duration,
    /// Worker threads of the router's own HTTP server. Forwarding
    /// blocks on the shard, so this bounds concurrent forwards — open
    /// client connections are free (they live on the reactor thread).
    pub http_workers: usize,
    /// Open-connection cap of the router's own HTTP server.
    pub max_connections: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vnodes: 256,
            retries: 3,
            backoff: Duration::from_millis(25),
            mirror_every: 4,
            health_interval: Duration::from_millis(500),
            reprobe_after: Duration::from_secs(1),
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            http_workers: 8,
            max_connections: 16 * 1024,
        }
    }
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&Value::Map(vec![(
        "error".to_owned(),
        Value::Str(message.to_owned()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_owned())
}

/// One member shard: identity, transport, and the health flag the
/// background checker and the data path maintain.
struct Shard {
    id: u32,
    backend: Box<dyn ShardBackend>,
    /// Cleared on a failed `/readyz` or a data-path transport error;
    /// unhealthy shards are skipped for stateless traffic. Starts
    /// healthy so clusters without a health checker still route, and a
    /// successful response always restores it — combined with the
    /// reprobe window below, one transient failure cannot remove a
    /// shard from rotation forever.
    healthy: AtomicBool,
    /// Milliseconds (since the router started) when the shard was last
    /// marked unhealthy; after `config.reprobe_after` the stateless
    /// rotation admits it again as a live probe.
    down_at_ms: AtomicU64,
}

impl Shard {
    fn mark_down(&self, now_ms: u64) {
        self.down_at_ms.store(now_ms, Ordering::Relaxed);
        self.healthy.store(false, Ordering::Relaxed);
    }

    fn mark_up(&self) {
        self.healthy.store(true, Ordering::Relaxed);
    }

    /// In rotation: healthy, or down long enough to deserve a re-probe.
    fn eligible(&self, now_ms: u64, reprobe: Duration) -> bool {
        self.healthy.load(Ordering::Relaxed)
            || now_ms.saturating_sub(self.down_at_ms.load(Ordering::Relaxed))
                >= reprobe.as_millis() as u64
    }
}

/// The routing table: swapped atomically under the write lock on
/// reshard.
struct Table {
    ring: HashRing,
    shards: BTreeMap<u32, Arc<Shard>>,
}

/// Router-level counters (shard-level metrics live on the shards and
/// are fanned in verbatim).
#[derive(Debug, Default)]
struct RouterMetrics {
    requests_total: AtomicU64,
    forwarded_predict: AtomicU64,
    forwarded_batch: AtomicU64,
    forwarded_ingest: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    unavailable_503: AtomicU64,
    reshards: AtomicU64,
    handoff_sessions_moved: AtomicU64,
}

struct RouterState {
    config: ClusterConfig,
    table: RwLock<Table>,
    rollout: RolloutState,
    metrics: RouterMetrics,
    /// Round-robin cursor of the stateless endpoints.
    cursor: AtomicU64,
    /// Epoch of the `down_at_ms` stamps on the shards.
    started: Instant,
    /// Idempotency keys stamped on forwarded `/ingest` requests:
    /// a wall-clock base (so keys don't repeat across router restarts
    /// within a shard's dedupe window) plus a per-request counter.
    idem_base: u64,
    idem_counter: AtomicU64,
    /// The HTTP front door's reactor counters (set when `serve_http`
    /// runs); fanned into `/metrics` as the router's own `"net"`.
    http_net: OnceLock<Arc<traj_net::NetStats>>,
}

impl RouterState {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn next_idem(&self) -> u64 {
        self.idem_base
            .wrapping_add(self.idem_counter.fetch_add(1, Ordering::Relaxed))
    }
}

/// The cluster router. Cheap to clone (shared state behind an `Arc`);
/// every clone fronts the same cluster.
#[derive(Clone)]
pub struct ClusterRouter {
    state: Arc<RouterState>,
}

// --------------------------------------------------------- JSON helpers

fn parse_map(text: &str) -> Option<Vec<(String, Value)>> {
    match serde_json::parse_value(text) {
        Ok(Value::Map(entries)) => Some(entries),
        _ => None,
    }
}

fn value_u32(value: &Value) -> Option<u32> {
    match value {
        Value::Int(i) => u32::try_from(*i).ok(),
        Value::UInt(u) => u32::try_from(*u).ok(),
        _ => None,
    }
}

/// The `"class"` of a `/predict` response body, for canary agreement.
fn class_of(response: &str) -> Option<u32> {
    let entries = parse_map(response)?;
    value_u32(serde::map_get(&entries, "class")?)
}

impl ClusterRouter {
    /// An empty router; add shards before serving traffic.
    pub fn new(config: ClusterConfig) -> ClusterRouter {
        let ring = HashRing::new(&[], config.vnodes);
        ClusterRouter {
            state: Arc::new(RouterState {
                config,
                table: RwLock::new(Table {
                    ring,
                    shards: BTreeMap::new(),
                }),
                rollout: RolloutState::new(),
                metrics: RouterMetrics::default(),
                cursor: AtomicU64::new(0),
                started: Instant::now(),
                idem_base: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_nanos() as u64),
                idem_counter: AtomicU64::new(0),
                http_net: OnceLock::new(),
            }),
        }
    }

    /// Member shard ids, sorted.
    pub fn shard_ids(&self) -> Vec<u32> {
        let table = self.state.table.read().expect("table poisoned");
        table.shards.keys().copied().collect()
    }

    /// The hash-ring owner of `user`, for tests and planners.
    pub fn owner_of(&self, user: u32) -> Option<u32> {
        let table = self.state.table.read().expect("table poisoned");
        table.ring.shard_of(user)
    }

    // ----------------------------------------------------------- reshard

    /// Adds a shard, moving the sessions the new ring assigns to it off
    /// their current owners (copy-export → import → evict via the
    /// shards' handoff admin surface). Holds the routing write lock for
    /// the whole move, so no in-flight stream observes the
    /// half-resharded cluster. On failure the reshard aborts and every
    /// session already moved onto the joining shard is transferred back
    /// to its old owner, so nothing strands on a shard the ring never
    /// admitted. Returns the number of sessions moved.
    pub fn add_shard(&self, id: u32, backend: Box<dyn ShardBackend>) -> Result<usize, String> {
        let mut table = self.state.table.write().expect("table poisoned");
        if table.shards.contains_key(&id) {
            return Err(format!("shard {id} already exists"));
        }
        let shard = Arc::new(Shard {
            id,
            backend,
            healthy: AtomicBool::new(true),
            down_at_ms: AtomicU64::new(0),
        });
        let next_ring = table.ring.with_shard(id);
        let mut moved = 0usize;
        // (old owner, users moved) per completed transfer, for rollback.
        let mut done: Vec<(Arc<Shard>, Vec<u32>)> = Vec::new();
        for old in table.shards.values() {
            let step = sessions_of(old).and_then(|users| {
                let moving: Vec<u32> = users
                    .into_iter()
                    .filter(|&u| next_ring.shard_of(u) == Some(id))
                    .collect();
                transfer(old, &shard, &moving).map(|n| (moving, n))
            });
            match step {
                Ok((moving, n)) => {
                    moved += n;
                    if !moving.is_empty() {
                        done.push((Arc::clone(old), moving));
                    }
                }
                Err(e) => {
                    let rollback = unwind_transfers(
                        done.iter()
                            .map(|(old, users)| (shard.as_ref(), old.as_ref(), users.as_slice())),
                    );
                    return Err(match rollback {
                        Ok(()) => format!("{e} (reshard aborted; moved sessions returned)"),
                        Err(re) => format!("{e}; rollback incomplete: {re}"),
                    });
                }
            }
        }
        table.ring = next_ring;
        table.shards.insert(id, shard);
        self.state.metrics.reshards.fetch_add(1, Ordering::Relaxed);
        self.state
            .metrics
            .handoff_sessions_moved
            .fetch_add(moved as u64, Ordering::Relaxed);
        Ok(moved)
    }

    /// Removes a shard, rehoming every session it owns onto the
    /// surviving ring (grouped per new owner). Same write-lock and
    /// abort-with-rollback contract as [`ClusterRouter::add_shard`]: on
    /// failure, sessions already rehomed are transferred back to the
    /// leaving shard, which stays in the ring. Returns the sessions
    /// moved.
    pub fn remove_shard(&self, id: u32) -> Result<usize, String> {
        let mut table = self.state.table.write().expect("table poisoned");
        let Some(leaving) = table.shards.get(&id).cloned() else {
            return Err(format!("no shard {id}"));
        };
        let next_ring = table.ring.without_shard(id);
        if next_ring.is_empty() && !sessions_of(&leaving)?.is_empty() {
            return Err(format!(
                "shard {id} is the last member and still holds sessions"
            ));
        }
        let users = sessions_of(&leaving)?;
        let mut by_owner: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for user in users {
            let owner = next_ring
                .shard_of(user)
                .expect("non-empty ring owns every key");
            by_owner.entry(owner).or_default().push(user);
        }
        let mut moved = 0usize;
        // (new owner, users moved) per completed transfer, for rollback.
        let mut done: Vec<(Arc<Shard>, Vec<u32>)> = Vec::new();
        for (owner, users) in &by_owner {
            let target = table.shards.get(owner).expect("owner in table");
            match transfer(&leaving, target, users) {
                Ok(n) => {
                    moved += n;
                    done.push((Arc::clone(target), users.clone()));
                }
                Err(e) => {
                    let rollback = unwind_transfers(done.iter().map(|(target, users)| {
                        (target.as_ref(), leaving.as_ref(), users.as_slice())
                    }));
                    return Err(match rollback {
                        Ok(()) => format!("{e} (reshard aborted; moved sessions returned)"),
                        Err(re) => format!("{e}; rollback incomplete: {re}"),
                    });
                }
            }
        }
        table.ring = next_ring;
        table.shards.remove(&id);
        self.state.metrics.reshards.fetch_add(1, Ordering::Relaxed);
        self.state
            .metrics
            .handoff_sessions_moved
            .fetch_add(moved as u64, Ordering::Relaxed);
        Ok(moved)
    }

    // ----------------------------------------------------------- rollout

    /// Stages an artifact (full `ModelArtifact` JSON) on every shard —
    /// pinned `name@vN` key only, default traffic untouched — and
    /// enters the canary phase. On any shard failing to stage, the
    /// already-staged shards are rolled back and the error returned.
    pub fn stage_artifact(&self, artifact_json: &[u8]) -> Result<String, String> {
        let text = std::str::from_utf8(artifact_json).map_err(|_| "non-UTF-8 artifact")?;
        let entries = parse_map(text).ok_or("artifact is not a JSON object")?;
        let name = match serde::map_get(&entries, "name") {
            Some(Value::Str(n)) => n.clone(),
            _ => return Err("artifact has no string \"name\"".to_owned()),
        };
        let version = serde::map_get(&entries, "version")
            .and_then(value_u32)
            .ok_or("artifact has no numeric \"version\"")?;
        self.state.rollout.begin(&name, version)?;

        let shards = self.shards_snapshot();
        if shards.is_empty() {
            self.state.rollout.end();
            return Err("no shards to stage on".to_owned());
        }
        let mut staged: Vec<Arc<Shard>> = Vec::new();
        for shard in &shards {
            match shard
                .backend
                .request("POST", "/admin/artifact/stage", artifact_json)
            {
                Ok((200, _)) => staged.push(Arc::clone(shard)),
                Ok((status, body)) => {
                    self.unstage(&staged, &name, version);
                    self.state.rollout.end();
                    return Err(format!("shard {}: stage -> {status} {body}", shard.id));
                }
                Err(e) => {
                    self.unstage(&staged, &name, version);
                    self.state.rollout.end();
                    return Err(format!("shard {}: {e}", shard.id));
                }
            }
        }
        Ok(format!("{name}@v{version}"))
    }

    /// Promotes the staged canary on every shard, atomically per shard.
    /// On a partial failure the shards already flipped are re-promoted
    /// to their previous version (compensation), and the canary stays
    /// staged so the operator can retry or roll back.
    pub fn promote(&self) -> Result<String, String> {
        let (name, version) = self
            .state
            .rollout
            .canary()
            .ok_or("no canary staged; stage an artifact first")?;
        let body = format!("{{\"name\":\"{name}\",\"version\":{version}}}");
        let shards = self.shards_snapshot();
        // (shard, previous active version) for compensation.
        let mut flipped: Vec<(Arc<Shard>, Option<u32>)> = Vec::new();
        for shard in &shards {
            match shard
                .backend
                .request("POST", "/admin/artifact/promote", body.as_bytes())
            {
                Ok((200, response)) => {
                    let previous = parse_map(&response)
                        .and_then(|m| serde::map_get(&m, "previous").and_then(value_u32));
                    flipped.push((Arc::clone(shard), previous));
                }
                Ok((status, response)) => {
                    self.compensate_promote(&flipped, &name);
                    return Err(format!(
                        "shard {}: promote -> {status} {response}",
                        shard.id
                    ));
                }
                Err(e) => {
                    self.compensate_promote(&flipped, &name);
                    return Err(format!("shard {}: {e}", shard.id));
                }
            }
        }
        self.state.rollout.end();
        Ok(format!("{name}@v{version}"))
    }

    /// Rolls the staged canary back: drops the pinned version from
    /// every shard and leaves the active versions untouched.
    pub fn rollback(&self) -> Result<String, String> {
        let (name, version) = self.state.rollout.end().ok_or("no canary staged")?;
        let shards = self.shards_snapshot();
        self.unstage(&shards, &name, version);
        Ok(format!("{name}@v{version}"))
    }

    fn unstage(&self, shards: &[Arc<Shard>], name: &str, version: u32) {
        let body = format!("{{\"name\":\"{name}\",\"version\":{version}}}");
        for shard in shards {
            let _ = shard
                .backend
                .request("POST", "/admin/artifact/rollback", body.as_bytes());
        }
    }

    fn compensate_promote(&self, flipped: &[(Arc<Shard>, Option<u32>)], name: &str) {
        for (shard, previous) in flipped {
            let Some(previous) = previous else { continue };
            let body = format!("{{\"name\":\"{name}\",\"version\":{previous}}}");
            let _ = shard
                .backend
                .request("POST", "/admin/artifact/promote", body.as_bytes());
        }
    }

    // ----------------------------------------------------------- routing

    /// Routes one request through the cluster. The entry point of both
    /// the in-process callers and the router's own HTTP server.
    pub fn handle(&self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        self.state
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        match (method, path) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/readyz") => self.readyz(),
            ("GET", "/metrics") => self.metrics_fanin(),
            ("POST", "/predict") => self.forward_stateless(path, body, true),
            ("POST", "/predict_batch") => self.forward_stateless(path, body, false),
            ("POST", "/ingest") => self.forward_ingest(body),
            ("POST", "/admin/rollout/stage") => match self.stage_artifact(body) {
                Ok(key) => (200, format!("{{\"staged\": \"{key}\"}}")),
                Err(e) => (409, error_body(&e)),
            },
            ("POST", "/admin/rollout/promote") => match self.promote() {
                Ok(key) => (200, format!("{{\"promoted\": \"{key}\"}}")),
                Err(e) => (409, error_body(&e)),
            },
            ("POST", "/admin/rollout/rollback") => match self.rollback() {
                Ok(key) => (200, format!("{{\"rolled_back\": \"{key}\"}}")),
                Err(e) => (409, error_body(&e)),
            },
            ("GET", "/admin/rollout/status") => (200, self.state.rollout.render_json()),
            _ => (404, error_body("no such cluster endpoint")),
        }
    }

    /// Healthy shards in id order, for the stateless round-robin.
    fn shards_snapshot(&self) -> Vec<Arc<Shard>> {
        let table = self.state.table.read().expect("table poisoned");
        table.shards.values().cloned().collect()
    }

    /// `/predict` and `/predict_batch`: any healthy shard will do.
    /// Round-robin with failover — transport errors and 5xx rotate to
    /// the next healthy shard, with exponential backoff between
    /// attempts.
    fn forward_stateless(&self, path: &str, body: &[u8], mirror: bool) -> (u16, String) {
        let counter = if path == "/predict" {
            &self.state.metrics.forwarded_predict
        } else {
            &self.state.metrics.forwarded_batch
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let start = self.state.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        let mut last = (503, error_body("no healthy shard"));
        for attempt in 0..=self.state.config.retries {
            if attempt > 0 {
                self.state.metrics.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.state.config.backoff * (1 << (attempt - 1)));
            }
            // The read guard is held across the forward so a reshard
            // cannot swap the table under an in-flight request.
            let table = self.state.table.read().expect("table poisoned");
            let now_ms = self.state.now_ms();
            let healthy: Vec<Arc<Shard>> = table
                .shards
                .values()
                .filter(|s| s.eligible(now_ms, self.state.config.reprobe_after))
                .cloned()
                .collect();
            if healthy.is_empty() {
                self.state
                    .metrics
                    .unavailable_503
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let shard = &healthy[(start + attempt) % healthy.len()];
            let begun = Instant::now();
            match shard.backend.request("POST", path, body) {
                Ok((status, response)) if status < 500 => {
                    shard.mark_up();
                    if mirror && status == 200 {
                        self.maybe_mirror(shard, body, &response, begun.elapsed());
                    }
                    return (status, response);
                }
                Ok((status, response)) => {
                    // Transport works; only its application is unhappy.
                    shard.mark_up();
                    last = (status, response);
                }
                Err(e) => {
                    shard.mark_down(now_ms);
                    self.state.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    last = (502, error_body(&e));
                }
            }
        }
        last
    }

    /// `/ingest`: stateful — always the ring owner of the body's user
    /// id. Retries stay on the owner (its session state cannot fail
    /// over) and ride out not-ready windows with backoff. Every forward
    /// carries an idempotency key (one key across all attempts), so a
    /// retry after an ambiguous transport failure replays the shard's
    /// recorded response instead of double-applying the points.
    fn forward_ingest(&self, body: &[u8]) -> (u16, String) {
        self.state
            .metrics
            .forwarded_ingest
            .fetch_add(1, Ordering::Relaxed);
        let entries = std::str::from_utf8(body).ok().and_then(parse_map);
        let Some(mut entries) = entries else {
            return (400, error_body("ingest body is not a JSON object"));
        };
        let Some(user) = serde::map_get(&entries, "user").and_then(value_u32) else {
            return (400, error_body("ingest body has no numeric \"user\""));
        };
        // Respect a client-supplied key; stamp one otherwise.
        if serde::map_get(&entries, "idem").is_none() {
            entries.push(("idem".to_owned(), Value::UInt(self.state.next_idem())));
        }
        let forwarded = match serde_json::to_string(&Value::Map(entries)) {
            Ok(body) => body,
            Err(e) => return (500, error_body(&e.to_string())),
        };
        let mut last = (503, error_body("no shards"));
        for attempt in 0..=self.state.config.retries {
            if attempt > 0 {
                self.state.metrics.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.state.config.backoff * (1 << (attempt - 1)));
            }
            let table = self.state.table.read().expect("table poisoned");
            let Some(owner) = table.ring.shard_of(user) else {
                self.state
                    .metrics
                    .unavailable_503
                    .fetch_add(1, Ordering::Relaxed);
                return (503, error_body("no shards"));
            };
            let shard = Arc::clone(table.shards.get(&owner).expect("ring member in table"));
            match shard
                .backend
                .request("POST", "/ingest", forwarded.as_bytes())
            {
                // 503 = owner still starting or draining: retry below.
                Ok((503, response)) => {
                    shard.mark_up();
                    last = (503, response);
                }
                Ok((status, response)) => {
                    shard.mark_up();
                    return (status, response);
                }
                Err(e) => {
                    shard.mark_down(self.state.now_ms());
                    last = (502, error_body(&e));
                }
            }
        }
        last
    }

    /// Canary mirroring: re-sends the 1-in-k `/predict` slice with the
    /// model pinned to the staged version on the same shard, comparing
    /// predicted class and latency. Synchronous (the mirrored request
    /// pays the extra call) and skipped for requests that pinned their
    /// own model.
    fn maybe_mirror(&self, shard: &Arc<Shard>, body: &[u8], active: &str, active_t: Duration) {
        let Some(pinned) = self
            .state
            .rollout
            .should_mirror(self.state.config.mirror_every)
        else {
            return;
        };
        let Some(mut entries) = std::str::from_utf8(body).ok().and_then(parse_map) else {
            return;
        };
        if serde::map_get(&entries, "model").is_some() {
            return;
        }
        entries.push(("model".to_owned(), Value::Str(pinned)));
        let Ok(mirrored) = serde_json::to_string(&Value::Map(entries)) else {
            return;
        };
        let begun = Instant::now();
        match shard
            .backend
            .request("POST", "/predict", mirrored.as_bytes())
        {
            Ok((200, response)) => {
                let agree = match (class_of(active), class_of(&response)) {
                    (Some(a), Some(c)) => a == c,
                    _ => false,
                };
                self.state.rollout.stats.record(
                    agree,
                    active_t.as_micros() as u64,
                    begun.elapsed().as_micros() as u64,
                );
            }
            _ => self.state.rollout.stats.record_error(),
        }
    }

    // ------------------------------------------------------------ fan-in

    /// Cluster liveness: always 200, with per-shard liveness/readiness
    /// detail fanned in from each shard's `/healthz`.
    fn healthz(&self) -> (u16, String) {
        let shards = self.shards_snapshot();
        let mut parts = Vec::with_capacity(shards.len());
        let mut ready = 0usize;
        for shard in &shards {
            match shard.backend.request("GET", "/healthz", b"") {
                Ok((200, body)) => {
                    let is_ready = parse_map(&body)
                        .and_then(|m| match serde::map_get(&m, "ready") {
                            Some(Value::Bool(b)) => Some(*b),
                            _ => None,
                        })
                        .unwrap_or(false);
                    ready += usize::from(is_ready);
                    parts.push(format!(
                        "{{\"id\": {}, \"live\": true, \"ready\": {is_ready}}}",
                        shard.id
                    ));
                }
                _ => parts.push(format!(
                    "{{\"id\": {}, \"live\": false, \"ready\": false}}",
                    shard.id
                )),
            }
        }
        (
            200,
            format!(
                "{{\"status\": \"ok\", \"shards\": {}, \"ready_shards\": {ready}, \"detail\": [{}]}}",
                shards.len(),
                parts.join(", ")
            ),
        )
    }

    /// Cluster readiness: 200 while at least one shard passes its
    /// health checks.
    fn readyz(&self) -> (u16, String) {
        let healthy = self
            .shards_snapshot()
            .iter()
            .filter(|s| s.healthy.load(Ordering::Relaxed))
            .count();
        if healthy > 0 {
            (
                200,
                format!("{{\"ready\": true, \"healthy_shards\": {healthy}}}"),
            )
        } else {
            (503, "{\"ready\": false, \"healthy_shards\": 0}".to_owned())
        }
    }

    /// Aggregated `/metrics`: router counters plus every shard's own
    /// `/metrics` document embedded verbatim — the per-shard `"shard"`
    /// labels (id + artifact versions) survive aggregation untouched.
    fn metrics_fanin(&self) -> (u16, String) {
        let m = &self.state.metrics;
        // The router's own reactor counters, when its HTTP front door is
        // up — kept apart from the shards' `"net"` sections, which
        // travel inside each shard document below.
        let net = self
            .state
            .http_net
            .get()
            .map_or(String::new(), |n| format!(", \"net\": {}", n.render_json()));
        let router = format!(
            "{{\"requests_total\": {}, \"forwarded_predict\": {}, \"forwarded_predict_batch\": {}, \
             \"forwarded_ingest\": {}, \"retries\": {}, \"failovers\": {}, \"unavailable_503\": {}, \
             \"reshards\": {}, \"handoff_sessions_moved\": {}, \"rollout\": {}{net}}}",
            m.requests_total.load(Ordering::Relaxed),
            m.forwarded_predict.load(Ordering::Relaxed),
            m.forwarded_batch.load(Ordering::Relaxed),
            m.forwarded_ingest.load(Ordering::Relaxed),
            m.retries.load(Ordering::Relaxed),
            m.failovers.load(Ordering::Relaxed),
            m.unavailable_503.load(Ordering::Relaxed),
            m.reshards.load(Ordering::Relaxed),
            m.handoff_sessions_moved.load(Ordering::Relaxed),
            self.state.rollout.render_json(),
        );
        let mut shard_docs = Vec::new();
        for shard in self.shards_snapshot() {
            match shard.backend.request("GET", "/metrics", b"") {
                Ok((200, body)) => shard_docs.push(body),
                Ok((status, _)) => shard_docs.push(format!(
                    "{{\"shard\": {{\"id\": {}}}, \"error\": \"status {status}\"}}",
                    shard.id
                )),
                Err(e) => shard_docs.push(format!(
                    "{{\"shard\": {{\"id\": {}}}, \"error\": {}}}",
                    shard.id,
                    serde_json::to_string(&Value::Str(e)).unwrap_or_else(|_| "\"?\"".to_owned())
                )),
            }
        }
        (
            200,
            format!(
                "{{\n  \"router\": {router},\n  \"shards\": [{}]\n}}",
                shard_docs.join(", ")
            ),
        )
    }

    // ------------------------------------------------ background threads

    /// Starts the background health checker: polls every shard's
    /// `/readyz` on the configured cadence and maintains the healthy
    /// flags the stateless router consults. Returns a handle whose drop
    /// stops the thread.
    pub fn start_health_checks(&self) -> HealthCheckerHandle {
        let running = Arc::new(AtomicBool::new(true));
        let state = Arc::clone(&self.state);
        let thread_running = Arc::clone(&running);
        let thread = std::thread::Builder::new()
            .name("traj-cluster-health".to_owned())
            .spawn(move || {
                while thread_running.load(Ordering::SeqCst) {
                    let shards: Vec<Arc<Shard>> = {
                        let table = state.table.read().expect("table poisoned");
                        table.shards.values().cloned().collect()
                    };
                    for shard in shards {
                        let ok =
                            matches!(shard.backend.request("GET", "/readyz", b""), Ok((200, _)));
                        if ok {
                            shard.mark_up();
                        } else {
                            // Re-stamped every failing round, so the
                            // reprobe window stays closed while the
                            // checker keeps seeing the shard down.
                            shard.mark_down(state.now_ms());
                        }
                    }
                    let mut waited = Duration::ZERO;
                    while waited < state.config.health_interval
                        && thread_running.load(Ordering::SeqCst)
                    {
                        let step = Duration::from_millis(20);
                        std::thread::sleep(step);
                        waited += step;
                    }
                }
            })
            .expect("spawning health checker");
        HealthCheckerHandle {
            running,
            thread: Some(thread),
        }
    }

    /// Binds the router's own HTTP server: the same front door as
    /// [`ClusterRouter::handle`], served by a [`traj_net`] connection
    /// reactor. One event-loop thread multiplexes every client
    /// connection; complete requests run on a small dedicated pool
    /// (`http_workers` threads), which bounds concurrent shard fan-out
    /// while idle keep-alive clients cost nothing but a descriptor.
    pub fn serve_http(&self, addr: &str) -> Result<RouterHttpHandle, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        let local_addr = listener.local_addr().map_err(|e| e.to_string())?;
        let config = &self.state.config;
        let runtime = Arc::new(traj_runtime::Runtime::named(
            config.http_workers.max(1),
            "traj-cluster",
        ));
        let service = Arc::new(RouterService {
            router: self.clone(),
            runtime: Arc::clone(&runtime),
        });
        let reactor = traj_net::spawn(
            listener,
            traj_net::ReactorConfig {
                name: "traj-cluster".to_owned(),
                max_body_bytes: config.max_body_bytes,
                idle_timeout: config.read_timeout,
                max_connections: config.max_connections,
                ..traj_net::ReactorConfig::default()
            },
            service,
        )
        .map_err(|e| format!("spawning router reactor: {e}"))?;
        let _ = self.state.http_net.set(reactor.stats());
        Ok(RouterHttpHandle {
            addr: local_addr,
            reactor: Some(reactor),
            runtime: Some(runtime),
        })
    }
}

/// The reactor→router bridge: every complete client request becomes one
/// forwarding task on the router's HTTP pool.
struct RouterService {
    router: ClusterRouter,
    runtime: Arc<traj_runtime::Runtime>,
}

impl traj_net::Service for RouterService {
    fn call(&self, request: traj_net::Request, responder: traj_net::Responder) {
        let router = self.router.clone();
        self.runtime.spawn(move || {
            let (status, body) = router.handle(&request.method, &request.path, &request.body);
            responder.send(status, body, None);
        });
    }
}

/// Stops the background health checker on drop.
pub struct HealthCheckerHandle {
    running: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HealthCheckerHandle {
    /// Stops and joins the checker thread.
    pub fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HealthCheckerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The router's HTTP front door; stops on drop.
pub struct RouterHttpHandle {
    addr: SocketAddr,
    reactor: Option<traj_net::ReactorHandle>,
    runtime: Option<Arc<traj_runtime::Runtime>>,
}

impl RouterHttpHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight forwards (bounded by the
    /// reactor's drain grace) and joins the reactor and worker pool.
    pub fn stop(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        self.runtime.take();
    }
}

impl Drop for RouterHttpHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

// ------------------------------------------------------ shard transfers

/// The open-session user ids of one shard.
fn sessions_of(shard: &Shard) -> Result<Vec<u32>, String> {
    let (status, body) = shard
        .backend
        .request("GET", "/admin/sessions", b"")
        .map_err(|e| format!("shard {}: {e}", shard.id))?;
    if status != 200 {
        return Err(format!("shard {}: sessions -> {status} {body}", shard.id));
    }
    let entries =
        parse_map(&body).ok_or_else(|| format!("shard {}: unparseable sessions", shard.id))?;
    match serde::map_get(&entries, "users") {
        Some(Value::Seq(items)) => items
            .iter()
            .map(|v| value_u32(v).ok_or_else(|| format!("shard {}: non-u32 user id", shard.id)))
            .collect(),
        _ => Err(format!("shard {}: sessions without users", shard.id)),
    }
}

/// Moves `users` from one shard to another through the handoff admin
/// surface, in three steps that keep exactly one authoritative copy at
/// every failure point:
///
/// 1. **Copy**: `/admin/handoff/export` is non-destructive, so a
///    failure here (or in the import below) leaves the source shard
///    authoritative and loses nothing.
/// 2. **Import** on the target. The export response
///    (`{"sessions": [...]}`) is exactly the import request shape, so
///    the session bytes are forwarded verbatim — the router never
///    decodes them, which is how bit-identical restore survives any
///    router version.
/// 3. **Evict** from the source, only now that the target acknowledged
///    the state. If the evict fails, the source is restored from the
///    exported payload (bit-identical: the reshard holds the routing
///    write lock, so nothing mutated since the copy) and the target's
///    copy dropped.
fn transfer(from: &Shard, to: &Shard, users: &[u32]) -> Result<usize, String> {
    if users.is_empty() {
        return Ok(0);
    }
    let list = users
        .iter()
        .map(u32::to_string)
        .collect::<Vec<String>>()
        .join(",");
    let users_body = format!("{{\"users\": [{list}]}}");
    let (status, exported) = from
        .backend
        .request("POST", "/admin/handoff/export", users_body.as_bytes())
        .map_err(|e| format!("shard {}: export: {e}", from.id))?;
    if status != 200 {
        return Err(format!("shard {}: export -> {status} {exported}", from.id));
    }
    let count = match to
        .backend
        .request("POST", "/admin/handoff/import", exported.as_bytes())
    {
        Ok((200, imported)) => parse_map(&imported)
            .and_then(|m| serde::map_get(&m, "imported").and_then(value_u32))
            .unwrap_or(0),
        Ok((status, imported)) => {
            return Err(format!(
                "shard {}: import -> {status} {imported} (shard {} still holds the sessions)",
                to.id, from.id
            ));
        }
        Err(e) => {
            // Ambiguous: the import may have landed before the transport
            // died. Drop any copy on the target so the source stays the
            // sole owner; a leftover is harmless either way — the ring
            // still routes these users to the source.
            let _ = to
                .backend
                .request("POST", "/admin/handoff/evict", users_body.as_bytes());
            return Err(format!(
                "shard {}: import: {e} (shard {} still holds the sessions)",
                to.id, from.id
            ));
        }
    };
    let evict = from
        .backend
        .request("POST", "/admin/handoff/evict", users_body.as_bytes());
    match evict {
        Ok((200, _)) => Ok(count as usize),
        outcome => {
            let failure = match outcome {
                Ok((status, body)) => format!("evict -> {status} {body}"),
                Err(e) => format!("evict: {e}"),
            };
            // The evict may have drained some users before failing:
            // re-import the exported payload into the source (restoring
            // any drained session bit-identically), then drop the
            // target's copy. Only if the restore itself fails is state
            // unrecoverable from the shards alone — surface the payload
            // so the operator can re-import it by hand.
            match from
                .backend
                .request("POST", "/admin/handoff/import", exported.as_bytes())
            {
                Ok((200, _)) => {
                    let _ =
                        to.backend
                            .request("POST", "/admin/handoff/evict", users_body.as_bytes());
                    Err(format!(
                        "shard {}: {failure} (transfer aborted; source restored)",
                        from.id
                    ))
                }
                restore => {
                    let restore_failure = match restore {
                        Ok((status, body)) => format!("restore -> {status} {body}"),
                        Err(e) => format!("restore: {e}"),
                    };
                    Err(format!(
                        "shard {}: {failure}; {restore_failure}; shard {} holds an imported copy; \
                         recover by re-importing this payload on shard {}: {exported}",
                        from.id, to.id, from.id
                    ))
                }
            }
        }
    }
}

/// Rolls an aborted reshard's completed transfers back: each
/// `(from, to, users)` move is re-applied in reverse. Errors are
/// collected, not short-circuited — every pair gets its chance to go
/// home.
fn unwind_transfers<'a>(
    moves: impl Iterator<Item = (&'a Shard, &'a Shard, &'a [u32])>,
) -> Result<(), String> {
    let mut errors = Vec::new();
    for (from, to, users) in moves {
        if let Err(e) = transfer(from, to, users) {
            errors.push(e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}
