//! Versioned model rollout: the canary state machine the router drives.
//!
//! ```text
//!            stage (push to all shards)
//!   Idle ───────────────────────────────▶ Canary{name, vN}
//!     ▲                                      │
//!     │  promote (all shards flip default)   │ mirror 1-in-k /predict
//!     ├──────────────────────────────────────┤ to the pinned vN key,
//!     │  rollback (all shards drop the pin)  │ compare class + latency
//!     └──────────────────────────────────────┘
//! ```
//!
//! While in `Canary`, the staged version serves *only* mirrored traffic
//! (requests pinned to `name@vN`); default traffic stays on the active
//! version until an explicit promote, and a rollback leaves the active
//! version untouched by construction. The orchestration across shards —
//! staging everywhere, compensating on partial failure — lives in the
//! router; this module owns the state and the evidence (agreement and
//! latency counters a promotion decision reads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Mirror-traffic evidence collected during a canary.
#[derive(Debug, Default)]
pub struct CanaryStats {
    /// Requests mirrored to the canary version.
    pub mirrored: AtomicU64,
    /// Mirrors whose predicted class matched the active version.
    pub agreements: AtomicU64,
    /// Mirrors whose predicted class differed.
    pub disagreements: AtomicU64,
    /// Mirrors that failed (transport or non-2xx on the canary).
    pub errors: AtomicU64,
    /// Summed active-version latency over mirrored pairs, µs.
    pub active_latency_us: AtomicU64,
    /// Summed canary-version latency over mirrored pairs, µs.
    pub canary_latency_us: AtomicU64,
}

impl CanaryStats {
    fn reset(&self) {
        self.mirrored.store(0, Ordering::Relaxed);
        self.agreements.store(0, Ordering::Relaxed);
        self.disagreements.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.active_latency_us.store(0, Ordering::Relaxed);
        self.canary_latency_us.store(0, Ordering::Relaxed);
    }

    /// Records one mirrored pair.
    pub fn record(&self, agree: bool, active_us: u64, canary_us: u64) {
        self.mirrored.fetch_add(1, Ordering::Relaxed);
        if agree {
            &self.agreements
        } else {
            &self.disagreements
        }
        .fetch_add(1, Ordering::Relaxed);
        self.active_latency_us
            .fetch_add(active_us, Ordering::Relaxed);
        self.canary_latency_us
            .fetch_add(canary_us, Ordering::Relaxed);
    }

    /// Records one failed mirror.
    pub fn record_error(&self) {
        self.mirrored.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// The rollout state: at most one canary at a time, plus its evidence.
#[derive(Debug, Default)]
pub struct RolloutState {
    /// `(name, version)` of the staged canary; `None` when idle.
    canary: RwLock<Option<(String, u32)>>,
    /// Evidence for the current (or last finished) canary.
    pub stats: CanaryStats,
    /// Round-robin position of the 1-in-k mirror slice.
    mirror_counter: AtomicU64,
}

impl RolloutState {
    /// An idle rollout.
    pub fn new() -> RolloutState {
        RolloutState::default()
    }

    /// The staged canary, when one is active.
    pub fn canary(&self) -> Option<(String, u32)> {
        self.canary.read().expect("rollout poisoned").clone()
    }

    /// Enters `Canary{name, version}`. Errors when a canary is already
    /// staged — finish it (promote or rollback) first.
    pub fn begin(&self, name: &str, version: u32) -> Result<(), String> {
        let mut canary = self.canary.write().expect("rollout poisoned");
        if let Some((n, v)) = canary.as_ref() {
            return Err(format!("a canary is already staged ({n}@v{v})"));
        }
        *canary = Some((name.to_owned(), version));
        self.stats.reset();
        self.mirror_counter.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Leaves `Canary`, returning what was staged.
    pub fn end(&self) -> Option<(String, u32)> {
        self.canary.write().expect("rollout poisoned").take()
    }

    /// Whether this request falls in the mirror slice: every
    /// `every`-th request while a canary is staged. Returns the pinned
    /// `name@vN` key to mirror against.
    pub fn should_mirror(&self, every: u64) -> Option<String> {
        let (name, version) = self.canary()?;
        let n = self.mirror_counter.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(every.max(1))
            .then(|| format!("{name}@v{version}"))
    }

    /// The rollout section of the router's `/metrics`.
    pub fn render_json(&self) -> String {
        let canary = match self.canary() {
            Some((name, version)) => format!("\"{name}@v{version}\""),
            None => "null".to_owned(),
        };
        let s = &self.stats;
        format!(
            "{{\"canary\": {canary}, \"mirrored\": {}, \"agreements\": {}, \
             \"disagreements\": {}, \"mirror_errors\": {}, \
             \"active_latency_us\": {}, \"canary_latency_us\": {}}}",
            s.mirrored.load(Ordering::Relaxed),
            s.agreements.load(Ordering::Relaxed),
            s.disagreements.load(Ordering::Relaxed),
            s.errors.load(Ordering::Relaxed),
            s.active_latency_us.load(Ordering::Relaxed),
            s.canary_latency_us.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_canary_with_mirror_slice() {
        let rollout = RolloutState::new();
        assert!(rollout.should_mirror(1).is_none());

        rollout.begin("rf", 2).unwrap();
        assert!(rollout.begin("rf", 3).is_err());
        assert_eq!(rollout.canary(), Some(("rf".to_owned(), 2)));

        // 1-in-4 slice: exactly every fourth call mirrors.
        let hits: Vec<bool> = (0..8).map(|_| rollout.should_mirror(4).is_some()).collect();
        assert_eq!(hits, [true, false, false, false, true, false, false, false]);
        assert_eq!(rollout.should_mirror(4).unwrap(), "rf@v2");

        rollout.stats.record(true, 100, 120);
        rollout.stats.record(false, 100, 90);
        rollout.stats.record_error();
        let json = rollout.render_json();
        assert!(json.contains("\"canary\": \"rf@v2\""), "{json}");
        assert!(json.contains("\"disagreements\": 1"), "{json}");
        assert!(json.contains("\"mirror_errors\": 1"), "{json}");

        assert_eq!(rollout.end(), Some(("rf".to_owned(), 2)));
        assert!(rollout.should_mirror(1).is_none());
        assert!(rollout.end().is_none());
    }
}
