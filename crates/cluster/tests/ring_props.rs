//! Property-based checks of the consistent-hash ring.
//!
//! Three properties the cluster design leans on: assignment is a pure
//! function of the member set (any router instance computes the same
//! owner), load is balanced across shards (within ±20% of even on a
//! 4-shard ring at the default vnode count), and adding one shard moves
//! only ~1/N of the keys — all of them onto the new shard, none between
//! the old ones.

use proptest::prelude::*;
use traj_cluster::HashRing;

const VNODES: usize = 256;
const SAMPLE: u32 = 8_000;

/// A small set of distinct shard ids, in arbitrary order.
fn shard_ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..10_000, 2..8).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids
    })
}

proptest! {
    #[test]
    fn assignment_is_a_pure_function_of_the_member_set(ids in shard_ids(), user in any::<u32>()) {
        let forward = HashRing::new(&ids, VNODES);
        let mut reversed = ids.clone();
        reversed.reverse();
        // Duplicate a member: construction must dedup.
        reversed.push(ids[0]);
        let backward = HashRing::new(&reversed, VNODES);
        prop_assert_eq!(forward.shard_of(user), backward.shard_of(user));
        let owner = forward.shard_of(user).unwrap();
        prop_assert!(ids.contains(&owner));
    }

    #[test]
    fn four_shards_balance_within_twenty_percent(ids in proptest::collection::vec(0u32..10_000, 4)) {
        let mut distinct = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assume!(distinct.len() == 4);
        let ring = HashRing::new(&distinct, VNODES);
        let mut counts = std::collections::BTreeMap::new();
        for user in 0..SAMPLE {
            *counts.entry(ring.shard_of(user).unwrap()).or_insert(0u32) += 1;
        }
        let even = SAMPLE as f64 / 4.0;
        for (&shard, &count) in &counts {
            let share = count as f64 / even;
            prop_assert!(
                (0.8..=1.2).contains(&share),
                "shard {shard} holds {count}/{SAMPLE} keys ({:.1}% of even)",
                share * 100.0
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_about_one_nth_of_keys(ids in shard_ids(), new_id in 10_000u32..20_000) {
        let before = HashRing::new(&ids, VNODES);
        let after = before.with_shard(new_id);
        let mut moved = 0u32;
        for user in 0..SAMPLE {
            let old = before.shard_of(user).unwrap();
            let new = after.shard_of(user).unwrap();
            if old != new {
                // A key may only move onto the new shard, never
                // between surviving shards.
                prop_assert_eq!(new, new_id, "user {} moved {} -> {}", user, old, new);
                moved += 1;
            }
        }
        let expected = SAMPLE as f64 / (ids.len() + 1) as f64;
        prop_assert!(
            (moved as f64) < expected * 1.6,
            "moved {moved} keys, expected ~{expected:.0} (1/{} of {SAMPLE})",
            ids.len() + 1
        );
        prop_assert!(moved > 0, "adding a shard moved nothing");
    }
}
