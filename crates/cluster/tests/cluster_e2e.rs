//! End-to-end cluster tests: a real router over real in-process
//! `traj-serve` shards (plus one HTTP-backend leg over actual sockets).
//!
//! Covers routing (round-robin `/predict`, ring-owned `/ingest`),
//! failover and health checks, the full canary rollout lifecycle, the
//! 3→4 reshard handoff-parity pin (moved sessions restore
//! bit-identically and their streams finish with full point counts),
//! and the two-shard replay smoke with a mid-replay promotion — the CI
//! cluster leg.

use std::sync::{Arc, OnceLock};
use std::time::Duration;
use traj_cluster::{ClusterConfig, ClusterRouter, HttpBackend, LocalBackend};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig, ServerHandle};

// ------------------------------------------------------------- fixtures

struct Fixture {
    /// A segment long enough to stream in chunks and still close.
    points: Vec<traj_geo::TrajectoryPoint>,
    /// Three versions of the same model name, distinct seeds.
    v1: ModelArtifact,
    v2: ModelArtifact,
    v3: ModelArtifact,
}

/// Trained once per test binary: model training dominates test time and
/// every test wants the same fixtures.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let segments = SynthDataset::generate(&SynthConfig {
            n_users: 4,
            segments_per_user: (4, 6),
            seed: 211,
            ..SynthConfig::default()
        })
        .segments;
        let train = |version: u32, seed: u64| {
            let spec = TrainSpec {
                kind: traj_ml::ClassifierKind::DecisionTree,
                version,
                seed,
                ..TrainSpec::paper_default("tree")
            };
            ModelArtifact::train(&spec, &segments).expect("train")
        };
        let points = segments
            .iter()
            .find(|s| s.len() >= 2 * MIN_SEGMENT_POINTS)
            .map(|s| s.points.clone())
            .expect("long segment");
        Fixture {
            points,
            v1: train(1, 3),
            v2: train(2, 4),
            v3: train(3, 5),
        }
    })
}

fn start_shard(shard_id: u32) -> Arc<ServerHandle> {
    let mut registry = ModelRegistry::new();
    registry.insert(fixture().v1.clone()).expect("insert");
    let config = ServerConfig {
        workers: 1,
        shard_id: Some(shard_id),
        ..ServerConfig::default()
    };
    Arc::new(serve("127.0.0.1:0", registry, config).expect("bind shard"))
}

/// A router over fresh local shards with the given ids.
fn local_cluster(ids: &[u32], config: ClusterConfig) -> (ClusterRouter, Vec<Arc<ServerHandle>>) {
    let router = ClusterRouter::new(config);
    let mut handles = Vec::new();
    for &id in ids {
        let shard = start_shard(id);
        router
            .add_shard(id, Box::new(LocalBackend::new(Arc::clone(&shard))))
            .expect("add shard");
        handles.push(shard);
    }
    (router, handles)
}

fn points_json(points: &[traj_geo::TrajectoryPoint]) -> String {
    let dtos: Vec<String> = points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    format!("[{}]", dtos.join(","))
}

fn ingest_body(user: u32, points: &[traj_geo::TrajectoryPoint], flush: bool) -> String {
    let flush = if flush { ",\"flush\":true" } else { "" };
    format!(
        "{{\"user\":{user},\"points\":{}{flush}}}",
        points_json(points)
    )
}

fn label_of(body: &str) -> &str {
    let start = body.find("\"label\":\"").expect("label field") + 9;
    let end = body[start..].find('"').expect("label close") + start;
    &body[start..end]
}

/// Whether an `/admin/sessions` body lists `user` (exact id match, not
/// a substring hit).
fn listed(sessions_body: &str, user: u32) -> bool {
    let start = sessions_body.find('[').expect("users list") + 1;
    let end = sessions_body[start..].find(']').expect("list close") + start;
    sessions_body[start..end]
        .split(',')
        .any(|id| id.trim() == user.to_string())
}

// -------------------------------------------------------------- routing

#[test]
fn predict_round_robins_and_ingest_follows_the_ring() {
    let (router, shards) = local_cluster(&[0, 1], ClusterConfig::default());
    let body = format!("{{\"points\":{}}}", points_json(&fixture().points));

    for _ in 0..4 {
        let (status, response) = router.handle("POST", "/predict", body.as_bytes());
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"label\""), "{response}");
    }
    // Round-robin: with two healthy shards, both served /predict.
    for shard in &shards {
        let (status, metrics) = shard.dispatch("GET", "/metrics", b"");
        assert_eq!(status, 200);
        assert!(!metrics.contains("\"predict_requests\": 0,"), "{metrics}");
    }

    // /ingest lands on the ring owner, and only there.
    let half = &fixture().points[..fixture().points.len() / 2];
    for user in 0..12u32 {
        let (status, response) =
            router.handle("POST", "/ingest", ingest_body(user, half, false).as_bytes());
        assert_eq!(status, 200, "user {user}: {response}");
    }
    for (shard, handle) in [(0u32, &shards[0]), (1, &shards[1])] {
        let (_, sessions) = handle.dispatch("GET", "/admin/sessions", b"");
        for user in 0..12u32 {
            let owner = router.owner_of(user).unwrap();
            assert_eq!(
                sessions.contains(&format!("{user}")) && owned_by(&sessions, user),
                owner == shard,
                "user {user} (owner {owner}) vs shard {shard}: {sessions}"
            );
        }
    }

    // Aggregated metrics: router counters plus both shard documents
    // with their shard labels intact.
    let (status, metrics) = router.handle("GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"router\""), "{metrics}");
    assert!(metrics.contains("\"forwarded_ingest\": 12"), "{metrics}");
    assert!(metrics.contains("\"shard\": {\"id\": 0"), "{metrics}");
    assert!(metrics.contains("\"shard\": {\"id\": 1"), "{metrics}");
    assert!(metrics.contains("\"tree\": 1"), "{metrics}");

    // Health fan-in: both shards live and ready.
    let (status, health) = router.handle("GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert!(health.contains("\"ready_shards\": 2"), "{health}");
    let (status, _) = router.handle("GET", "/readyz", b"");
    assert_eq!(status, 200);
}

/// Whether `sessions` (a `{"users": [...]}` document) lists `user` as an
/// exact element, not a substring of a longer id.
fn owned_by(sessions: &str, user: u32) -> bool {
    let inner = sessions
        .trim_start_matches("{\"users\": [")
        .trim_end_matches("]}");
    inner
        .split(',')
        .filter(|s| !s.is_empty())
        .any(|s| s.trim() == user.to_string())
}

#[test]
fn stateless_traffic_fails_over_dead_shards() {
    // A dead address: bind an ephemeral port, then drop the listener.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let config = ClusterConfig {
        retries: 2,
        backoff: Duration::from_millis(1),
        ..ClusterConfig::default()
    };
    let router = ClusterRouter::new(config);
    // Live shard joins first: a reshard consults every existing member,
    // so a dead shard can join an empty cluster but nothing can join
    // after it (the dead member can't be asked what it holds).
    let live = start_shard(1);
    router
        .add_shard(1, Box::new(LocalBackend::new(Arc::clone(&live))))
        .expect("live shard");
    router
        .add_shard(
            0,
            Box::new(HttpBackend::new(dead, Duration::from_millis(300))),
        )
        .expect("dead shard joins (live member holds no sessions)");

    // Every /predict succeeds: the dead shard is skipped after its
    // first transport failure marks it unhealthy.
    let body = format!("{{\"points\":{}}}", points_json(&fixture().points));
    for _ in 0..4 {
        let (status, response) = router.handle("POST", "/predict", body.as_bytes());
        assert_eq!(status, 200, "{response}");
    }
    let (_, metrics) = router.handle("GET", "/metrics", b"");
    assert!(!metrics.contains("\"failovers\": 0,"), "{metrics}");

    // The health checker keeps the verdict fresh: dead stays out, the
    // cluster stays ready on the surviving shard.
    let mut checker = router.start_health_checks();
    std::thread::sleep(Duration::from_millis(100));
    let (status, ready) = router.handle("GET", "/readyz", b"");
    assert_eq!(status, 200, "{ready}");
    assert!(ready.contains("\"healthy_shards\": 1"), "{ready}");
    checker.stop();
}

// -------------------------------------------------------------- rollout

#[test]
fn canary_rollout_promotes_and_rolls_back_across_shards() {
    let config = ClusterConfig {
        mirror_every: 1, // every /predict mirrors while a canary is up
        ..ClusterConfig::default()
    };
    let (router, shards) = local_cluster(&[0, 1], config);
    let fx = fixture();
    let body = format!("{{\"points\":{}}}", points_json(&fx.points));

    // Stage v2 everywhere: default traffic stays on v1.
    let artifact_json = fx.v2.to_json().expect("serialize artifact");
    let (status, response) =
        router.handle("POST", "/admin/rollout/stage", artifact_json.as_bytes());
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("tree@v2"), "{response}");
    // One canary at a time.
    let (status, _) = router.handle("POST", "/admin/rollout/stage", artifact_json.as_bytes());
    assert_eq!(status, 409);
    for shard in &shards {
        let (_, metrics) = shard.dispatch("GET", "/metrics", b"");
        assert!(metrics.contains("\"tree\": 1"), "default moved: {metrics}");
    }

    // Mirrored traffic flows to the pinned version and is scored.
    for _ in 0..3 {
        let (status, response) = router.handle("POST", "/predict", body.as_bytes());
        assert_eq!(status, 200, "{response}");
    }
    let (_, rollout) = router.handle("GET", "/admin/rollout/status", b"");
    assert!(rollout.contains("\"canary\": \"tree@v2\""), "{rollout}");
    assert!(!rollout.contains("\"mirrored\": 0,"), "{rollout}");

    // Promote: every shard's default flips to v2, canary cleared.
    let (status, response) = router.handle("POST", "/admin/rollout/promote", b"");
    assert_eq!(status, 200, "{response}");
    for shard in &shards {
        let (_, metrics) = shard.dispatch("GET", "/metrics", b"");
        assert!(metrics.contains("\"tree\": 2"), "promote missed: {metrics}");
    }
    let (_, rollout) = router.handle("GET", "/admin/rollout/status", b"");
    assert!(rollout.contains("\"canary\": null"), "{rollout}");

    // Rollback of a staged v3 drops the pin and leaves v2 serving.
    let v3_json = fx.v3.to_json().expect("serialize artifact");
    let (status, _) = router.handle("POST", "/admin/rollout/stage", v3_json.as_bytes());
    assert_eq!(status, 200);
    let (status, response) = router.handle("POST", "/admin/rollout/rollback", b"");
    assert_eq!(status, 200, "{response}");
    for shard in &shards {
        let pinned = format!(
            "{{\"model\":\"tree@v3\",\"points\":{}}}",
            points_json(&fx.points)
        );
        let (status, _) = shard.dispatch("POST", "/predict", pinned.as_bytes());
        assert_eq!(status, 404, "v3 pin should be gone");
        let (_, metrics) = shard.dispatch("GET", "/metrics", b"");
        assert!(metrics.contains("\"tree\": 2"), "{metrics}");
    }
    // Nothing staged: promote and rollback both refuse.
    let (status, _) = router.handle("POST", "/admin/rollout/promote", b"");
    assert_eq!(status, 409);
    let (status, _) = router.handle("POST", "/admin/rollout/rollback", b"");
    assert_eq!(status, 409);
}

// -------------------------------------------------- reshard and handoff

/// The acceptance pin: growing the cluster 3→4 mid-stream moves exactly
/// the sessions the new ring reassigns, restores them bit-identically
/// (pinned by export/re-export byte equality through the admin API),
/// and every moved stream finishes with its full point count.
#[test]
fn reshard_3_to_4_restores_moved_sessions_bit_identically() {
    let config = ClusterConfig::default();
    let (router, shards) = local_cluster(&[0, 1, 2], config);
    let fx = fixture();
    let half = fx.points.len() / 2;

    // Open a mid-stream session per user through the router.
    let users: Vec<u32> = (0..30).collect();
    for &user in &users {
        let (status, response) = router.handle(
            "POST",
            "/ingest",
            ingest_body(user, &fx.points[..half], false).as_bytes(),
        );
        assert_eq!(status, 200, "user {user}: {response}");
    }

    // Which sessions must move when shard 3 joins, per the same ring
    // the router uses.
    let ring_now = traj_cluster::HashRing::new(&[0, 1, 2], router_vnodes());
    let ring_next = ring_now.with_shard(3);
    let movers: Vec<u32> = users
        .iter()
        .copied()
        .filter(|&u| ring_next.shard_of(u) == Some(3))
        .collect();
    assert!(
        !movers.is_empty(),
        "no sessions would move — fixture too small"
    );

    // Reference bytes: export each mover from its current owner
    // (export is a pure copy — the owner keeps serving the session).
    let shard_of = |id: u32| -> &Arc<ServerHandle> {
        match id {
            0 => &shards[0],
            1 => &shards[1],
            _ => &shards[2],
        }
    };
    let mut reference = Vec::new();
    for &user in &movers {
        let owner = ring_now.shard_of(user).unwrap();
        let (status, exported) = shard_of(owner).dispatch(
            "POST",
            "/admin/handoff/export",
            format!("{{\"users\": [{user}]}}").as_bytes(),
        );
        assert_eq!(status, 200, "{exported}");
        reference.push((user, exported));
    }

    // Grow the cluster: shard 3 joins, the router moves the sessions.
    let joining = start_shard(3);
    let moved = router
        .add_shard(3, Box::new(LocalBackend::new(Arc::clone(&joining))))
        .expect("reshard");
    assert_eq!(moved, movers.len(), "moved a different session set");

    // Byte parity: re-exporting each moved session from its new owner
    // yields exactly the bytes the old owner exported.
    for (user, expected) in &reference {
        let (status, re_exported) = joining.dispatch(
            "POST",
            "/admin/handoff/export",
            format!("{{\"users\": [{user}]}}").as_bytes(),
        );
        assert_eq!(status, 200, "{re_exported}");
        assert_eq!(
            &re_exported, expected,
            "user {user}: session bytes changed across the handoff"
        );
        // And the old owner really evicted its copy — no stale
        // duplicate left behind for a replay to resurrect.
        let owner = ring_now.shard_of(*user).unwrap();
        let (_, remaining) = shard_of(owner).dispatch("GET", "/admin/sessions", b"");
        assert!(
            !listed(&remaining, *user),
            "user {user} still on old owner {owner}: {remaining}"
        );
    }

    // Every stream — moved or not — finishes through the router with
    // its full point count: nothing was dropped or truncated.
    let reference_label = {
        let solo = start_shard(99);
        let (status, response) = solo.dispatch(
            "POST",
            "/ingest",
            ingest_body(7, &fx.points, true).as_bytes(),
        );
        assert_eq!(status, 200, "{response}");
        label_of(&response).to_owned()
    };
    for &user in &users {
        let (status, response) = router.handle(
            "POST",
            "/ingest",
            ingest_body(user, &fx.points[half..], true).as_bytes(),
        );
        assert_eq!(status, 200, "user {user}: {response}");
        assert_eq!(
            response.matches("\"reason\":").count(),
            1,
            "user {user}: expected exactly one close: {response}"
        );
        assert!(response.contains("\"reason\":\"flush\""), "{response}");
        assert!(
            response.contains(&format!("\"n_points\":{}", fx.points.len())),
            "user {user} lost points across the reshard: {response}"
        );
        assert_eq!(label_of(&response), reference_label, "user {user}");
    }

    // And the router accounted for the move (every membership change
    // counts as a reshard: 3 initial joins + the grow).
    let (_, metrics) = router.handle("GET", "/metrics", b"");
    assert!(metrics.contains("\"reshards\": 4"), "{metrics}");
    assert!(
        metrics.contains(&format!("\"handoff_sessions_moved\": {}", movers.len())),
        "{metrics}"
    );
}

fn router_vnodes() -> usize {
    ClusterConfig::default().vnodes
}

/// A shard whose handoff import always fails: the reshard must abort
/// WITHOUT losing a single session — every stream stays on its old
/// owner and finishes with its full point count (the review-pinned
/// failure mode was destructive export dropping state on a failed
/// import).
#[test]
fn failed_import_aborts_reshard_losslessly() {
    struct ImportRefused(LocalBackend);
    impl traj_cluster::ShardBackend for ImportRefused {
        fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
            if path == "/admin/handoff/import" {
                return Err("injected transport failure".to_owned());
            }
            self.0.request(method, path, body)
        }
    }

    let (router, _shards) = local_cluster(&[0, 1], ClusterConfig::default());
    let fx = fixture();
    let half = fx.points.len() / 2;
    let users: Vec<u32> = (0..20).collect();
    for &user in &users {
        let (status, response) = router.handle(
            "POST",
            "/ingest",
            ingest_body(user, &fx.points[..half], false).as_bytes(),
        );
        assert_eq!(status, 200, "user {user}: {response}");
    }

    let broken = start_shard(3);
    let result = router.add_shard(
        3,
        Box::new(ImportRefused(LocalBackend::new(Arc::clone(&broken)))),
    );
    assert!(result.is_err(), "reshard must fail");
    assert_eq!(
        router.shard_ids(),
        vec![0, 1],
        "ring must not admit the shard"
    );

    // Nothing imported on the refused shard, and every stream finishes
    // on its old owner with the full point count.
    let (status, body) = broken.dispatch("GET", "/admin/sessions", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"users\": []"), "{body}");
    for &user in &users {
        let (status, response) = router.handle(
            "POST",
            "/ingest",
            ingest_body(user, &fx.points[half..], true).as_bytes(),
        );
        assert_eq!(status, 200, "user {user}: {response}");
        assert!(
            response.contains(&format!("\"n_points\":{}", fx.points.len())),
            "user {user} lost state across the aborted reshard: {response}"
        );
    }
}

// ------------------------------------------------------- HTTP front door

#[test]
fn http_front_door_over_http_backends() {
    use std::io::BufReader;
    use std::net::TcpStream;
    use traj_serve::http::client_request;

    // Two real shards over sockets, fronted by the router's own HTTP
    // server — the all-HTTP deployment shape.
    let shard_a = start_shard(10);
    let shard_b = start_shard(11);
    let router = ClusterRouter::new(ClusterConfig::default());
    for (id, shard) in [(10u32, &shard_a), (11, &shard_b)] {
        router
            .add_shard(
                id,
                Box::new(HttpBackend::new(shard.addr(), Duration::from_secs(5))),
            )
            .expect("add shard");
    }
    let mut front = router.serve_http("127.0.0.1:0").expect("bind router");

    let mut client = BufReader::new(TcpStream::connect(front.addr()).expect("connect"));
    let body = format!("{{\"points\":{}}}", points_json(&fixture().points));
    let (status, response) = client_request(&mut client, "POST", "/predict", Some(&body)).unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"label\""), "{response}");

    let ingest = ingest_body(3, &fixture().points, true);
    let (status, response) = client_request(&mut client, "POST", "/ingest", Some(&ingest)).unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"reason\":\"flush\""), "{response}");

    let (status, metrics) = client_request(&mut client, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("\"shard\": {\"id\": 10"), "{metrics}");
    assert!(metrics.contains("\"shard\": {\"id\": 11"), "{metrics}");

    let (status, _) = client_request(&mut client, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    front.stop();
}

// ------------------------------------------------------------ CI smoke

/// The CI cluster smoke: a 2-shard cluster replays per-user streams
/// through the router while a canary is staged and promoted mid-replay.
/// Zero non-2xx, zero dropped sessions.
#[test]
fn smoke_replay_with_mid_replay_promotion() {
    let config = ClusterConfig {
        mirror_every: 1,
        ..ClusterConfig::default()
    };
    let (router, shards) = local_cluster(&[0, 1], config);
    let fx = fixture();
    let users: Vec<u32> = (0..8).collect();
    let third = fx.points.len() / 3;

    let mut non_2xx = 0u32;
    let mut closes = 0u32;
    let mut send = |user: u32, points: &[traj_geo::TrajectoryPoint], flush: bool| {
        let (status, response) = router.handle(
            "POST",
            "/ingest",
            ingest_body(user, points, flush).as_bytes(),
        );
        if !(200..300).contains(&status) {
            non_2xx += 1;
        }
        closes += response.matches("\"reason\":\"flush\"").count() as u32;
    };

    // First leg of every stream on v1.
    for &user in &users {
        send(user, &fx.points[..third], false);
    }

    // Mid-replay rollout: stage v2, mirror some /predict traffic, then
    // promote — all while sessions are open.
    let v2_json = fx.v2.to_json().expect("serialize artifact");
    let (status, response) = router.handle("POST", "/admin/rollout/stage", v2_json.as_bytes());
    assert_eq!(status, 200, "{response}");
    for &user in &users {
        send(user, &fx.points[third..2 * third], false);
    }
    let predict = format!("{{\"points\":{}}}", points_json(&fx.points));
    for _ in 0..2 {
        let (status, _) = router.handle("POST", "/predict", predict.as_bytes());
        assert_eq!(status, 200);
    }
    let (status, response) = router.handle("POST", "/admin/rollout/promote", b"");
    assert_eq!(status, 200, "{response}");

    // Final leg + flush on the promoted version.
    for &user in &users {
        send(user, &fx.points[2 * third..], true);
    }

    assert_eq!(non_2xx, 0, "non-2xx responses during replay");
    assert_eq!(
        closes,
        users.len() as u32,
        "dropped sessions: expected one flush close per user"
    );
    for shard in &shards {
        let (_, metrics) = shard.dispatch("GET", "/metrics", b"");
        assert!(metrics.contains("\"tree\": 2"), "{metrics}");
    }
    // No sessions left behind on either shard.
    for shard in &shards {
        let (_, sessions) = shard.dispatch("GET", "/admin/sessions", b"");
        assert_eq!(sessions, "{\"users\": []}", "{sessions}");
    }
}
