//! IEEE CRC-32 (the polynomial used by zlib, PNG and Ethernet),
//! table-driven, computed incrementally.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let index = (self.state ^ u32::from(byte)) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[index as usize];
        }
    }

    /// The final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_the_standard() {
        // The universal CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finalize(), crc32(data));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = crc32(b"abcdef");
        let mut corrupted = *b"abcdef";
        corrupted[3] ^= 0x01;
        assert_ne!(crc32(&corrupted), base);
    }
}
