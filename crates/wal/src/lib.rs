//! # traj-wal — durable stream state
//!
//! Dependency-free durability primitives for the online ingestion path:
//! a process restart must not silently drop in-flight sessions, so the
//! stream engine logs every admitted point (and every explicit session
//! close) to an append-only write-ahead log and periodically checkpoints
//! its in-memory state into compact snapshots. Recovery loads the latest
//! snapshot and replays the WAL tail, reproducing the pre-crash state
//! bit-for-bit.
//!
//! The crate is deliberately small and layered bottom-up:
//!
//! * [`crc32`] — the IEEE CRC-32 checksum used by every on-disk frame;
//! * [`codec`] — little-endian byte encoding helpers and a bounds-checked
//!   [`codec::Reader`];
//! * [`record`] — the length-prefixed, checksummed record frame
//!   (`[len][crc][lsn][payload]`);
//! * [`log`] — [`Wal`], the segmented append-only log with torn-tail
//!   truncation on open, per-record / interval / on-close fsync policies,
//!   and segment truncation past a snapshot LSN;
//! * [`snapshot`] — [`SnapshotStore`], atomic rename-into-place snapshot
//!   files with checksum validation and fallback to older snapshots.
//!
//! The crate knows nothing about trajectories: payloads are opaque byte
//! strings. `traj-stream` defines the record payloads and the snapshot
//! layout; `traj-serve` wires recovery, periodic snapshots and metrics.
//! See `DESIGN.md` §11 for the durability protocol and its invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod log;
pub mod record;
pub mod snapshot;

pub use codec::{CodecError, Reader};
pub use log::{FsyncPolicy, Wal, WalConfig, WalOpenReport, WalStats};
pub use snapshot::{Snapshot, SnapshotStore};
